package vadalog

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/value"
)

// Options configures a reasoning run.
type Options struct {
	// RequireWarded rejects programs that fail the wardedness check instead
	// of merely reporting the violation in the analysis.
	RequireWarded bool
	// MaxRounds bounds the number of fixpoint rounds per stratum, as a
	// safety valve against non-terminating chases. 0 means the default.
	MaxRounds int
	// MaxFacts bounds the total number of derived facts. 0 means unlimited.
	MaxFacts int
	// Naive disables semi-naive delta evaluation: every fixpoint round
	// re-evaluates every rule against the full relations. Exists for the
	// evaluation-strategy ablation benchmarks; always slower.
	Naive bool
	// Provenance records, for every derived fact, the rule and body facts of
	// its first derivation, enabling Result.Explain. Costs memory
	// proportional to the derived facts. Provenance tracks the *first*
	// derivation, which only insertion order makes well-defined, so a
	// provenance run evaluates every rule sequentially even when Workers
	// asks for parallelism.
	Provenance bool
	// Timeout bounds the wall-clock duration of the run. When it expires the
	// engine stops cooperatively at the next round or shard boundary and
	// returns ErrTimeout together with the partial result. 0 means no bound.
	// The timeout composes with any deadline already on the context passed to
	// RunCtx/RunInPlaceCtx; whichever expires first wins.
	Timeout time.Duration
	// Trace, when non-nil, receives the observability trace of the run: one
	// obs.RunTrace with per-rule counters (evaluations, firings, derived
	// facts, join probes, wall time), per-round delta sizes, and the outcome.
	// Everything but the wall times is deterministic and worker-count
	// independent; obs.Trace.WriteJSON serializes exactly that subset.
	Trace *obs.Trace
	// OnFault selects the failure policy of the run: FailFast (default)
	// returns the first stratum failure as-is; BestEffort wraps it in a
	// *PartialError so callers can salvage the strata that completed. See
	// FaultPolicy.
	OnFault FaultPolicy
	// OwnInput declares that the caller hands the input database over to
	// the run and will not read or reuse it afterwards. Run/RunCtx then
	// skip the defensive Clone of the input and saturate it directly,
	// exactly like RunInPlace — the right call for load-once pipelines
	// (CLIs, query evaluation) where the clone is pure overhead. Leave it
	// false when the same database feeds several runs, as the comparative
	// benchmarks do.
	OwnInput bool
	// Workers sets the number of goroutines used to evaluate each rule.
	// Values <= 1 select the sequential engine. With Workers >= 2, the
	// driver window of every shardable rule is partitioned into shards
	// evaluated concurrently on a worker pool; emitted facts are buffered
	// per shard and merged deterministically (see parallel.go), so the
	// derived fact set is identical for every worker count. Programs with
	// monotonic aggregates always evaluate sequentially: running emissions
	// depend on contribution order, which no merge discipline preserves.
	Workers int
}

const defaultMaxRounds = 1 << 20

// ErrCanceled and ErrTimeout are the typed interruption errors of a run.
// Both are detected cooperatively at round and shard boundaries, and both
// come back alongside a non-nil partial Result whose Stats (and DB) reflect
// the work completed before the interruption. Match with errors.Is.
var (
	// ErrCanceled reports that the context passed to RunCtx/RunInPlaceCtx
	// (or PropagateCtx) was canceled.
	ErrCanceled = errors.New("vadalog: run canceled")
	// ErrTimeout reports that Options.Timeout — or a deadline already on the
	// caller's context — expired.
	ErrTimeout = errors.New("vadalog: run timed out")
)

// canonicalRunErr maps raw context errors surfacing from the evaluation
// stack onto the package's typed sentinels; other errors pass through.
func canonicalRunErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrCanceled) || errors.Is(err, ErrTimeout):
		return err
	case errors.Is(err, context.DeadlineExceeded):
		return ErrTimeout
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	default:
		return err
	}
}

// statusOf classifies a run error for the trace outcome and the process-wide
// counters.
func statusOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	default:
		return "error"
	}
}

// RunStats summarizes a reasoning run.
type RunStats struct {
	Rounds       int
	FactsDerived int
	Duration     time.Duration
}

// Result is the outcome of a reasoning run: the saturated database Σ(D), the
// static analysis, and run statistics. When the run recorded provenance,
// Explain reconstructs proof trees for derived facts.
type Result struct {
	DB       *Database
	Analysis *Analysis
	Stats    RunStats

	prov map[string]derivation
}

// Output returns the derived facts for a predicate in deterministic order.
func (r *Result) Output(pred string) []Fact { return r.DB.SortedFacts(pred) }

// Run executes the program over the input database and returns the saturated
// result. The input database is not modified unless Options.OwnInput
// transfers it to the run.
func Run(prog *Program, input *Database, opts Options) (*Result, error) {
	return RunCtx(context.Background(), prog, input, opts)
}

// RunCtx is Run under a context: the run stops cooperatively at the next
// round or shard boundary once ctx is canceled (ErrCanceled) or its deadline
// — or Options.Timeout — expires (ErrTimeout). On interruption the returned
// Result is non-nil and carries the partial statistics and database.
//
// By default the input is cloned so the caller's database survives the run
// untouched; Options.OwnInput skips that copy for callers that hand the
// database over.
func RunCtx(ctx context.Context, prog *Program, input *Database, opts Options) (*Result, error) {
	if !opts.OwnInput {
		input = input.Clone()
	}
	return RunInPlaceCtx(ctx, prog, input, opts)
}

// RunInPlace is Run but saturates the given database directly, avoiding the
// copy. The database is extended with the derived facts.
func RunInPlace(prog *Program, db *Database, opts Options) (*Result, error) {
	return RunInPlaceCtx(context.Background(), prog, db, opts)
}

// RunInPlaceCtx is RunInPlace under a context (see RunCtx).
func RunInPlaceCtx(ctx context.Context, prog *Program, db *Database, opts Options) (*Result, error) {
	e, err := newEngine(ctx, prog, db, opts)
	if err != nil {
		return nil, err
	}
	defer e.release()
	start := time.Now()
	e.startPool()
	err = e.run()
	e.stopPool()
	return e.finish(start, err)
}

// newEngine analyzes and compiles the program and builds an engine bound to
// ctx. The caller must invoke release (directly or via finish-completing
// wrappers) so any Options.Timeout timer is stopped.
func newEngine(ctx context.Context, prog *Program, db *Database, opts Options) (*engine, error) {
	an, err := Analyze(prog)
	if err != nil {
		return nil, err
	}
	return newEngineAnalyzed(ctx, prog, an, db, opts, nil)
}

// newEngineAnalyzed is newEngine for callers that already hold the program's
// analysis — the maintenance path runs the same three derived programs on
// every batch and re-analyzing them per Apply would dominate small batches.
// cached, when non-nil, supplies pre-compiled rules for the same program; it
// is only sound for aggregate-free programs evaluated one run at a time,
// because aggregate rules accumulate state in their compiled form.
func newEngineAnalyzed(ctx context.Context, prog *Program, an *Analysis, db *Database, opts Options, cached []*cRule) (*engine, error) {
	if opts.RequireWarded && !an.Warded {
		return nil, fmt.Errorf("vadalog: program is not warded: %s", strings.Join(an.Violations, "; "))
	}
	e := &engine{prog: prog, an: an, db: db, opts: opts, ctx: ctx, cachedRules: cached}
	if e.ctx == nil {
		e.ctx = context.Background()
	}
	if opts.Timeout > 0 {
		e.ctx, e.ctxCancel = context.WithTimeout(e.ctx, opts.Timeout)
	}
	if e.opts.MaxRounds == 0 {
		e.opts.MaxRounds = defaultMaxRounds
	}
	if e.opts.Provenance {
		e.prov = map[string]derivation{}
	}
	if err := e.prepare(); err != nil {
		e.release()
		return nil, err
	}
	if opts.Trace != nil {
		e.trace = opts.Trace.StartRun()
		for _, cr := range e.rules {
			e.trace.DeclareRule(cr.idx, cr.rule.Line, ruleLabel(cr))
		}
	}
	return e, nil
}

// release stops the engine's own timeout timer, if any.
func (e *engine) release() {
	if e.ctxCancel != nil {
		e.ctxCancel()
		e.ctxCancel = nil
	}
}

// finish builds the Result from the engine state, canonicalizes interruption
// errors, and records the outcome in the trace and the process counters. The
// Result is non-nil even on error, so interrupted runs surface their partial
// statistics (and partially saturated database) next to the typed error.
func (e *engine) finish(start time.Time, err error) (*Result, error) {
	err = canonicalRunErr(err)
	stats := RunStats{Rounds: e.rounds, FactsDerived: e.derived, Duration: time.Since(start)}
	status := statusOf(err)
	if e.trace != nil {
		e.trace.Finish(status, stats.Rounds, stats.FactsDerived, stats.Duration)
	}
	obs.CountRun(status, stats.Rounds, stats.FactsDerived)
	return &Result{DB: e.db, Analysis: e.an, Stats: stats, prov: e.prov}, err
}

// ruleLabel names a rule by its head predicates.
func ruleLabel(cr *cRule) string {
	seen := map[string]bool{}
	var preds []string
	for _, h := range cr.heads {
		if !seen[h.pred] {
			seen[h.pred] = true
			preds = append(preds, h.pred)
		}
	}
	return strings.Join(preds, ",")
}

// engine holds the state of one reasoning run.
type engine struct {
	prog *Program
	an   *Analysis
	db   *Database
	opts Options
	// ctx carries the cancellation signal; checkCtx polls it at round and
	// shard boundaries. ctxCancel stops the Options.Timeout timer.
	ctx       context.Context
	ctxCancel context.CancelFunc
	// trace is this run's section of Options.Trace; nil disables recording.
	// curFirings/curProbes accumulate the counters of the evaluation in
	// flight (sequential directly, sharded after the merge barrier).
	trace      *obs.RunTrace
	curFirings int64
	curProbes  int64
	// pool is the worker pool for parallel rule evaluation; nil when the
	// run is sequential (Workers <= 1, or Provenance is on).
	pool *workerPool

	rules       []*cRule
	cachedRules []*cRule // pre-compiled rules to adopt instead of compiling
	rounds      int
	derived     int

	// headScratch is the reusable head-tuple buffer of the sequential emit
	// sink; parallel shards buffer emissions per shard instead and never
	// call emit.
	headScratch []value.Value

	// Provenance bookkeeping (Options.Provenance): the stack of body facts
	// matched by the evaluation in progress, and the first derivation of
	// every derived fact.
	parentStack []parentRef
	inStratAgg  bool
	prov        map[string]derivation
}

type stepKind uint8

const (
	stepJoin stepKind = iota
	stepNeg
	stepCond
	stepAssign
	stepAgg
)

// cStep is a compiled body literal.
type cStep struct {
	kind stepKind
	pred string

	// For join/neg steps: per-position description of the atom arguments.
	argConst []value.Value // constant at position, or zero Value
	argSlot  []int         // variable slot at position, or -1 for constants
	// binderPos are positions whose variable is first bound by this step;
	// checkPos are positions repeating a variable bound earlier in the same
	// step (p(X,X) with X fresh).
	binderPos []int
	checkPos  []int
	// staticMask/staticKey cover positions bound before this step begins
	// (constants and variables bound by earlier steps).
	staticMask     uint64
	staticKeySlots []int         // slots in position order, -1 for const
	staticKeyConst []value.Value // const per masked position (when slot -1)

	expr       *Expr
	assignSlot int // stepAssign: target slot; -1 when the expr is a condition

	agg          *Aggregate
	aggMonotonic bool
}

// cHeadArg describes one head atom argument.
type cHeadArg struct {
	kind    headArgKind
	cval    value.Value
	slot    int
	exName  string     // existential variable
	functor string     // explicit Skolem functor
	skArgs  []cHeadArg // Skolem arguments (const or slot only)
}

type headArgKind uint8

const (
	headConst headArgKind = iota
	headSlot
	headExist
	headSkolem
)

type cHead struct {
	pred string
	args []cHeadArg
}

// aggAccum is the accumulator of one aggregate group.
type aggAccum struct {
	seen  map[string]bool
	sum   float64
	prod  float64
	count int64
	min   value.Value
	max   value.Value
	// packItems collects name=value pairs for pack.
	packItems []string
	// groupVals keeps the group variable values for stratified emission.
	groupVals []value.Value
	allInts   bool
}

func newAggAccum() *aggAccum {
	return &aggAccum{seen: map[string]bool{}, prod: 1, allInts: true}
}

func (a *aggAccum) update(op string, v value.Value, v2 value.Value) error {
	switch op {
	case "count":
		a.count++
	case "sum", "avg":
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("vadalog: %s over non-numeric value %s", op, v)
		}
		if v.K != value.Int {
			a.allInts = false
		}
		a.sum += f
		a.count++
	case "prod":
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("vadalog: prod over non-numeric value %s", v)
		}
		if v.K != value.Int {
			a.allInts = false
		}
		a.prod *= f
		a.count++
	case "min":
		if a.count == 0 || value.Compare(v, a.min) < 0 {
			a.min = v
		}
		a.count++
	case "max":
		if a.count == 0 || value.Compare(v, a.max) > 0 {
			a.max = v
		}
		a.count++
	case "pack":
		a.packItems = append(a.packItems, v.String()+"="+v2.String())
		a.count++
	default:
		return fmt.Errorf("vadalog: unknown aggregate %q", op)
	}
	return nil
}

func (a *aggAccum) current(op string) value.Value {
	switch op {
	case "count":
		return value.IntV(a.count)
	case "sum":
		if a.allInts {
			return value.IntV(int64(a.sum))
		}
		return value.FloatV(a.sum)
	case "avg":
		if a.count == 0 {
			return value.FloatV(0)
		}
		return value.FloatV(a.sum / float64(a.count))
	case "prod":
		if a.allInts {
			return value.IntV(int64(a.prod))
		}
		return value.FloatV(a.prod)
	case "min":
		return a.min
	case "max":
		return a.max
	case "pack":
		items := append([]string(nil), a.packItems...)
		sort.Strings(items)
		return value.Str(strings.Join(items, "|"))
	default:
		return value.Value{}
	}
}

// cRule is a compiled rule with its evaluation plan.
type cRule struct {
	idx   int
	rule  Rule
	slots map[string]int
	steps []cStep
	heads []cHead

	// existFunctors maps each existential head variable to its generated
	// Skolem functor name; frontierSlots are the universal head variable
	// slots, in sorted name order, used as Skolem arguments.
	existNames    []string
	existFunctors map[string]string
	frontierSlots []int

	aggStep    int // index into steps of the aggregate assignment, or -1
	stratAgg   bool
	groupSlots []int // slots of the grouping variables (stratified + monotonic)
	aggState   map[string]*aggAccum

	// touchesGrow reports whether any body atom reads a predicate that grows
	// during this rule's stratum fixpoint; growOccs are the indices of such
	// join steps.
	growOccs []int
}

// slotEnv adapts the slot array to the expression Env interface.
type slotEnv struct {
	slots []value.Value
	names map[string]int
}

func (s slotEnv) Lookup(name string) (value.Value, bool) {
	i, ok := s.names[name]
	if !ok {
		return value.Value{}, false
	}
	v := s.slots[i]
	return v, !v.IsZero()
}

// prepare validates arities, creates relations for every predicate, and
// compiles all rules.
func (e *engine) prepare() error {
	arities := map[string]int{}
	note := func(pred string, n int, line int) error {
		if prev, ok := arities[pred]; ok && prev != n {
			return fmt.Errorf("vadalog: line %d: predicate %s used with arity %d and %d", line, pred, n, prev)
		}
		arities[pred] = n
		return nil
	}
	for _, r := range e.prog.Rules {
		for _, h := range r.Head {
			if err := note(h.Pred, len(h.Args), r.Line); err != nil {
				return err
			}
		}
		for _, l := range r.Body {
			if l.Kind == LitAtom || l.Kind == LitNegAtom {
				if err := note(l.Atom.Pred, len(l.Atom.Args), r.Line); err != nil {
					return err
				}
			}
		}
	}
	for pred, n := range arities {
		if rel := e.db.Relation(pred); rel != nil {
			if rel.Arity != n {
				return fmt.Errorf("vadalog: predicate %s has arity %d in program but %d in database", pred, n, rel.Arity)
			}
			continue
		}
		if _, err := e.db.EnsureRelation(pred, n); err != nil {
			return err
		}
	}
	if e.cachedRules != nil {
		e.rules = e.cachedRules
		return nil
	}
	for i := range e.prog.Rules {
		cr, err := compileProgRule(e.prog, i)
		if err != nil {
			return err
		}
		e.rules = append(e.rules, cr)
	}
	return nil
}

// compileProgRule compiles one rule of the program. The result depends only
// on the program text, so callers that re-run the same program (the
// maintenance path) compile once and reuse.
func compileProgRule(prog *Program, idx int) (*cRule, error) {
	r := prog.Rules[idx]
	cr := &cRule{idx: idx, rule: r, slots: map[string]int{}, aggStep: -1,
		existFunctors: map[string]string{}, aggState: map[string]*aggAccum{}}
	slotOf := func(name string) int {
		if s, ok := cr.slots[name]; ok {
			return s
		}
		s := len(cr.slots)
		cr.slots[name] = s
		return s
	}

	bound := map[string]bool{}
	for _, l := range r.Body {
		switch l.Kind {
		case LitAtom, LitNegAtom:
			st := cStep{kind: stepJoin, pred: l.Atom.Pred}
			if l.Kind == LitNegAtom {
				st.kind = stepNeg
			}
			n := len(l.Atom.Args)
			st.argConst = make([]value.Value, n)
			st.argSlot = make([]int, n)
			boundInStep := map[string]bool{}
			for i, t := range l.Atom.Args {
				switch t := t.(type) {
				case Const:
					st.argSlot[i] = -1
					st.argConst[i] = t.Value
					st.staticMask |= 1 << uint(i)
					st.staticKeySlots = append(st.staticKeySlots, -1)
					st.staticKeyConst = append(st.staticKeyConst, t.Value)
				case Var:
					slot := slotOf(t.Name)
					st.argSlot[i] = slot
					switch {
					case bound[t.Name]:
						st.staticMask |= 1 << uint(i)
						st.staticKeySlots = append(st.staticKeySlots, slot)
						st.staticKeyConst = append(st.staticKeyConst, value.Value{})
					case boundInStep[t.Name]:
						st.checkPos = append(st.checkPos, i)
					default:
						if l.Kind == LitNegAtom {
							// Anonymous variables in negated atoms act as
							// wildcards (checked by safety for named vars).
							continue
						}
						st.binderPos = append(st.binderPos, i)
						boundInStep[t.Name] = true
					}
				default:
					return nil, fmt.Errorf("vadalog: rule %d (line %d): Skolem terms are not allowed in bodies", idx, r.Line)
				}
			}
			if l.Kind == LitAtom {
				for name := range boundInStep {
					bound[name] = true
				}
			}
			cr.steps = append(cr.steps, st)
		case LitExpr:
			target, isAssign := l.Expr.assignTarget()
			if isAssign && !bound[target] {
				st := cStep{pred: "", expr: l.Expr.Right, assignSlot: slotOf(target)}
				if agg := l.Expr.findAggregate(); agg != nil {
					st.kind = stepAgg
					st.agg = agg
					st.aggMonotonic = agg.Monotonic()
					if cr.aggStep >= 0 {
						return nil, fmt.Errorf("vadalog: rule %d (line %d): multiple aggregates", idx, r.Line)
					}
					cr.aggStep = len(cr.steps)
					cr.stratAgg = !agg.Monotonic()
				} else {
					st.kind = stepAssign
				}
				bound[target] = true
				cr.steps = append(cr.steps, st)
			} else {
				cr.steps = append(cr.steps, cStep{kind: stepCond, expr: l.Expr, assignSlot: -1})
			}
		}
	}

	// Heads: resolve slots, existentials and Skolem functors.
	exVars := map[string]bool{}
	for _, v := range r.ExistentialVars() {
		exVars[v] = true
		cr.existNames = append(cr.existNames, v)
		cr.existFunctors[v] = fmt.Sprintf("ex_r%d_%s", idx, v)
	}
	sort.Strings(cr.existNames)
	// Frontier: universal head variables, sorted by name for determinism.
	var frontier []string
	for _, v := range r.HeadVars() {
		if !exVars[v] {
			frontier = append(frontier, v)
		}
	}
	sort.Strings(frontier)
	for _, v := range frontier {
		s, ok := cr.slots[v]
		if !ok {
			return nil, fmt.Errorf("vadalog: rule %d (line %d): head variable %s neither bound nor existential", idx, r.Line, v)
		}
		cr.frontierSlots = append(cr.frontierSlots, s)
	}

	var compileHeadArg func(t Term) (cHeadArg, error)
	compileHeadArg = func(t Term) (cHeadArg, error) {
		switch t := t.(type) {
		case Const:
			return cHeadArg{kind: headConst, cval: t.Value}, nil
		case Var:
			if exVars[t.Name] {
				return cHeadArg{kind: headExist, exName: t.Name}, nil
			}
			return cHeadArg{kind: headSlot, slot: cr.slots[t.Name]}, nil
		case SkolemTerm:
			ha := cHeadArg{kind: headSkolem, functor: t.Functor}
			for _, a := range t.Args {
				sub, err := compileHeadArg(a)
				if err != nil {
					return cHeadArg{}, err
				}
				if sub.kind == headExist || sub.kind == headSkolem {
					return cHeadArg{}, fmt.Errorf("vadalog: rule %d: Skolem arguments must be universal variables or constants", idx)
				}
				ha.skArgs = append(ha.skArgs, sub)
			}
			return ha, nil
		default:
			return cHeadArg{}, fmt.Errorf("vadalog: rule %d: unsupported head term", idx)
		}
	}
	for _, h := range r.Head {
		ch := cHead{pred: h.Pred}
		for _, t := range h.Args {
			ha, err := compileHeadArg(t)
			if err != nil {
				return nil, err
			}
			ch.args = append(ch.args, ha)
		}
		cr.heads = append(cr.heads, ch)
	}

	// Grouping variables for aggregates: head variables bound by the body,
	// excluding the aggregate target, in sorted name order.
	if cr.aggStep >= 0 {
		target := -1
		target = cr.steps[cr.aggStep].assignSlot
		groupNames := map[string]bool{}
		for _, v := range r.HeadVars() {
			if exVars[v] {
				continue
			}
			if s, ok := cr.slots[v]; ok && s != target {
				groupNames[v] = true
			}
		}
		var names []string
		for n := range groupNames {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			cr.groupSlots = append(cr.groupSlots, cr.slots[n])
		}
	}

	// Empty-body rules must be ground facts.
	if len(r.Body) == 0 {
		for _, h := range r.Head {
			for _, t := range h.Args {
				if _, ok := t.(Const); !ok {
					return nil, fmt.Errorf("vadalog: rule %d (line %d): facts must be ground", idx, r.Line)
				}
			}
		}
	}
	return cr, nil
}

// checkCtx polls the run context; it returns the raw context error, which
// finish later canonicalizes to ErrCanceled/ErrTimeout. Called at stratum,
// round and rule boundaries (shard boundaries poll inside runShards).
func (e *engine) checkCtx() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// run evaluates the program stratum by stratum. Each stratum runs under the
// fault guard and the OnFault policy (faultpolicy.go).
func (e *engine) run() error {
	for si, stratum := range e.an.Strata {
		if err := e.runGuarded(si, stratum); err != nil {
			return err
		}
	}
	return nil
}

func (e *engine) runStratum(stratumIdx int, ruleIdxs []int) error {
	if err := e.checkCtx(); err != nil {
		return err
	}
	// Predicates that grow during this stratum's fixpoint.
	grow := headPreds(e.prog, ruleIdxs)
	var fixpointRules []*cRule
	var stratAggRules []*cRule
	for _, ri := range ruleIdxs {
		cr := e.rules[ri]
		cr.growOccs = cr.growOccs[:0]
		for si, st := range cr.steps {
			if st.kind == stepJoin && grow[st.pred] {
				cr.growOccs = append(cr.growOccs, si)
			}
		}
		if cr.stratAgg {
			stratAggRules = append(stratAggRules, cr)
		} else {
			fixpointRules = append(fixpointRules, cr)
		}
	}

	// Stratified-aggregate rules read only lower strata; run them once,
	// before the fixpoint, so their results feed the stratum's other rules.
	for _, cr := range stratAggRules {
		if _, err := e.evalAgg(cr); err != nil {
			return err
		}
	}

	// Round 0: full evaluation of every rule.
	startLens := e.lens()
	total := 0
	for _, cr := range fixpointRules {
		n, err := e.eval(cr, fullWindows{})
		if err != nil {
			return err
		}
		total += n
	}
	if e.trace != nil {
		e.trace.AddRound(stratumIdx, 0, total)
	}
	if total == 0 {
		return nil
	}

	// Delta rounds (or full naive re-evaluation when requested).
	prev := startLens
	for round := 1; ; round++ {
		e.rounds++
		if err := e.checkCtx(); err != nil {
			return err
		}
		if round > e.opts.MaxRounds {
			return fmt.Errorf("vadalog: fixpoint did not converge within %d rounds", e.opts.MaxRounds)
		}
		cur := e.lens()
		inserted := 0
		for _, cr := range fixpointRules {
			if len(cr.growOccs) == 0 {
				continue
			}
			if e.opts.Naive {
				n, err := e.eval(cr, fullWindows{})
				if err != nil {
					return err
				}
				inserted += n
				continue
			}
			for _, occ := range cr.growOccs {
				w := deltaWindows{prev: prev, cur: cur, deltaStep: occ, growOccs: cr.growOccs}
				n, err := e.eval(cr, w)
				if err != nil {
					return err
				}
				inserted += n
			}
		}
		if e.trace != nil {
			e.trace.AddRound(stratumIdx, round, inserted)
		}
		if inserted == 0 {
			return nil
		}
		prev = cur
	}
}

// lens snapshots the current length of every relation.
func (e *engine) lens() map[string]int {
	out := make(map[string]int, len(e.db.rels))
	for pred, r := range e.db.rels {
		out[pred] = r.Len()
	}
	return out
}

// windows abstracts the fact windows visible to each join step of a rule
// evaluation variant.
type windows interface {
	// rangeFor returns the [lo,hi) fact positions visible at step si; hi of
	// -1 means "live" (all facts currently in the relation).
	rangeFor(si int, pred string) (int, int)
}

// fullWindows sees everything (round-0 and non-recursive evaluation).
type fullWindows struct{}

func (fullWindows) rangeFor(int, string) (int, int) { return 0, -1 }

// deltaWindows implements the standard semi-naive decomposition: the
// designated occurrence reads only the delta window, occurrences of growing
// predicates before it read the pre-delta prefix, later ones read everything.
type deltaWindows struct {
	prev, cur map[string]int
	deltaStep int
	growOccs  []int
}

func (w deltaWindows) rangeFor(si int, pred string) (int, int) {
	isGrow := false
	for _, o := range w.growOccs {
		if o == si {
			isGrow = true
			break
		}
	}
	if !isGrow {
		return 0, -1
	}
	switch {
	case si == w.deltaStep:
		return w.prev[pred], w.cur[pred]
	case si < w.deltaStep:
		return 0, w.prev[pred]
	default:
		return 0, -1
	}
}

// eval evaluates a rule under the given windows, fanning the driver window
// out to the worker pool when the run is parallel and the rule is shardable.
// The pool only exists at all for runs without provenance (whose "first
// derivation" needs a global insertion order) and without monotonic
// aggregates (whose running emissions are order-sensitive — see
// hasMonotonicAgg); stratified-aggregate rules take their own sharded path
// through evalStratifiedAgg.
func (e *engine) eval(cr *cRule, w windows) (int, error) {
	if err := e.checkCtx(); err != nil {
		return 0, err
	}
	if e.trace == nil {
		return e.evalDispatch(cr, w)
	}
	e.curFirings, e.curProbes = 0, 0
	start := time.Now()
	n, err := e.evalDispatch(cr, w)
	e.trace.AddEval(cr.idx, e.curFirings, int64(n), e.curProbes, time.Since(start))
	return n, err
}

// evalDispatch routes a rule evaluation to the sharded or sequential engine.
func (e *engine) evalDispatch(cr *cRule, w windows) (int, error) {
	if e.pool != nil && cr.aggStep < 0 && e.prov == nil {
		if driver := driverStep(cr, w); driver >= 0 {
			return e.evalRuleSharded(cr, w, driver)
		}
	}
	return e.evalRule(cr, w)
}

// evalAgg is the traced wrapper around evalStratifiedAgg, mirroring eval.
func (e *engine) evalAgg(cr *cRule) (int, error) {
	if err := e.checkCtx(); err != nil {
		return 0, err
	}
	if e.trace == nil {
		return e.evalStratifiedAgg(cr)
	}
	e.curFirings, e.curProbes = 0, 0
	start := time.Now()
	n, err := e.evalStratifiedAgg(cr)
	e.trace.AddEval(cr.idx, e.curFirings, int64(n), e.curProbes, time.Since(start))
	return n, err
}

// driverStep picks the join step whose window partitions the rule's work: the
// delta occurrence in semi-naive rounds, the first join otherwise. -1 means
// the rule enumerates nothing (fact rules) and is evaluated in place.
func driverStep(cr *cRule, w windows) int {
	if dw, ok := w.(deltaWindows); ok {
		return dw.deltaStep
	}
	for si := range cr.steps {
		if cr.steps[si].kind == stepJoin {
			return si
		}
	}
	return -1
}

// evalRule evaluates a rule sequentially under the given windows, returning
// the number of new facts inserted.
func (e *engine) evalRule(cr *cRule, w windows) (int, error) {
	inserted := 0
	c := &evalCtx{
		e: e, cr: cr, w: w,
		slots:     make([]value.Value, len(cr.slots)),
		limit:     len(cr.steps),
		shardStep: -1,
	}
	c.onMatch = func() error {
		n, err := e.emit(cr, c.slots)
		inserted += n
		return err
	}
	err := c.step(0)
	e.curFirings += c.firings
	e.curProbes += c.probes
	if err != nil {
		return 0, err
	}
	return inserted, nil
}

// evalCtx is one traversal of a rule body: a private slot array, the fact
// windows, an optional shard restriction on the driver step, and the sink
// invoked on every complete match. Sequential evaluation uses a single ctx
// whose sink inserts directly; parallel evaluation runs one ctx per shard
// with a buffering sink (parallel.go); stratified aggregation stops the
// traversal at the aggregate step and accumulates groups.
type evalCtx struct {
	e     *engine
	cr    *cRule
	w     windows
	slots []value.Value

	// limit is the step index where the traversal stops and onMatch fires:
	// len(cr.steps) for full rule evaluation, cr.aggStep for the collect
	// phase of stratified aggregation.
	limit int
	// lenientCond treats non-boolean pre-aggregate conditions as false
	// instead of erroring (the stratified-aggregate collect semantics).
	lenientCond bool

	// shardStep restricts the join enumeration at that step to the absolute
	// fact positions [shardLo, shardHi); -1 leaves every step unrestricted.
	shardStep        int
	shardLo, shardHi int

	// cancelled aborts the traversal cooperatively after another shard of
	// the same evaluation has failed; nil for sequential runs.
	cancelled *atomicBool

	// firings counts complete body matches and probes the candidate facts
	// visited at join steps. The counters are local to the traversal (one
	// per shard in parallel runs) and are folded into the engine's current
	// evaluation — and from there into the obs trace — by the caller.
	firings int64
	probes  int64

	// keyBufs holds one reusable lookup-key buffer per step depth, so keyed
	// probes don't allocate per candidate binding. Depths never re-enter
	// themselves within one traversal, and Lookup/VisitRange only read the
	// key synchronously, so per-depth reuse is safe.
	keyBufs [][]value.Value

	onMatch func() error
}

// errFirstMatch unwinds a FirstMatchOnly traversal back to the leading atom
// after a complete match: the guarded head is fully bound there, so further
// witnesses for the same guard binding can only re-emit the same fact.
var errFirstMatch = errors.New("vadalog: first match found")

func (c *evalCtx) step(si int) error {
	if si == c.limit {
		c.firings++
		if err := c.onMatch(); err != nil {
			return err
		}
		if c.cr.rule.FirstMatchOnly {
			return errFirstMatch
		}
		return nil
	}
	e, cr, slots := c.e, c.cr, c.slots
	st := &cr.steps[si]
	switch st.kind {
	case stepJoin:
		rel := e.db.Relation(st.pred)
		lo, hi := c.w.rangeFor(si, st.pred)
		if hi < 0 {
			hi = rel.Len()
		}
		if si == c.shardStep {
			lo = max(lo, c.shardLo)
			hi = min(hi, c.shardHi)
		}
		if lo >= hi {
			return nil
		}
		visit := func(pos int) error {
			if c.cancelled != nil && c.cancelled.Load() {
				return errEvalCancelled
			}
			c.probes++
			f := rel.At(pos)
			for _, i := range st.binderPos {
				slots[st.argSlot[i]] = f[i]
			}
			// checkPos positions repeat a variable whose binder is
			// earlier in this same atom, so check after binding.
			ok := true
			for _, i := range st.checkPos {
				if !value.Equal(f[i], slots[st.argSlot[i]]) {
					ok = false
					break
				}
			}
			if ok {
				if e.prov != nil {
					e.parentStack = append(e.parentStack, parentRef{pred: st.pred, pos: pos})
				}
				err := c.step(si + 1)
				if e.prov != nil {
					e.parentStack = e.parentStack[:len(e.parentStack)-1]
				}
				if err == errFirstMatch && si == 0 {
					// This leading-atom binding is satisfied; move on to
					// the next one instead of enumerating more witnesses.
					err = nil
				}
				if err != nil {
					return err
				}
			}
			for _, i := range st.binderPos {
				slots[st.argSlot[i]] = value.Value{}
			}
			return nil
		}
		// Range-restricted probe: the window is applied before collision
		// verification, and candidates are verified lazily so a
		// FirstMatchOnly cut stops before the rest of the bucket is checked.
		return rel.VisitRange(st.staticMask, c.stepKey(si, st), lo, hi, visit)
	case stepNeg:
		rel := e.db.Relation(st.pred)
		keyVals := c.stepKey(si, st)
		positions := rel.Lookup(st.staticMask, keyVals)
		if len(positions) > 0 {
			return nil // some matching fact exists: negation fails
		}
		return c.step(si + 1)
	case stepCond:
		v, err := st.expr.Eval(slotEnv{slots: slots, names: cr.slots})
		if err != nil {
			return err
		}
		if c.lenientCond {
			if !v.Truthy() {
				return nil
			}
			return c.step(si + 1)
		}
		if v.K != value.Bool {
			return fmt.Errorf("vadalog: rule %d (line %d): condition %s is not boolean", cr.idx, cr.rule.Line, st.expr)
		}
		if !v.B {
			return nil
		}
		return c.step(si + 1)
	case stepAssign:
		v, err := st.expr.Eval(slotEnv{slots: slots, names: cr.slots})
		if err != nil {
			return err
		}
		slots[st.assignSlot] = v
		err = c.step(si + 1)
		slots[st.assignSlot] = value.Value{}
		return err
	case stepAgg:
		return e.stepMonotonicAgg(cr, st, slots, func() error { return c.step(si + 1) })
	default:
		return fmt.Errorf("vadalog: invalid step kind")
	}
}

// stepKey fills this depth's reusable buffer with the lookup key values for
// the step's statically bound positions.
func (c *evalCtx) stepKey(si int, st *cStep) []value.Value {
	if st.staticMask == 0 {
		return nil
	}
	if c.keyBufs == nil {
		c.keyBufs = make([][]value.Value, len(c.cr.steps))
	}
	out := c.keyBufs[si]
	if cap(out) < len(st.staticKeySlots) {
		out = make([]value.Value, len(st.staticKeySlots))
		c.keyBufs[si] = out
	}
	out = out[:len(st.staticKeySlots)]
	for i, slot := range st.staticKeySlots {
		if slot < 0 {
			out[i] = st.staticKeyConst[i]
		} else {
			out[i] = c.slots[slot]
		}
	}
	return out
}

// stepMonotonicAgg advances one body match through a monotonic aggregate:
// unseen contributor tuples update the group accumulator and continue with
// the new running value bound; seen contributors are pruned, which both
// guarantees convergence and makes re-derivations across semi-naive rounds
// harmless (DESIGN.md, "Monotonic aggregation").
func (e *engine) stepMonotonicAgg(cr *cRule, st *cStep, slots []value.Value, cont func() error) error {
	group := make([]value.Value, len(cr.groupSlots))
	for i, s := range cr.groupSlots {
		group[i] = slots[s]
	}
	gkey := encodeKey(group)
	acc, ok := cr.aggState[gkey]
	if !ok {
		acc = newAggAccum()
		cr.aggState[gkey] = acc
	}
	contrib := make([]value.Value, len(st.agg.Contributors))
	for i, name := range st.agg.Contributors {
		v, ok := slotEnv{slots: slots, names: cr.slots}.Lookup(name)
		if !ok {
			return fmt.Errorf("vadalog: rule %d: contributor %s unbound", cr.idx, name)
		}
		contrib[i] = v
	}
	ckey := encodeKey(contrib)
	if acc.seen[ckey] {
		return nil
	}
	acc.seen[ckey] = true
	var av value.Value
	if st.agg.Arg != nil {
		v, err := st.agg.Arg.Eval(slotEnv{slots: slots, names: cr.slots})
		if err != nil {
			return err
		}
		av = v
	}
	if err := acc.update(st.agg.Op, av, value.Value{}); err != nil {
		return err
	}
	slots[st.assignSlot] = acc.current(st.agg.Op)
	err := cont()
	slots[st.assignSlot] = value.Value{}
	return err
}

// evalStratifiedAgg evaluates a rule containing a stratified aggregate: it
// enumerates all body matches up to the aggregate, groups them, computes the
// aggregate per group, then applies the remaining conditions and emits heads.
// Parallel runs shard the collect phase across the worker pool and merge the
// per-shard accumulators at the barrier (parallel.go).
func (e *engine) evalStratifiedAgg(cr *cRule) (int, error) {
	if e.pool != nil && e.prov == nil {
		if driver := driverStep(cr, fullWindows{}); driver >= 0 && driver < cr.aggStep &&
			e.db.Relation(cr.steps[driver].pred).Len() >= 2*minShardSize {
			return e.evalStratifiedAggSharded(cr, driver)
		}
	}
	groups := map[string]*aggAccum{}
	c := &evalCtx{
		e: e, cr: cr, w: fullWindows{},
		slots:       make([]value.Value, len(cr.slots)),
		limit:       cr.aggStep,
		lenientCond: true,
		shardStep:   -1,
	}
	c.onMatch = func() error { return accumulateGroup(cr, c.slots, groups) }
	err := c.step(0)
	e.curFirings += c.firings
	e.curProbes += c.probes
	if err != nil {
		return 0, err
	}
	return e.emitAggGroups(cr, groups)
}

// accumulateGroup folds one complete pre-aggregate body match into the group
// accumulator keyed by the grouping variables. Contributor-free aggregates
// absorb every distinct body match; listed contributors would make the
// aggregate monotonic, so they cannot reach this path.
func accumulateGroup(cr *cRule, slots []value.Value, groups map[string]*aggAccum) error {
	aggSt := &cr.steps[cr.aggStep]
	group := make([]value.Value, len(cr.groupSlots))
	for i, s := range cr.groupSlots {
		group[i] = slots[s]
	}
	gkey := encodeKey(group)
	acc, ok := groups[gkey]
	if !ok {
		acc = newAggAccum()
		acc.groupVals = group
		groups[gkey] = acc
	}
	var av, av2 value.Value
	if aggSt.agg.Arg != nil {
		v, err := aggSt.agg.Arg.Eval(slotEnv{slots: slots, names: cr.slots})
		if err != nil {
			return err
		}
		av = v
	}
	if aggSt.agg.Arg2 != nil {
		v, err := aggSt.agg.Arg2.Eval(slotEnv{slots: slots, names: cr.slots})
		if err != nil {
			return err
		}
		av2 = v
	}
	return acc.update(aggSt.agg.Op, av, av2)
}

// emitAggGroups runs the post-aggregate steps for every collected group, in
// sorted group-key order, and emits the rule heads.
func (e *engine) emitAggGroups(cr *cRule, groups map[string]*aggAccum) (int, error) {
	slots := make([]value.Value, len(cr.slots))
	aggSt := &cr.steps[cr.aggStep]
	gkeys := make([]string, 0, len(groups))
	for k := range groups {
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)
	inserted := 0
	e.inStratAgg = true
	defer func() { e.inStratAgg = false }()
	for _, gkey := range gkeys {
		acc := groups[gkey]
		for i := range slots {
			slots[i] = value.Value{}
		}
		for i, s := range cr.groupSlots {
			slots[s] = acc.groupVals[i]
		}
		slots[aggSt.assignSlot] = acc.current(aggSt.agg.Op)
		ok := true
		for si := cr.aggStep + 1; si < len(cr.steps); si++ {
			st := &cr.steps[si]
			switch st.kind {
			case stepCond:
				v, err := st.expr.Eval(slotEnv{slots: slots, names: cr.slots})
				if err != nil {
					return inserted, err
				}
				if !v.Truthy() {
					ok = false
				}
			case stepAssign:
				v, err := st.expr.Eval(slotEnv{slots: slots, names: cr.slots})
				if err != nil {
					return inserted, err
				}
				slots[st.assignSlot] = v
			default:
				return inserted, fmt.Errorf("vadalog: rule %d (line %d): atoms may not follow a stratified aggregate", cr.idx, cr.rule.Line)
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		n, err := e.emit(cr, slots)
		if err != nil {
			return inserted, err
		}
		inserted += n
	}
	return inserted, nil
}

// emit instantiates the rule heads under the current slots and inserts the
// resulting facts directly (the sequential sink). Head values are resolved
// into a reusable scratch tuple and copied only on genuine insertion
// (Relation.InsertValues), so the duplicate firings of a fixpoint round —
// usually the majority — allocate nothing.
func (e *engine) emit(cr *cRule, slots []value.Value) (int, error) {
	exVals := skolemExVals(cr, slots)
	inserted := 0
	for hi := range cr.heads {
		h := &cr.heads[hi]
		if cap(e.headScratch) < len(h.args) {
			e.headScratch = make([]value.Value, len(h.args))
		}
		vals := e.headScratch[:len(h.args)]
		for i := range h.args {
			v, err := resolveHeadArg(cr, slots, exVals, &h.args[i])
			if err != nil {
				return inserted, err
			}
			vals[i] = v
		}
		rel := e.db.Relation(h.pred)
		added, err := rel.InsertValues(vals)
		if err != nil {
			return inserted, err
		}
		if !added {
			continue
		}
		if e.prov != nil {
			d := derivation{ruleIdx: cr.idx, line: cr.rule.Line, viaAggregate: e.inStratAgg}
			if !e.inStratAgg {
				d.parents = append([]parentRef(nil), e.parentStack...)
			}
			e.prov[provKey(h.pred, rel.At(rel.Len()-1))] = d
		}
		inserted++
		e.derived++
		if e.opts.MaxFacts > 0 && e.derived > e.opts.MaxFacts {
			return inserted, errMaxFacts(e.opts.MaxFacts)
		}
	}
	return inserted, nil
}

func errMaxFacts(limit int) error {
	return fmt.Errorf("vadalog: derived fact limit %d exceeded", limit)
}

// headFacts instantiates every head atom of the rule under the slots and
// hands the resulting facts to the sink. Existential variables are realized
// with frontier-keyed Skolem identifiers shared across the head conjunction.
func headFacts(cr *cRule, slots []value.Value, sink func(pred string, f Fact) error) error {
	exVals := skolemExVals(cr, slots)
	for hi := range cr.heads {
		h := &cr.heads[hi]
		f := make(Fact, len(h.args))
		for i := range h.args {
			v, err := resolveHeadArg(cr, slots, exVals, &h.args[i])
			if err != nil {
				return err
			}
			f[i] = v
		}
		if err := sink(h.pred, f); err != nil {
			return err
		}
	}
	return nil
}

// skolemExVals realizes the rule's existential head variables as
// frontier-keyed Skolem values under the current slots; nil when the rule has
// none.
func skolemExVals(cr *cRule, slots []value.Value) map[string]value.Value {
	if len(cr.existNames) == 0 {
		return nil
	}
	frontier := make([]value.Value, len(cr.frontierSlots))
	for i, s := range cr.frontierSlots {
		frontier[i] = slots[s]
	}
	exVals := make(map[string]value.Value, len(cr.existNames))
	for _, name := range cr.existNames {
		exVals[name] = value.Skolem(cr.existFunctors[name], frontier...)
	}
	return exVals
}

// resolveHeadArg materializes one head argument under the current slots. A
// top-level function rather than a closure inside headFacts: recursive
// closures allocate, and this runs once per head argument per firing.
func resolveHeadArg(cr *cRule, slots []value.Value, exVals map[string]value.Value, ha *cHeadArg) (value.Value, error) {
	switch ha.kind {
	case headConst:
		return ha.cval, nil
	case headSlot:
		v := slots[ha.slot]
		if v.IsZero() {
			return value.Value{}, fmt.Errorf("vadalog: rule %d: unbound head slot", cr.idx)
		}
		return v, nil
	case headExist:
		return exVals[ha.exName], nil
	case headSkolem:
		args := make([]value.Value, len(ha.skArgs))
		for i := range ha.skArgs {
			v, err := resolveHeadArg(cr, slots, exVals, &ha.skArgs[i])
			if err != nil {
				return value.Value{}, err
			}
			args[i] = v
		}
		return value.Skolem(ha.functor, args...), nil
	default:
		return value.Value{}, fmt.Errorf("vadalog: invalid head argument")
	}
}
