package vadalog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestIncrementalRejectsNonMonotonic(t *testing.T) {
	neg := MustParse(`p(X) :- q(X), not r(X).`)
	if _, err := NewIncremental(neg, NewDatabase(), Options{}); err == nil {
		t.Error("negation must be rejected")
	}
	strat := MustParse(`s(G, T) :- q(G, V), T = sum(V).`)
	if _, err := NewIncremental(strat, NewDatabase(), Options{}); err == nil {
		t.Error("stratified aggregation must be rejected")
	}
	mono := MustParse(`s(G, T) :- q(G, V), T = msum(V, <V>).`)
	if _, err := NewIncremental(mono, NewDatabase(), Options{}); err != nil {
		t.Errorf("monotonic aggregation must be accepted: %v", err)
	}
}

func TestIncrementalTransitiveClosure(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	db := NewDatabase()
	db.MustAddFact("edge", value.Str("a"), value.Str("b"))
	inc, err := NewIncremental(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inc.DB().Count("tc") != 1 {
		t.Fatalf("initial tc = %d", inc.DB().Count("tc"))
	}
	// Adding b->c must derive b->c and a->c.
	if err := inc.Add("edge", value.Str("b"), value.Str("c")); err != nil {
		t.Fatal(err)
	}
	n, err := inc.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || inc.DB().Count("tc") != 3 {
		t.Fatalf("propagate derived %d, tc = %d", n, inc.DB().Count("tc"))
	}
	// A second propagation with nothing new is a no-op.
	n, err = inc.Propagate()
	if err != nil || n != 0 {
		t.Fatalf("idle propagate derived %d, %v", n, err)
	}
	// Bridging edge c->a closes the cycle: tc becomes all 9 pairs.
	if err := inc.Add("edge", value.Str("c"), value.Str("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Propagate(); err != nil {
		t.Fatal(err)
	}
	if inc.DB().Count("tc") != 9 {
		t.Fatalf("tc after cycle = %d, want 9", inc.DB().Count("tc"))
	}
}

// TestIncrementalEquivalentToBatch: random edge streams propagated one batch
// at a time produce exactly the facts a from-scratch run over the full data
// derives.
func TestIncrementalEquivalentToBatch(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10
		type e struct{ x, y int64 }
		var all []e
		for i := 0; i < 25; i++ {
			all = append(all, e{int64(rng.Intn(n)), int64(rng.Intn(n))})
		}
		// Incremental: first 10 edges at start, then 3 batches of 5.
		db := NewDatabase()
		for _, ed := range all[:10] {
			db.MustAddFact("edge", value.IntV(ed.x), value.IntV(ed.y))
		}
		inc, err := NewIncremental(prog, db, Options{})
		if err != nil {
			return false
		}
		for batch := 10; batch < len(all); batch += 5 {
			for _, ed := range all[batch:min(batch+5, len(all))] {
				if err := inc.Add("edge", value.IntV(ed.x), value.IntV(ed.y)); err != nil {
					return false
				}
			}
			if _, err := inc.Propagate(); err != nil {
				return false
			}
		}
		// Batch run over everything.
		full := NewDatabase()
		for _, ed := range all {
			full.MustAddFact("edge", value.IntV(ed.x), value.IntV(ed.y))
		}
		res, err := Run(prog, full, Options{})
		if err != nil {
			return false
		}
		return res.DB.Dump() == inc.DB().Dump()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalControl: the monotonic-aggregate accumulators survive
// propagation — adding a stake that completes a joint majority derives the
// control edge.
func TestIncrementalControl(t *testing.T) {
	prog := MustParse(`
		controls(X, X) :- company(X).
		controls(X, Y) :- controls(X, Z), owns(Z, Y, W), V = msum(W, <Z>), V > 0.5.
	`)
	db := NewDatabase()
	for _, c := range []string{"a", "b", "c"} {
		db.MustAddFact("company", value.Str(c))
	}
	db.MustAddFact("owns", value.Str("a"), value.Str("b"), value.FloatV(0.6))
	db.MustAddFact("owns", value.Str("a"), value.Str("c"), value.FloatV(0.3))
	inc, err := NewIncremental(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	has := func(x, y string) bool {
		for _, f := range inc.DB().Facts("controls") {
			if f[0].S == x && f[1].S == y {
				return true
			}
		}
		return false
	}
	if !has("a", "b") || has("a", "c") {
		t.Fatalf("initial control state wrong")
	}
	// b acquires 30% of c: jointly with a's 30%, a now controls c.
	if err := inc.Add("owns", value.Str("b"), value.Str("c"), value.FloatV(0.3)); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Propagate(); err != nil {
		t.Fatal(err)
	}
	if !has("a", "c") {
		t.Errorf("joint control not derived incrementally: %v", inc.DB().SortedFacts("controls"))
	}
}

// TestIncrementalControlEquivalence: streaming random stakes one at a time
// matches the batch control computation exactly.
func TestIncrementalControlEquivalence(t *testing.T) {
	prog := MustParse(`
		controls(X, X) :- company(X).
		controls(X, Y) :- controls(X, Z), owns(Z, Y, W), V = msum(W, <Z>), V > 0.5.
	`)
	rng := rand.New(rand.NewSource(5))
	const n = 20
	type stake struct {
		x, y int64
		w    float64
	}
	var stakes []stake
	for i := 0; i < 60; i++ {
		stakes = append(stakes, stake{int64(rng.Intn(n)), int64(rng.Intn(n)), rng.Float64() * 0.4})
	}
	db := NewDatabase()
	for i := 0; i < n; i++ {
		db.MustAddFact("company", value.IntV(int64(i)))
	}
	inc, err := NewIncremental(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stakes {
		if err := inc.Add("owns", value.IntV(s.x), value.IntV(s.y), value.FloatV(s.w)); err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Propagate(); err != nil {
			t.Fatal(err)
		}
	}
	full := NewDatabase()
	for i := 0; i < n; i++ {
		full.MustAddFact("company", value.IntV(int64(i)))
	}
	for _, s := range stakes {
		full.MustAddFact("owns", value.IntV(s.x), value.IntV(s.y), value.FloatV(s.w))
	}
	res, err := Run(prog, full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the controls relation only: intermediate monotonic-sum facts
	// of other predicates do not exist here, but the derived control pairs
	// must coincide.
	gotPairs := map[string]bool{}
	for _, f := range inc.DB().Facts("controls") {
		gotPairs[f.String()] = true
	}
	wantPairs := map[string]bool{}
	for _, f := range res.DB.Facts("controls") {
		wantPairs[f.String()] = true
	}
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(gotPairs), len(wantPairs))
	}
	for p := range wantPairs {
		if !gotPairs[p] {
			t.Errorf("missing pair %s", p)
		}
	}
}

func TestIncrementalExistentials(t *testing.T) {
	prog := MustParse(`
		assigned(X, T) :- task(X).
	`)
	db := NewDatabase()
	db.MustAddFact("task", value.Str("t1"))
	inc, err := NewIncremental(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add("task", value.Str("t2")); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Propagate(); err != nil {
		t.Fatal(err)
	}
	facts := inc.DB().SortedFacts("assigned")
	if len(facts) != 2 {
		t.Fatalf("assigned = %v", facts)
	}
	if value.Equal(facts[0][1], facts[1][1]) {
		t.Errorf("distinct tasks must get distinct nulls")
	}
}

func TestIncrementalProvenance(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	db := NewDatabase()
	db.MustAddFact("edge", value.Str("a"), value.Str("b"))
	inc, err := NewIncremental(prog, db, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add("edge", value.Str("b"), value.Str("c")); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Propagate(); err != nil {
		t.Fatal(err)
	}
	proof, err := inc.Result().Explain("tc", Fact{value.Str("a"), value.Str("c")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The proof of the incrementally derived fact spans both the original
	// and the streamed data.
	if proof.Size() != 4 {
		t.Errorf("proof size = %d\n%s", proof.Size(), proof)
	}
}
