package vadalog

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/value"
)

// ---------------------------------------------------------------------------
// Differential property test: parallel evaluation derives exactly the facts
// sequential evaluation derives, on randomly generated programs exercising
// joins, recursion, filters, negation, stratified aggregation, monotonic
// aggregation and existentials.
// ---------------------------------------------------------------------------

// generateProgram emits a random stratifiable program. Predicates are layered
// (every rule only reads predicates defined earlier, except positive
// self-recursion), so negation and aggregation never cross a cycle.
//
// Aggregates draw their input only from integer-valued predicates
// (aggSafe): integer sums merge exactly under any association, so the
// parallel shard merge is bit-identical to the sequential fold. Monotonic
// aggregation uses mcount, whose *set* of running emissions is independent
// of contribution order — the property that makes a cross-mode comparison
// meaningful (running msum values over distinct weights depend on insertion
// order even between two sequential runs).
func generateProgram(rng *rand.Rand) string {
	var b strings.Builder
	bins := []string{"e"}    // arity-2 predicates usable as join inputs
	uns := []string{"n"}     // arity-1 predicates
	aggSafe := []string{"e"} // arity-2, integer second column, no nulls
	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }
	idx := 0
	fresh := func(prefix string) string { idx++; return fmt.Sprintf("%s%d", prefix, idx) }

	nRules := 3 + rng.Intn(5)
	for i := 0; i < nRules; i++ {
		switch rng.Intn(8) {
		case 0: // join of two earlier binaries
			p := fresh("j")
			fmt.Fprintf(&b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", p, pick(bins), pick(bins))
			bins = append(bins, p)
		case 1: // recursive closure over an earlier binary
			p := fresh("t")
			base := pick(aggSafe)
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y).\n", p, base)
			fmt.Fprintf(&b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", p, p, base)
			bins = append(bins, p)
			aggSafe = append(aggSafe, p)
		case 2: // comparison filter (integer inputs only: kinds stay comparable)
			p := fresh("f")
			src := pick(aggSafe)
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y), X < Y.\n", p, src)
			bins = append(bins, p)
			aggSafe = append(aggSafe, p)
		case 3: // binary negation against an earlier (lower-stratum) binary
			p := fresh("g")
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y), not %s(Y,X).\n", p, pick(bins), pick(bins))
			bins = append(bins, p)
		case 4: // stratified aggregate over an integer-valued binary
			p := fresh("s")
			op := []string{"sum", "min", "max"}[rng.Intn(3)]
			fmt.Fprintf(&b, "%s(X,V) :- %s(X,Y), V = %s(Y).\n", p, pick(aggSafe), op)
			bins = append(bins, p)
			aggSafe = append(aggSafe, p)
		case 5: // monotonic aggregate (running count per group)
			p := fresh("m")
			fmt.Fprintf(&b, "%s(X,V) :- %s(X,Y), V = mcount(<Y>).\n", p, pick(aggSafe))
			bins = append(bins, p)
			aggSafe = append(aggSafe, p)
		case 6: // existential head variable (frontier-keyed Skolem)
			p := fresh("x")
			fmt.Fprintf(&b, "%s(X,Z) :- %s(X,Y).\n", p, pick(bins))
			bins = append(bins, p) // joinable, but never aggregate input
		case 7: // unary projection guarded by negation
			p := fresh("u")
			fmt.Fprintf(&b, "%s(X) :- %s(X), not %s(X,X).\n", p, pick(uns), pick(bins))
			uns = append(uns, p)
		}
	}
	return b.String()
}

// shrinkShards lowers the sharding threshold so that the small inputs used
// by tests actually exercise the parallel path (production inputs below
// 2*minShardSize fall back to sequential evaluation by design).
func shrinkShards(t *testing.T) {
	t.Helper()
	old := minShardSize
	minShardSize = 2
	t.Cleanup(func() { minShardSize = old })
}

func randomInputDB(rng *rand.Rand) *Database {
	db := NewDatabase()
	nodes := 6 + rng.Intn(6)
	for i := 0; i < nodes; i++ {
		db.MustAddFact("n", value.IntV(int64(i)))
	}
	edges := 10 + rng.Intn(30)
	for i := 0; i < edges; i++ {
		db.MustAddFact("e",
			value.IntV(int64(rng.Intn(nodes))), value.IntV(int64(rng.Intn(nodes))))
	}
	return db
}

// TestParallelDifferential generates programs and databases and asserts that
// sequential (Workers: 1) and parallel (Workers: 8) runs produce identical
// SortedFacts for every predicate, on at least 100 generated programs.
// Parallel runs at different worker counts must additionally agree on the
// exact relation contents *including insertion order* (the bit-identical
// guarantee of parallel.go).
func TestParallelDifferential(t *testing.T) {
	shrinkShards(t)
	const total = 120
	const needed = 100
	rng := rand.New(rand.NewSource(7))
	compared := 0
	for i := 0; i < total; i++ {
		src := generateProgram(rng)
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("program %d does not parse: %v\n%s", i, err, src)
		}
		db := randomInputDB(rng)
		opts := Options{MaxFacts: 200_000}

		seqOpts := opts
		seqOpts.Workers = 1
		seq, errSeq := Run(prog, db, seqOpts)

		par8Opts := opts
		par8Opts.Workers = 8
		par8Opts.Trace = obs.NewTrace()
		par8, errPar8 := Run(prog, db, par8Opts)

		par3Opts := opts
		par3Opts.Workers = 3
		par3Opts.Trace = obs.NewTrace()
		par3, errPar3 := Run(prog, db, par3Opts)

		if errSeq != nil || errPar8 != nil || errPar3 != nil {
			// A generated program can err at runtime (e.g. an aggregate fed
			// by a Skolem null through a join chain). All modes must agree
			// that it errs; the comparison is then vacuous.
			if errSeq == nil || errPar8 == nil || errPar3 == nil {
				t.Fatalf("program %d: inconsistent errors: seq=%v par8=%v par3=%v\n%s",
					i, errSeq, errPar8, errPar3, src)
			}
			continue
		}
		if seq.DB.Dump() != par8.DB.Dump() {
			t.Fatalf("program %d: workers=1 and workers=8 disagree\nprogram:\n%s\nseq:\n%s\npar:\n%s",
				i, src, seq.DB.Dump(), par8.DB.Dump())
		}
		// Bit-identical across parallel worker counts: same facts in the
		// same insertion order for every relation.
		for _, pred := range par8.DB.Predicates() {
			f8, f3 := par8.DB.Facts(pred), par3.DB.Facts(pred)
			if len(f8) != len(f3) {
				t.Fatalf("program %d: %s has %d facts at workers=8 but %d at workers=3\n%s",
					i, pred, len(f8), len(f3), src)
			}
			for k := range f8 {
				for c := range f8[k] {
					if !value.Equal(f8[k][c], f3[k][c]) {
						t.Fatalf("program %d: %s insertion order diverges at position %d: %s vs %s\n%s",
							i, pred, k, f8[k], f3[k], src)
					}
				}
			}
		}
		// The run traces — firings, probes, derived counts, round deltas —
		// must also be identical across parallel worker counts: the shard
		// plan depends only on window sizes, never on the worker count.
		var t8, t3 bytes.Buffer
		if err := par8Opts.Trace.WriteJSON(&t8); err != nil {
			t.Fatal(err)
		}
		if err := par3Opts.Trace.WriteJSON(&t3); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(t8.Bytes(), t3.Bytes()) {
			t.Fatalf("program %d: run traces diverge between workers=8 and workers=3\nprogram:\n%s\nworkers=8:\n%s\nworkers=3:\n%s",
				i, src, t8.String(), t3.String())
		}
		compared++
	}
	if compared < needed {
		t.Fatalf("only %d/%d generated programs were comparable (need >= %d)", compared, total, needed)
	}
	t.Logf("compared %d/%d generated programs", compared, total)
}

// ---------------------------------------------------------------------------
// Shard/merge layer unit tests
// ---------------------------------------------------------------------------

func TestShardPlan(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 63, 64, 65, 127, 128, 1000, 4096, 100000} {
		plan := shardPlan(n)
		if n <= 0 {
			if plan != nil {
				t.Fatalf("shardPlan(%d) = %v, want nil", n, plan)
			}
			continue
		}
		if len(plan) > maxShards {
			t.Fatalf("shardPlan(%d) has %d shards, cap is %d", n, len(plan), maxShards)
		}
		prev := 0
		for _, r := range plan {
			if r[0] != prev || r[1] <= r[0] {
				t.Fatalf("shardPlan(%d) not contiguous/nonempty: %v", n, plan)
			}
			prev = r[1]
		}
		if prev != n {
			t.Fatalf("shardPlan(%d) covers [0,%d)", n, prev)
		}
	}
}

var tcProgram = MustParse(`
	tc(X,Y) :- edge(X,Y).
	tc(X,Z) :- tc(X,Y), edge(Y,Z).
`)

func runBoth(t *testing.T, prog *Program, db *Database, workers int) (*Result, *Result) {
	t.Helper()
	seq, err := Run(prog, db, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(prog, db, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return seq, par
}

func TestParallelEmptyDelta(t *testing.T) {
	// No edge facts at all: round 0 derives nothing, the parallel path must
	// handle the empty driver window without fanning out.
	db := NewDatabase()
	seq, par := runBoth(t, tcProgram, db, 8)
	if seq.DB.Dump() != par.DB.Dump() || par.Stats.FactsDerived != 0 {
		t.Fatalf("empty database: seq=%q par=%q derived=%d", seq.DB.Dump(), par.DB.Dump(), par.Stats.FactsDerived)
	}
}

func TestParallelFewerFactsThanWorkers(t *testing.T) {
	shrinkShards(t)
	for _, facts := range []int{1, 3, 7} {
		t.Run(fmt.Sprintf("facts=%d", facts), func(t *testing.T) {
			db := NewDatabase()
			for i := 0; i < facts; i++ {
				db.MustAddFact("edge", value.IntV(int64(i)), value.IntV(int64(i+1)))
			}
			seq, par := runBoth(t, tcProgram, db, 8)
			if seq.DB.Dump() != par.DB.Dump() {
				t.Fatalf("disagreement at %d facts:\nseq: %s\npar: %s", facts, seq.DB.Dump(), par.DB.Dump())
			}
		})
	}
}

func TestParallelWorkersExceedGOMAXPROCS(t *testing.T) {
	shrinkShards(t)
	workers := 4 * runtime.GOMAXPROCS(0)
	db := randomEdgeDB(11, 40, 160)
	seq, par := runBoth(t, tcProgram, db, workers)
	if seq.DB.Dump() != par.DB.Dump() {
		t.Fatalf("workers=%d disagrees with sequential", workers)
	}
	if seq.Stats.FactsDerived != par.Stats.FactsDerived {
		t.Fatalf("derived %d sequential vs %d parallel", seq.Stats.FactsDerived, par.Stats.FactsDerived)
	}
}

// TestParallelErrorPropagation: a rule that fails inside worker goroutines
// must surface the error without deadlocking, with every shard either run or
// cancelled.
func TestParallelErrorPropagation(t *testing.T) {
	prog := MustParse(`out(X,Y) :- in(X), Y = to_int(X).`)
	db := NewDatabase()
	for i := 0; i < 2000; i++ {
		db.MustAddFact("in", value.Str(fmt.Sprintf("bad%d", i)))
	}
	if _, err := Run(prog, db, Options{Workers: 8}); err == nil {
		t.Fatal("expected a conversion error from the parallel run")
	}
	// The same engine (same pool) must stay usable for a subsequent run.
	db2 := randomEdgeDB(3, 10, 20)
	if _, err := Run(tcProgram, db2, Options{Workers: 8}); err != nil {
		t.Fatalf("run after failed run: %v", err)
	}
}

func TestParallelMaxFactsValve(t *testing.T) {
	prog := MustParse(`
		pair(X,Y) :- item(X), item(Y).
	`)
	db := NewDatabase()
	for i := 0; i < 1000; i++ {
		db.MustAddFact("item", value.IntV(int64(i)))
	}
	if _, err := Run(prog, db, Options{Workers: 8, MaxFacts: 5000}); err == nil {
		t.Fatal("parallel run must enforce MaxFacts at the merge barrier")
	}
}

func TestWorkerPoolFirstError(t *testing.T) {
	p := newWorkerPool(4)
	defer p.close()
	var cancel atomicBool
	ran := make([]bool, 100)
	err := p.runShards(nil, 100, &cancel, func(s int) error {
		ran[s] = true
		if s == 7 {
			return fmt.Errorf("boom at shard %d", s)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	if !ran[7] {
		t.Fatal("failing shard did not run")
	}
	// A second batch on the same pool must work (no poisoned workers).
	var cancel2 atomicBool
	if err := p.runShards(nil, 50, &cancel2, func(int) error { return nil }); err != nil {
		t.Fatalf("second batch: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Parallel stratified aggregation, negation, existentials, incremental
// ---------------------------------------------------------------------------

func TestParallelStratifiedAggregates(t *testing.T) {
	prog := MustParse(`
		total(G,V) :- obs(G,X), V = sum(X).
		lo(G,V)    :- obs(G,X), V = min(X).
		hi(G,V)    :- obs(G,X), V = max(X).
		cnt(G,V)   :- obs(G,X), V = count().
		mean(G,V)  :- obs(G,X), V = avg(X).
		packed(G,P) :- attr(G,N,X), P = pack(N,X).
	`)
	rng := rand.New(rand.NewSource(5))
	db := NewDatabase()
	for i := 0; i < 700; i++ {
		g := fmt.Sprintf("g%d", rng.Intn(9))
		db.MustAddFact("obs", value.Str(g), value.IntV(int64(rng.Intn(50))))
	}
	for i := 0; i < 300; i++ {
		g := fmt.Sprintf("g%d", rng.Intn(9))
		db.MustAddFact("attr", value.Str(g), value.Str(fmt.Sprintf("k%d", i)), value.IntV(int64(i)))
	}
	seq, par := runBoth(t, prog, db, 8)
	if seq.DB.Dump() != par.DB.Dump() {
		t.Fatalf("stratified aggregates disagree:\nseq: %s\npar: %s", seq.DB.Dump(), par.DB.Dump())
	}
}

func TestParallelNegationAndExistentials(t *testing.T) {
	shrinkShards(t)
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
		sink(X,B) :- node(X), not tc(X,X).
		holder(B,X) :- sink(X,B).
	`)
	db := randomEdgeDB(21, 30, 60)
	for i := 0; i < 30; i++ {
		db.MustAddFact("node", value.IntV(int64(i)))
	}
	seq, par := runBoth(t, prog, db, 8)
	if seq.DB.Dump() != par.DB.Dump() {
		t.Fatal("negation + existential program disagrees between modes")
	}
	if len(par.Output("holder")) == 0 {
		t.Fatal("expected Skolem holders to be derived")
	}
}

// TestParallelMonotonicAggregate: rules with monotonic aggregates fall back
// to sequential evaluation inside a parallel run, so the derived set matches
// the sequential engine exactly even for order-sensitive running sums —
// the surrounding non-aggregate rules still run sharded.
func TestParallelMonotonicAggregate(t *testing.T) {
	prog := MustParse(`
		link(X,Y,W) :- owns(X,Y,W).
		reach(X,V) :- link(X,Y,W), V = msum(W, <Y>).
	`)
	rng := rand.New(rand.NewSource(13))
	db := NewDatabase()
	for i := 0; i < 400; i++ {
		db.MustAddFact("owns",
			value.IntV(int64(rng.Intn(20))), value.IntV(int64(rng.Intn(20))),
			value.IntV(int64(1+rng.Intn(5))))
	}
	seq, par := runBoth(t, prog, db, 8)
	if seq.DB.Dump() != par.DB.Dump() {
		t.Fatalf("monotonic aggregate disagrees:\nseq: %s\npar: %s", seq.DB.Dump(), par.DB.Dump())
	}
}

// TestParallelProvenanceFallsBack: provenance needs a global insertion order,
// so Workers is ignored — and Explain still works.
func TestParallelProvenanceFallsBack(t *testing.T) {
	db := randomEdgeDB(9, 12, 25)
	res, err := Run(tcProgram, db, Options{Workers: 8, Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output("tc")
	if len(out) == 0 {
		t.Fatal("no tc facts")
	}
	if _, err := res.Explain("tc", out[0], 10); err != nil {
		t.Fatalf("Explain under Workers>1: %v", err)
	}
}

func TestParallelIncremental(t *testing.T) {
	shrinkShards(t)
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	mk := func(workers int) *Database {
		inc, err := NewIncremental(prog, randomEdgeDB(31, 25, 50), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := inc.Add("edge", value.IntV(int64(i)), value.IntV(int64((i*7)%25))); err != nil {
				t.Fatal(err)
			}
			if _, err := inc.Propagate(); err != nil {
				t.Fatal(err)
			}
		}
		return inc.DB()
	}
	if seq, par := mk(1), mk(8); seq.Dump() != par.Dump() {
		t.Fatal("incremental propagation disagrees between worker counts")
	}
}
