package vadalog

import "testing"

// FuzzParse exercises the Vadalog parser for panics and round-trip
// stability: any program that parses must reparse from its own printed form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`p(X) :- q(X).`,
		`controls(X,Y) :- controls(X,Z), owns(Z,Y,W), V = msum(W,<Z>), V > 0.5.`,
		`p(X, #f(X)) :- q(X), not r(X, _), X > 3, Y = concat(X, "s").`,
		`@input("a","csv","x.csv"). @output("p").`,
		`p("unterminated`,
		`p(1.5e3) :- q(0.5).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := prog.String()
		if _, err := Parse(printed); err != nil {
			t.Fatalf("printed form does not reparse: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
	})
}
