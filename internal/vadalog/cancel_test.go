package vadalog

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/value"
)

// countdownCtx is a context that reports cancellation after a fixed number
// of Err polls. The engine only consults Err at its cooperative boundaries
// (strata, rounds, rule evaluations, shard claims), so a countdown pins the
// interruption to an exact boundary — cancellation tests become fully
// deterministic instead of racing a timer against the fixpoint.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(polls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(polls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// deepChainDB builds a long ownership chain whose transitive closure needs
// one fixpoint round per link — plenty of round boundaries to cancel at.
func deepChainDB(links int) *Database {
	db := NewDatabase()
	for i := 0; i < links; i++ {
		db.MustAddFact("edge", value.IntV(int64(i)), value.IntV(int64(i+1)))
	}
	return db
}

// checkPartialResult asserts the internal consistency of an interrupted
// run's partial result: the statistics must agree with the database the
// engine hands back, and the duration must be populated (the pre-fix engine
// only set it on success).
func checkPartialResult(t *testing.T, res *Result, inputFacts int) {
	t.Helper()
	if res == nil {
		t.Fatal("interrupted run returned a nil result")
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("partial Duration = %v, want > 0", res.Stats.Duration)
	}
	if res.Stats.FactsDerived < 0 || res.Stats.Rounds < 0 {
		t.Errorf("negative partial stats: %+v", res.Stats)
	}
	if got := res.DB.TotalFacts() - inputFacts; got != res.Stats.FactsDerived {
		t.Errorf("FactsDerived = %d but the database grew by %d facts", res.Stats.FactsDerived, got)
	}
}

// TestCancelBeforeRun: an already-canceled context stops the run at the
// first boundary with the typed error and an empty partial result.
func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		db := deepChainDB(50)
		input := db.TotalFacts()
		res, err := RunCtx(ctx, tcProgram, db, Options{Workers: workers})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		checkPartialResult(t, res, input)
		if res.Stats.FactsDerived != 0 {
			t.Errorf("workers=%d: pre-canceled run derived %d facts", workers, res.Stats.FactsDerived)
		}
	}
}

// TestCancelMidFixpoint cancels at an exact cooperative boundary in the
// middle of a deep recursive fixpoint, under both the sequential and the
// sharded engine, and checks the typed error, the partial statistics, and
// that the worker pool leaves no goroutines behind.
func TestCancelMidFixpoint(t *testing.T) {
	shrinkShards(t)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			checkLeak := testutil.CheckGoroutineLeak(t)
			db := deepChainDB(200)
			input := db.TotalFacts()
			// Enough polls to get well into the fixpoint, few enough to stop
			// long before its ~200 rounds complete.
			ctx := newCountdownCtx(50)
			res, err := RunCtx(ctx, tcProgram, db, Options{Workers: workers})
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			checkPartialResult(t, res, input)
			if res.Stats.FactsDerived == 0 {
				t.Error("cancellation at poll 50 should land mid-run, after some derivation")
			}
			// The full closure of a 200-link chain has 200*201/2 pairs; a
			// mid-run cancel must not have finished it.
			if full := 200 * 201 / 2; res.Stats.FactsDerived >= full {
				t.Errorf("derived %d facts, full closure is %d — cancellation came too late", res.Stats.FactsDerived, full)
			}
			checkLeak()
		})
	}
}

// TestCancelShardBoundary cancels while a wide single evaluation is fanned
// out across shards: the countdown is sized to expire during the shard
// claims of the first big rule evaluation, exercising the runShards poll.
func TestCancelShardBoundary(t *testing.T) {
	shrinkShards(t)
	prog := MustParse(`pair(X,Y) :- item(X), item(Y).`)
	db := NewDatabase()
	for i := 0; i < 2000; i++ {
		db.MustAddFact("item", value.IntV(int64(i)))
	}
	input := db.TotalFacts()
	checkLeak := testutil.CheckGoroutineLeak(t)
	// Polls: stratum + round-0 eval checks pass, then the shard claims of
	// the 16-shard fan-out run the counter below zero mid-evaluation.
	ctx := newCountdownCtx(10)
	res, err := RunCtx(ctx, prog, db, Options{Workers: 8})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	checkPartialResult(t, res, input)
	checkLeak()
}

// TestTimeoutTyped: Options.Timeout interrupts a fixpoint that would run for
// a very long time, with ErrTimeout and consistent partial stats, for both
// engines.
func TestTimeoutTyped(t *testing.T) {
	prog := MustParse(`
		nat(Y) :- nat(X), Y = X + 1, Y < 100000000.
	`)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			checkLeak := testutil.CheckGoroutineLeak(t)
			db := NewDatabase()
			db.MustAddFact("nat", value.IntV(0))
			start := time.Now()
			res, err := Run(prog, db, Options{Workers: workers, Timeout: 50 * time.Millisecond})
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("err = %v, want ErrTimeout", err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Errorf("timeout of 50ms took %v to take effect", elapsed)
			}
			checkPartialResult(t, res, 1)
			if res.Stats.FactsDerived == 0 || res.Stats.Rounds == 0 {
				t.Errorf("timed-out run has empty stats: %+v", res.Stats)
			}
			checkLeak()
		})
	}
}

// TestCallerDeadlineMapsToTimeout: a deadline already on the caller's
// context — without Options.Timeout — surfaces as ErrTimeout too.
func TestCallerDeadlineMapsToTimeout(t *testing.T) {
	prog := MustParse(`
		nat(Y) :- nat(X), Y = X + 1, Y < 100000000.
	`)
	db := NewDatabase()
	db.MustAddFact("nat", value.IntV(0))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := RunCtx(ctx, prog, db, Options{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestCancelDeterministicStats: the same countdown cancellation point yields
// byte-for-byte identical partial statistics across repetitions and across
// worker counts — interruption is at a deterministic boundary, not a race.
func TestCancelDeterministicStats(t *testing.T) {
	shrinkShards(t)
	run := func(workers int) RunStats {
		db := deepChainDB(150)
		res, err := RunCtx(newCountdownCtx(40), tcProgram, db, Options{Workers: workers})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		res.Stats.Duration = 0 // wall time is the one nondeterministic field
		return res.Stats
	}
	base1, base8 := run(1), run(8)
	for i := 0; i < 3; i++ {
		if got := run(1); got != base1 {
			t.Fatalf("workers=1 stats vary across repetitions: %+v vs %+v", got, base1)
		}
		if got := run(8); got != base8 {
			t.Fatalf("workers=8 stats vary across repetitions: %+v vs %+v", got, base8)
		}
	}
}

// TestIncrementalPropagateCancel: PropagateCtx honors cancellation with the
// typed error, and the handle keeps working for a later propagation.
func TestIncrementalPropagateCancel(t *testing.T) {
	inc, err := NewIncremental(tcProgram, deepChainDB(50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	saturated := inc.DB().TotalFacts()
	if err := inc.Add("edge", value.IntV(50), value.IntV(51)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inc.PropagateCtx(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The canceled propagation left the baseline untouched; a clean one
	// completes the delta.
	n, err := inc.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || inc.DB().TotalFacts() <= saturated {
		t.Fatalf("re-propagation derived %d facts over %d", n, saturated)
	}
}

// TestIncrementalTimeout: Options.Timeout applies per propagation.
func TestIncrementalTimeout(t *testing.T) {
	prog := MustParse(`
		nat(Y) :- nat(X), Y = X + 1, Y < 100000000.
	`)
	db := NewDatabase()
	db.MustAddFact("nat", value.IntV(0))
	_, err := NewIncremental(prog, db, Options{Timeout: 50 * time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("initial incremental run: err = %v, want ErrTimeout", err)
	}
}

// TestStatsOnError: non-cancellation errors (the MaxFacts valve) also come
// back with a populated partial result — Duration included, which the
// previous engine only set on success.
func TestStatsOnError(t *testing.T) {
	prog := MustParse(`
		nat(Y) :- nat(X), Y = X + 1.
	`)
	db := NewDatabase()
	db.MustAddFact("nat", value.IntV(0))
	res, err := Run(prog, db, Options{MaxFacts: 100})
	if err == nil {
		t.Fatal("unbounded derivation must hit the fact limit")
	}
	if errors.Is(err, ErrCanceled) || errors.Is(err, ErrTimeout) {
		t.Fatalf("MaxFacts error got mistyped as interruption: %v", err)
	}
	if res == nil {
		t.Fatal("error return lost the partial result")
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("Duration = %v on the error path, want > 0", res.Stats.Duration)
	}
	if res.Stats.FactsDerived == 0 {
		t.Errorf("FactsDerived = 0 on a run that exceeded a limit of 100")
	}
}
