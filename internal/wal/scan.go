package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// segScan is the outcome of validating one segment file.
type segScan struct {
	path     string
	name     string
	gen      uint64
	firstSeq uint64
	size     int64 // file size on disk
	validLen int64 // bytes up to and including the last valid record
	records  []Record
	// torn is true when the segment ends in bytes that do not form a valid
	// record — expected in the highest segment after a crash mid-append.
	torn bool
	// headless is true when the file is too short to hold a header at all
	// (a crash during segment creation); such a file carries no records.
	headless bool
	// err is a typed header failure (bad magic/version/checksum) — never
	// set for a merely torn tail.
	err error
}

// scanSegment reads and validates one segment file. Records reference
// freshly allocated payload slices (the file is read once into memory;
// batches are small relative to the graph they mutate).
//
// gen/firstSeq come from the file NAME, so a headless or header-damaged
// segment still sorts into its true chain position; a readable header that
// disagrees with the name is corruption.
func scanSegment(path string) segScan {
	s := segScan{path: path, name: filepath.Base(path)}
	s.gen, s.firstSeq, _ = parseSegName(s.name)
	data, err := os.ReadFile(path)
	if err != nil {
		s.err = fmt.Errorf("wal: reading %s: %w", path, err)
		return s
	}
	s.size = int64(len(data))
	if len(data) < headerLen {
		s.headless = true
		return s
	}
	gen, firstSeq, err := decodeHeader(data)
	if err != nil {
		s.err = fmt.Errorf("%w (%s)", err, s.name)
		return s
	}
	if gen != s.gen || firstSeq != s.firstSeq {
		s.err = fmt.Errorf("%w: segment %s header says gen %d seq %d", ErrCorrupt, s.name, gen, firstSeq)
		return s
	}
	off := int64(headerLen)
	next := firstSeq
	for off < s.size {
		seq, payload, span, ok := decodeRecord(data[off:])
		if !ok || seq != next {
			s.torn = true
			break
		}
		s.records = append(s.records, Record{Seq: seq, Payload: payload})
		off += int64(span)
		next++
	}
	s.validLen = off // on a torn tail: bytes before the first invalid record
	return s
}

// listSegments returns the directory's segment scans sorted by (generation,
// firstSeq) — the replay order.
func listSegments(dir string) ([]segScan, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []segScan
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, _, ok := parseSegName(e.Name()); !ok {
			continue
		}
		segs = append(segs, scanSegment(filepath.Join(dir, e.Name())))
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].gen != segs[j].gen {
			return segs[i].gen < segs[j].gen
		}
		if segs[i].firstSeq != segs[j].firstSeq {
			return segs[i].firstSeq < segs[j].firstSeq
		}
		return segs[i].name < segs[j].name
	})
	return segs, nil
}

// Recovery is what Open found on disk: the checkpoint (nil when none), the
// acknowledged post-checkpoint records in sequence order, and what cleanup
// the scan performed.
type Recovery struct {
	Checkpoint *Checkpoint
	Records    []Record
	// TornBytes counts bytes truncated from the highest segment's torn
	// tail; TornSegment names the file (empty when the log was clean).
	TornBytes   int64
	TornSegment string
	// StaleSegments counts pre-checkpoint segments removed by the scan —
	// leftovers of a truncation the process died inside.
	StaleSegments int
}

// validateChain enforces the cross-segment invariants over the replayable
// segments (stale generations already filtered): strictly increasing
// generations/firstSeqs and gap-free global sequence numbering. A torn or
// headless segment is only tolerable in the last position — anywhere else a
// sealed segment is damaged and the log refuses with a typed error.
func validateChain(segs []segScan, cp *Checkpoint) error {
	// Without a checkpoint the chain is anchored at seq 1 — a missing first
	// segment is lost acknowledged data, not a fresh log.
	expect := uint64(1)
	if cp != nil {
		expect = cp.Seq + 1
	}
	for i, s := range segs {
		last := i == len(segs)-1
		if s.err != nil {
			if last {
				continue // dropped as a torn creation by Open
			}
			return s.err
		}
		if s.headless {
			if last {
				continue
			}
			return fmt.Errorf("%w: sealed segment %s has no header", ErrCorrupt, s.name)
		}
		if s.torn && !last {
			return fmt.Errorf("%w: sealed segment %s holds an invalid record", ErrCorrupt, s.name)
		}
		if s.firstSeq != expect {
			return fmt.Errorf("%w: segment %s starts at seq %d, want %d (missing acknowledged batches)",
				ErrCorrupt, s.name, s.firstSeq, expect)
		}
		expect = s.firstSeq + uint64(len(s.records))
	}
	return nil
}

// Inspect reports the state of a WAL directory without mutating it — the
// read-only view behind kgwal. Unlike Open it keeps going past damage,
// collecting a corruption report instead of failing on the first finding.
func Inspect(dir string) (*Info, error) {
	cp, err := readCheckpoint(dir)
	info := &Info{Dir: dir, Checkpoint: cp}
	if err != nil {
		info.Problems = append(info.Problems, err.Error())
		cp = nil
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	minGen := uint64(0)
	if cp != nil {
		minGen = cp.Generation
	}
	for i, s := range segs {
		si := SegmentInfo{
			File:       s.name,
			Generation: s.gen,
			FirstSeq:   s.firstSeq,
			Bytes:      s.size,
			Records:    len(s.records),
			Torn:       s.torn,
			Headless:   s.headless,
			Stale:      s.gen < minGen,
		}
		if s.err != nil {
			si.Error = s.err.Error()
		}
		if n := len(s.records); n > 0 {
			si.LastSeq = s.records[n-1].Seq
		}
		info.Segments = append(info.Segments, si)
		if si.Stale {
			continue
		}
		last := i == len(segs)-1
		switch {
		case s.err != nil:
			info.Problems = append(info.Problems, s.err.Error())
		case s.headless && !last:
			info.Problems = append(info.Problems, fmt.Sprintf("sealed segment %s has no header", s.name))
		case s.torn && !last:
			info.Problems = append(info.Problems, fmt.Sprintf("sealed segment %s holds an invalid record", s.name))
		case s.torn:
			info.TornBytes = s.size - s.validLen
		}
		for _, r := range s.records {
			if cp != nil && r.Seq <= cp.Seq {
				continue
			}
			if info.Records == 0 {
				info.FirstSeq = r.Seq
			} else if r.Seq != info.LastSeq+1 {
				info.Problems = append(info.Problems,
					fmt.Sprintf("sequence gap: %d follows %d", r.Seq, info.LastSeq))
			}
			info.LastSeq = r.Seq
			info.Records++
		}
	}
	return info, nil
}

// Info is Inspect's report.
type Info struct {
	Dir        string        `json:"dir"`
	Checkpoint *Checkpoint   `json:"checkpoint,omitempty"`
	Segments   []SegmentInfo `json:"segments"`
	// Records counts replayable (post-checkpoint) records; FirstSeq/LastSeq
	// bound them (0 when none).
	Records  int    `json:"records"`
	FirstSeq uint64 `json:"firstSeq,omitempty"`
	LastSeq  uint64 `json:"lastSeq,omitempty"`
	// TornBytes counts unacknowledged tail bytes the next Open will cut.
	TornBytes int64 `json:"tornBytes,omitempty"`
	// Problems lists corruption findings: sealed-segment damage, sequence
	// gaps, a malformed checkpoint. Empty for a healthy log.
	Problems []string `json:"problems,omitempty"`
}

// SegmentInfo describes one segment file in an Info report.
type SegmentInfo struct {
	File       string `json:"file"`
	Generation uint64 `json:"generation"`
	FirstSeq   uint64 `json:"firstSeq"`
	LastSeq    uint64 `json:"lastSeq,omitempty"`
	Records    int    `json:"records"`
	Bytes      int64  `json:"bytes"`
	Torn       bool   `json:"torn,omitempty"`
	Headless   bool   `json:"headless,omitempty"`
	Stale      bool   `json:"stale,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Replay computes what a recovery would replay — checkpoint, filtered
// records in sequence order, torn-tail accounting — without mutating the
// directory. Open performs the same collection plus the repairs (tail
// truncation, stale-segment deletion) and leaves the log open for appends;
// Replay is the read-only view behind kgwal -dump.
func Replay(dir string) (*Recovery, error) {
	cp, err := readCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	live, stale, err := replayable(segs, cp, false)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{Checkpoint: cp, StaleSegments: stale}
	for i := range live {
		s := &live[i]
		if s.err != nil || s.headless {
			rec.TornSegment = s.name
			rec.TornBytes += s.size
			continue
		}
		for _, r := range s.records {
			if cp != nil && r.Seq <= cp.Seq {
				continue
			}
			rec.Records = append(rec.Records, r)
		}
		if s.torn {
			rec.TornSegment = s.name
			rec.TornBytes += s.size - s.validLen
		}
	}
	return rec, nil
}

// replayable filters scans down to the segments Open replays and appends
// after: stale generations dropped (and deleted), the chain validated.
func replayable(segs []segScan, cp *Checkpoint, removeStale bool) ([]segScan, int, error) {
	minGen := uint64(0)
	if cp != nil {
		minGen = cp.Generation
	}
	live := segs[:0:0]
	stale := 0
	for _, s := range segs {
		// Pre-checkpoint segments are irrelevant however damaged they are —
		// the checkpoint base already contains everything they held.
		if s.gen < minGen {
			stale++
			if removeStale {
				if err := os.Remove(s.path); err != nil && !errors.Is(err, os.ErrNotExist) {
					return nil, 0, fmt.Errorf("wal: removing stale segment %s: %w", s.name, err)
				}
			}
			continue
		}
		live = append(live, s)
	}
	if err := validateChain(live, cp); err != nil {
		return nil, 0, err
	}
	return live, stale, nil
}
