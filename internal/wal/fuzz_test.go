package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayWAL drives arbitrary bytes through segment recovery. The
// invariant is the recovery contract: any on-disk state either replays into
// a gap-free record sequence or is rejected with one of the typed errors —
// never a panic. And recovery is idempotent: opening the repaired directory
// a second time replays exactly the same records with nothing left to cut.
func FuzzReplayWAL(f *testing.F) {
	// Seed corpus: a valid multi-record segment plus mutants at the
	// interesting boundaries.
	seedDir := f.TempDir()
	if l, _, err := Open(seedDir, Options{}); err == nil {
		for i := 0; i < 4; i++ {
			l.Append([]byte(`[{"op":"remove_edge","edge":7}]`)) //nolint:errcheck
		}
		l.Close() //nolint:errcheck
		if valid, err := os.ReadFile(filepath.Join(seedDir, segName(1, 1))); err == nil {
			f.Add(valid)
			f.Add(valid[:len(valid)-5]) // torn tail
			f.Add(valid[:headerLen])    // header only
			flipped := append([]byte(nil), valid...)
			flipped[headerLen+9] ^= 0xFF
			f.Add(flipped)
			badmagic := append([]byte(nil), valid...)
			copy(badmagic, "NOTALOG!")
			f.Add(badmagic)
		}
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1, 1)), data, 0o644); err != nil {
			t.Skip()
		}
		// Inspect must survive anything, read-only.
		if _, err := Inspect(dir); err != nil {
			t.Fatalf("Inspect errored on scannable dir: %v", err)
		}
		l, rec, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) &&
				!errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open returned an untyped error: %v", err)
			}
			return
		}
		seq := uint64(0)
		for _, r := range rec.Records {
			if seq != 0 && r.Seq != seq+1 {
				t.Fatalf("recovered sequence gap: %d after %d", r.Seq, seq)
			}
			seq = r.Seq
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Second recovery: same records, no torn bytes (repair already done).
		l2, rec2, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			t.Fatalf("reopening repaired log: %v", err)
		}
		defer l2.Close()
		if rec2.TornBytes != 0 {
			t.Fatalf("second recovery still cut %d bytes", rec2.TornBytes)
		}
		if len(rec2.Records) != len(rec.Records) {
			t.Fatalf("recovery not idempotent: %d then %d records", len(rec.Records), len(rec2.Records))
		}
		for i := range rec.Records {
			if rec.Records[i].Seq != rec2.Records[i].Seq ||
				!bytes.Equal(rec.Records[i].Payload, rec2.Records[i].Payload) {
				t.Fatalf("recovery not idempotent at record %d", i)
			}
		}
	})
}
