package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/testutil"
)

func payloadN(i int) []byte {
	return []byte(fmt.Sprintf(`[{"op":"add_node","name":"n%d"}]`, i))
}

// mustOpen opens a log, failing the test on error.
func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

// appendN appends n payloads and returns their assigned sequence numbers.
func appendN(t *testing.T, l *Log, n int, from int) []uint64 {
	t.Helper()
	var seqs []uint64
	for i := 0; i < n; i++ {
		seq, err := l.Append(payloadN(from + i))
		if err != nil {
			t.Fatalf("Append #%d: %v", from+i, err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{})
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	seqs := appendN(t, l, 10, 0)
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if !bytes.Equal(r.Payload, payloadN(i)) {
			t.Fatalf("record %d payload = %s, want %s", i, r.Payload, payloadN(i))
		}
	}
	if got := l2.NextSeq(); got != 11 {
		t.Fatalf("NextSeq after recovery = %d, want 11", got)
	}
	// Appending after recovery continues the numbering.
	if seq, err := l2.Append(payloadN(10)); err != nil || seq != 11 {
		t.Fatalf("post-recovery Append = (%d, %v), want (11, nil)", seq, err)
	}
}

func TestRotationAndReplayAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 50, 0)
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if len(rec.Records) != 50 {
		t.Fatalf("recovered %d records across segments, want 50", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloadN(i)) {
			t.Fatalf("record %d mismatch: seq=%d payload=%s", i, r.Seq, r.Payload)
		}
	}
}

// tailSegment returns the path of the highest (generation, firstSeq) segment.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1].path
}

func TestTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name string
		keep int // records surviving the tear
		tear func(t *testing.T, path string)
	}{
		{"partial record", 4, func(t *testing.T, path string) {
			// Cut the last record in half — a crash mid-write(2).
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-9); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage tail", 5, func(t *testing.T, path string) {
			// A record header full of garbage after the valid prefix.
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write(bytes.Repeat([]byte{0xFF}, 24)); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped crc", 4, func(t *testing.T, path string) {
			// Flip one payload byte of the LAST record: its CRC no longer
			// holds, so the valid prefix ends before it.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, dir, Options{})
			appendN(t, l, 5, 0)
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			tc.tear(t, tailSegment(t, dir))

			l2, rec := mustOpen(t, dir, Options{})
			if len(rec.Records) != tc.keep {
				t.Fatalf("recovered %d records, want %d (the intact prefix)", len(rec.Records), tc.keep)
			}
			if rec.TornBytes <= 0 || rec.TornSegment == "" {
				t.Fatalf("torn tail not reported: %+v", rec)
			}
			// The log must append cleanly after the repair and replay in full.
			wantSeq := uint64(tc.keep + 1)
			if seq, err := l2.Append(payloadN(99)); err != nil || seq != wantSeq {
				t.Fatalf("Append after repair = (%d, %v), want (%d, nil)", seq, err, wantSeq)
			}
			if err := l2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l3, rec3 := mustOpen(t, dir, Options{})
			defer l3.Close()
			if len(rec3.Records) != tc.keep+1 || rec3.TornBytes != 0 {
				t.Fatalf("post-repair replay: %d records, torn=%d", len(rec3.Records), rec3.TornBytes)
			}
		})
	}
}

func TestHeadlessTailSegmentDropped(t *testing.T) {
	// A crash during segment creation leaves a file too short for a header.
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 3, 0)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	stub := filepath.Join(dir, segName(1, 4))
	if err := os.WriteFile(stub, []byte("KGW"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec.Records))
	}
	if _, err := os.Stat(stub); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("headless segment not removed (err=%v)", err)
	}
}

func TestCorruptionMatrix(t *testing.T) {
	// Damage to SEALED state must refuse with a typed error, never repair
	// silently and never panic.
	setup := func(t *testing.T) string {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
		appendN(t, l, 50, 0) // several segments
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		segs, err := listSegments(dir)
		if err != nil || len(segs) < 3 {
			t.Fatalf("want >=3 segments, got %d (err=%v)", len(segs), err)
		}
		return dir
	}
	firstSeg := func(t *testing.T, dir string) string {
		segs, _ := listSegments(dir)
		return segs[0].path
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		want    error
	}{
		{"bad magic", func(t *testing.T, dir string) {
			path := firstSeg(t, dir)
			data, _ := os.ReadFile(path)
			copy(data, "NOTALOG!")
			os.WriteFile(path, data, 0o644)
		}, ErrBadMagic},
		{"bad version", func(t *testing.T, dir string) {
			path := firstSeg(t, dir)
			data, _ := os.ReadFile(path)
			binary.LittleEndian.PutUint32(data[8:], 99)
			binary.LittleEndian.PutUint32(data[32:], crc32.Checksum(data[:32], crcTable))
			os.WriteFile(path, data, 0o644)
		}, ErrBadVersion},
		{"header checksum", func(t *testing.T, dir string) {
			path := firstSeg(t, dir)
			data, _ := os.ReadFile(path)
			data[20] ^= 0xFF
			os.WriteFile(path, data, 0o644)
		}, ErrCorrupt},
		{"sealed segment record flipped", func(t *testing.T, dir string) {
			path := firstSeg(t, dir)
			data, _ := os.ReadFile(path)
			data[len(data)-1] ^= 0x01 // last record of a SEALED segment
			os.WriteFile(path, data, 0o644)
		}, ErrCorrupt},
		{"sequence gap", func(t *testing.T, dir string) {
			os.Remove(firstSeg(t, dir)) // drop acknowledged batches
		}, ErrCorrupt},
		{"malformed checkpoint", func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, checkpointName), []byte("{nope"), 0o644)
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := setup(t)
			tc.corrupt(t, dir)
			_, _, err := Open(dir, Options{})
			if !errors.Is(err, tc.want) {
				t.Fatalf("Open = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 30, 0)
	cp, err := l.Checkpoint("/snapshots/gen31.snap")
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if cp.Generation != 2 || cp.Seq != 30 || cp.Base != "/snapshots/gen31.snap" {
		t.Fatalf("checkpoint = %+v", cp)
	}
	if g := l.Generation(); g != 2 {
		t.Fatalf("generation after checkpoint = %d, want 2", g)
	}
	// Old-generation segments are gone; one fresh gen-2 segment remains.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.gen < 2 {
			t.Fatalf("stale segment survived truncation: %s", s.name)
		}
	}
	// Post-checkpoint appends replay alone.
	appendN(t, l, 5, 30)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 30 || rec.Checkpoint.Base != "/snapshots/gen31.snap" {
		t.Fatalf("recovered checkpoint = %+v", rec.Checkpoint)
	}
	if len(rec.Records) != 5 || rec.Records[0].Seq != 31 {
		t.Fatalf("recovered %d records starting at %d, want 5 from 31",
			len(rec.Records), rec.Records[0].Seq)
	}
}

func TestCheckpointCrashLeavesStaleSegments(t *testing.T) {
	// Simulate dying between the CHECKPOINT publish and the stale-segment
	// deletion: write a checkpoint file by hand over a multi-segment log.
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 30, 0)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	before, _ := listSegments(dir)
	if err := writeCheckpoint(dir, Checkpoint{Generation: 2, Seq: 30, Base: "x"}); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rec.StaleSegments != len(before) {
		t.Fatalf("removed %d stale segments, want %d", rec.StaleSegments, len(before))
	}
	if len(rec.Records) != 0 {
		t.Fatalf("replayed %d pre-checkpoint records, want 0", len(rec.Records))
	}
	if g := l2.Generation(); g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}
	if seq, err := l2.Append(payloadN(0)); err != nil || seq != 31 {
		t.Fatalf("Append = (%d, %v), want (31, nil)", seq, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l, _ := mustOpen(t, t.TempDir(), Options{Sync: SyncAlways})
		defer l.Close()
		appendN(t, l, 3, 0)
		st := l.Stats()
		if st.UnsyncedBatches != 0 || st.Syncs < 3 {
			t.Fatalf("SyncAlways left unsynced state: %+v", st)
		}
		if st.LastSyncUnixNano == 0 {
			t.Fatalf("last-sync time not recorded: %+v", st)
		}
	})
	t.Run("interval", func(t *testing.T) {
		leak := testutil.CheckGoroutineLeak(t)
		defer leak()
		l, _ := mustOpen(t, t.TempDir(), Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
		appendN(t, l, 3, 0)
		deadline := time.Now().Add(2 * time.Second)
		for {
			if st := l.Stats(); st.UnsyncedBatches == 0 && st.Syncs > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("background syncer never caught up: %+v", l.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
	t.Run("off", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{Sync: SyncOff})
		appendN(t, l, 3, 0)
		if st := l.Stats(); st.UnsyncedBatches != 3 {
			t.Fatalf("SyncOff stats: %+v", st)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// A clean close still leaves a replayable log (write(2) happened).
		l2, rec := mustOpen(t, dir, Options{})
		defer l2.Close()
		if len(rec.Records) != 3 {
			t.Fatalf("recovered %d records, want 3", len(rec.Records))
		}
	})
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		pol  SyncPolicy
		dur  time.Duration
		fail bool
	}{
		{"always", SyncAlways, 0, false},
		{"off", SyncOff, 0, false},
		{"interval", SyncInterval, 0, false},
		{"interval:50ms", SyncInterval, 50 * time.Millisecond, false},
		{"interval:0s", 0, 0, true},
		{"interval:wat", 0, 0, true},
		{"sometimes", 0, 0, true},
	}
	for _, tc := range cases {
		pol, dur, err := ParseSyncPolicy(tc.in)
		if tc.fail {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q) succeeded, want error", tc.in)
			}
			continue
		}
		if err != nil || pol != tc.pol || dur != tc.dur {
			t.Errorf("ParseSyncPolicy(%q) = (%v, %v, %v), want (%v, %v, nil)",
				tc.in, pol, dur, err, tc.pol, tc.dur)
		}
	}
}

func TestFaultAppend(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 2, 0)
	if err := fault.Arm("wal/append", fault.Plan{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(payloadN(2)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Append under fault = %v, want injected", err)
	}
	fault.Reset()
	// The failed batch is not in the log; numbering continues unbroken.
	if seq, err := l.Append(payloadN(2)); err != nil || seq != 3 {
		t.Fatalf("Append after fault = (%d, %v), want (3, nil)", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec.Records))
	}
}

func TestFaultFsyncUnwindsRecord(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	appendN(t, l, 2, 0)
	sizeBefore := l.Stats().Bytes
	if err := fault.Arm("wal/fsync", fault.Plan{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(payloadN(2)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Append under fsync fault = %v, want injected", err)
	}
	fault.Reset()
	if got := l.Stats().Bytes; got != sizeBefore {
		t.Fatalf("failed append left %d bytes, want %d — record not unwound", got, sizeBefore)
	}
	// rejected and logged are mutually exclusive: replay sees 2 records.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	if seq, err := l2.Append(payloadN(9)); err != nil || seq != 3 {
		t.Fatalf("Append after recovery = (%d, %v), want (3, nil)", seq, err)
	}
}

func TestFaultRotateDuringCheckpoint(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 5, 0)
	if err := fault.Arm("wal/rotate", fault.Plan{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Checkpoint("base"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Checkpoint under rotate fault = %v, want injected", err)
	}
	fault.Reset()
	// The checkpoint landed; the forced rotation happens on the next append,
	// which must go to a generation-2 segment.
	if seq, err := l.Append(payloadN(5)); err != nil || seq != 6 {
		t.Fatalf("Append after failed rotation = (%d, %v), want (6, nil)", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rec.Checkpoint == nil || rec.Checkpoint.Generation != 2 {
		t.Fatalf("checkpoint = %+v, want generation 2", rec.Checkpoint)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != 6 {
		t.Fatalf("recovered %+v, want just seq 6", rec.Records)
	}
}

func TestFaultReplay(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm("wal/replay", fault.Plan{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(t.TempDir(), Options{}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Open under replay fault = %v, want injected", err)
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 20, 0)
	if _, err := l.Checkpoint("base.snap"); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 7, 20)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(info.Problems) != 0 {
		t.Fatalf("healthy log reported problems: %v", info.Problems)
	}
	if info.Records != 7 || info.FirstSeq != 21 || info.LastSeq != 27 {
		t.Fatalf("inspect = %d records [%d,%d], want 7 [21,27]", info.Records, info.FirstSeq, info.LastSeq)
	}
	if info.Checkpoint == nil || info.Checkpoint.Base != "base.snap" {
		t.Fatalf("inspect checkpoint = %+v", info.Checkpoint)
	}

	// Inspect is read-only: a torn tail is reported but not repaired.
	tail := tailSegment(t, dir)
	fi, _ := os.Stat(tail)
	os.Truncate(tail, fi.Size()-3) //nolint:errcheck
	info, err = Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect torn: %v", err)
	}
	if info.TornBytes == 0 || info.Records != 6 {
		t.Fatalf("torn inspect = %+v", info)
	}
	if fi2, _ := os.Stat(tail); fi2.Size() != fi.Size()-3 {
		t.Fatalf("Inspect mutated the log")
	}

	// Sealed-segment damage shows up in Problems.
	segs, _ := listSegments(dir)
	data, _ := os.ReadFile(segs[0].path)
	copy(data, "NOTALOG!")
	os.WriteFile(segs[0].path, data, 0o644) //nolint:errcheck
	info, err = Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect corrupt: %v", err)
	}
	if len(info.Problems) == 0 {
		t.Fatalf("corrupt log reported no problems")
	}
}

func TestReplayIsReadOnly(t *testing.T) {
	// Replay must report exactly what Open would recover, without the repair.
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 5, 0)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tail := tailSegment(t, dir)
	fi, _ := os.Stat(tail)
	if err := os.Truncate(tail, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rec, err := Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(rec.Records) != 4 || rec.TornBytes == 0 {
		t.Fatalf("Replay = %d records, torn=%d; want 4 records, torn>0", len(rec.Records), rec.TornBytes)
	}
	if fi2, _ := os.Stat(tail); fi2.Size() != fi.Size()-3 {
		t.Fatalf("Replay mutated the log")
	}
	l2, rec2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != len(rec.Records) {
		t.Fatalf("Replay (%d) and Open (%d) disagree", len(rec.Records), len(rec2.Records))
	}
	for i := range rec.Records {
		if rec.Records[i].Seq != rec2.Records[i].Seq ||
			!bytes.Equal(rec.Records[i].Payload, rec2.Records[i].Payload) {
			t.Fatalf("Replay and Open diverge at record %d", i)
		}
	}
}

func TestStatsShape(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{Sync: SyncOff, SegmentBytes: 256})
	defer l.Close()
	appendN(t, l, 30, 0)
	st := l.Stats()
	if st.Appended != 30 || st.NextSeq != 31 || st.Generation != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Segments < 2 || st.Bytes <= 0 {
		t.Fatalf("stats segments/bytes = %+v", st)
	}
	// Bytes must equal what is actually on disk.
	var disk int64
	segs, _ := listSegments(l.dir)
	for _, s := range segs {
		disk += s.size
	}
	if st.Bytes != disk {
		t.Fatalf("Stats.Bytes = %d, disk = %d", st.Bytes, disk)
	}
}

func TestClosedLogRefuses(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append(payloadN(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log = %v, want ErrClosed", err)
	}
	if _, err := l.Checkpoint("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint on closed log = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync on closed log = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSegNameRoundTrip(t *testing.T) {
	for _, tc := range []struct{ gen, seq uint64 }{{1, 1}, {2, 31}, {1 << 40, 1 << 50}} {
		name := segName(tc.gen, tc.seq)
		g, s, ok := parseSegName(name)
		if !ok || g != tc.gen || s != tc.seq {
			t.Fatalf("parseSegName(%s) = (%d, %d, %v)", name, g, s, ok)
		}
	}
	for _, bad := range []string{"wal-.seg", "wal-xx-yy.seg", "other.seg", "wal-0000000000000001-0000000000000001.tmp", "CHECKPOINT"} {
		if _, _, ok := parseSegName(bad); ok {
			t.Fatalf("parseSegName(%s) accepted", bad)
		}
	}
}
