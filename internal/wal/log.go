package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fault"
)

// Log is an open write-ahead log positioned for appending. Create one with
// Open; it is safe for concurrent use (one mutex — the serving layer already
// serializes writers, the lock exists for the background syncer).
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File // active segment
	size   int64    // active segment size (valid bytes)
	sealed int64    // total bytes across sealed segments
	segs   int      // segment count including the active one

	gen     uint64
	nextSeq uint64

	// needRotate forces the next Append to rotate first — set when a
	// checkpoint landed but its rotation failed, so no record may land in a
	// segment the checkpoint condemned.
	needRotate bool
	broken     bool // an append left the tail unrecoverable; log refuses writes
	closed     bool

	appended  int64
	syncs     int64
	unsyncedB int
	unsyncedN int64
	lastSync  time.Time
	lastDur   time.Duration
	syncErr   error

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open scans (and repairs) a WAL directory and returns the log positioned
// for appending plus everything recovery needs: the checkpoint and the
// acknowledged records after it, in sequence order. Torn tails in the
// highest segment are truncated away; stale pre-checkpoint segments are
// deleted; damage anywhere else returns a typed error and no Log.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	if err := fault.Hit(siteReplay); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	cp, err := readCheckpoint(dir)
	if err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	live, stale, err := replayable(segs, cp, true)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovery{Checkpoint: cp, StaleSegments: stale}
	l := &Log{dir: dir, opts: opts, gen: 1, nextSeq: 1}
	if cp != nil {
		l.gen = cp.Generation
		l.nextSeq = cp.Seq + 1
	}

	// Drop torn segment creations (no header) and headerless damage in last
	// position; collect records; truncate a torn tail in place.
	var tail *segScan
	for i := range live {
		s := &live[i]
		if s.err != nil || s.headless {
			// Only reachable in last position (validateChain). A file that
			// never got its header holds no acknowledged data: remove it.
			rec.TornSegment = s.name
			rec.TornBytes += s.size
			if err := os.Remove(s.path); err != nil {
				return nil, nil, fmt.Errorf("wal: removing torn segment %s: %w", s.name, err)
			}
			continue
		}
		for _, r := range s.records {
			if cp != nil && r.Seq <= cp.Seq {
				continue // pre-checkpoint record in a kept segment
			}
			rec.Records = append(rec.Records, r)
		}
		if s.torn {
			rec.TornSegment = s.name
			rec.TornBytes += s.size - s.validLen
			if err := os.Truncate(s.path, s.validLen); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", s.name, err)
			}
			s.size = s.validLen
		}
		if s.gen > l.gen {
			l.gen = s.gen
		}
		if last := s.firstSeq + uint64(len(s.records)); last > l.nextSeq {
			l.nextSeq = last
		}
		tail = s
	}

	// Position for appending: continue the intact highest segment, or start
	// a fresh one.
	if tail != nil {
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: opening %s for append: %w", tail.name, err)
		}
		l.f = f
		l.size = tail.size
		for i := range live {
			s := &live[i]
			if s.err == nil && !s.headless && s != tail {
				l.sealed += s.size
				l.segs++
			}
		}
		l.segs++
	} else {
		if err := l.newSegmentLocked(); err != nil {
			return nil, nil, err
		}
	}

	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, rec, nil
}

// newSegmentLocked creates and activates the segment (l.gen, l.nextSeq).
func (l *Log) newSegmentLocked() error {
	path := filepath.Join(l.dir, segName(l.gen, l.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	hdr := encodeHeader(l.gen, l.nextSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()       //nolint:errcheck // already failing
		os.Remove(path) //nolint:errcheck // best-effort
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()       //nolint:errcheck // already failing
			os.Remove(path) //nolint:errcheck // best-effort
			return fmt.Errorf("wal: syncing segment header: %w", err)
		}
	}
	syncDir(l.dir)
	l.f = f
	l.size = int64(len(hdr))
	l.segs++
	return nil
}

// rotateLocked seals the active segment and starts the next one. On failure
// the previous segment stays active (unless a new one was never opened, in
// which case needRotate stays set and Append keeps refusing).
func (l *Log) rotateLocked() error {
	if err := fault.Hit(siteRotate); err != nil {
		return err
	}
	old, oldSize := l.f, l.size
	if err := old.Sync(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	if err := l.newSegmentLocked(); err != nil {
		return err
	}
	old.Close() //nolint:errcheck // sealed and synced
	l.sealed += oldSize
	l.unsyncedB, l.unsyncedN = 0, 0 // sealed segment was fsynced above
	return nil
}

// Append logs one batch payload, assigns it the next sequence number, and —
// under SyncAlways — fsyncs before returning. An error means the batch is
// NOT in the log (a partially written record is truncated back off), so the
// caller can safely reject the batch: rejected and logged are mutually
// exclusive.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.broken {
		return 0, ErrClosed
	}
	if err := fault.Hit(siteAppend); err != nil {
		return 0, err
	}
	if l.needRotate {
		if err := l.rotateLocked(); err != nil {
			return 0, fmt.Errorf("wal: rotation pending after checkpoint: %w", err)
		}
		l.needRotate = false
	} else if l.size >= l.opts.SegmentBytes {
		// Best-effort size rotation: on failure keep appending to the
		// (merely oversized) active segment.
		l.rotateLocked() //nolint:errcheck // retried on the next append
	}
	buf := encodeRecord(l.nextSeq, payload)
	if err := l.writeRecordLocked(buf); err != nil {
		return 0, err
	}
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			// The record is written but not durable; cut it back off so a
			// rejected batch can never resurface during replay.
			l.unwindLocked(l.size - int64(len(buf)))
			return 0, err
		}
	} else {
		l.unsyncedB++
		l.unsyncedN += int64(len(buf))
	}
	seq := l.nextSeq
	l.nextSeq++
	l.appended++
	return seq, nil
}

// writeRecordLocked appends buf to the active segment, unwinding a partial
// write so the tail stays record-aligned.
func (l *Log) writeRecordLocked(buf []byte) error {
	n, err := l.f.Write(buf)
	if err != nil {
		if n > 0 {
			l.unwindLocked(l.size)
		}
		return fmt.Errorf("wal: appending record: %w", err)
	}
	l.size += int64(n)
	return nil
}

// unwindLocked truncates the active segment back to offset `to`. If even
// that fails the tail is in an unknown state and the log refuses further
// appends (recovery would still stop at the torn record — the broken flag
// only protects this process from appending after garbage).
func (l *Log) unwindLocked(to int64) {
	if err := l.f.Truncate(to); err != nil {
		l.broken = true
		return
	}
	if _, err := l.f.Seek(to, 0); err != nil {
		l.broken = true
		return
	}
	l.size = to
}

// Sync fsyncs the active segment. It is a no-op when nothing is unsynced.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.unsyncedB == 0 {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := fault.Hit(siteFsync); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs++
	l.lastSync = time.Now()
	l.lastDur = l.lastSync.Sub(start)
	l.unsyncedB, l.unsyncedN = 0, 0
	l.syncErr = nil
	return nil
}

// syncLoop is the SyncInterval background syncer. Failures are recorded
// (surfaced through Stats.SyncError) and retried on the next tick.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.unsyncedB > 0 {
				if err := l.syncLocked(); err != nil {
					l.syncErr = err
				}
			}
			l.mu.Unlock()
		}
	}
}

// Checkpoint marks every logged batch as folded into the durable base at
// basePath and truncates the log: generation++, atomic CHECKPOINT publish,
// rotation to a fresh segment of the new generation, deletion of the sealed
// older-generation segments. On error the log stays consistent — either the
// old checkpoint still rules (nothing changed), or the new one landed and
// the remaining steps are completed by the next Append/Open.
func (l *Log) Checkpoint(basePath string) (Checkpoint, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Checkpoint{}, ErrClosed
	}
	// The checkpoint claims every batch up to nextSeq-1 is in the base;
	// that includes unsynced ones, so make them durable first.
	if l.unsyncedB > 0 {
		if err := l.syncLocked(); err != nil {
			return Checkpoint{}, err
		}
	}
	cp := Checkpoint{Generation: l.gen + 1, Seq: l.nextSeq - 1, Base: basePath}
	if err := writeCheckpoint(l.dir, cp); err != nil {
		return Checkpoint{}, err
	}
	l.gen = cp.Generation
	if err := l.rotateLocked(); err != nil {
		// The checkpoint is durable but no new-generation segment exists
		// yet. Appending to the condemned segment would lose data (the next
		// Open deletes pre-checkpoint segments), so force rotation before
		// any further append.
		l.needRotate = true
		return cp, fmt.Errorf("wal: rotating after checkpoint: %w", err)
	}
	l.removeStaleLocked(cp.Generation)
	return cp, nil
}

// removeStaleLocked deletes sealed segments of generations before minGen,
// best-effort: survivors are removed by the next Open.
func (l *Log) removeStaleLocked(minGen uint64) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if gen, _, ok := parseSegName(e.Name()); ok && gen < minGen {
			os.Remove(filepath.Join(l.dir, e.Name())) //nolint:errcheck // next Open retries
		}
	}
	// Recount segments and sealed bytes from what survived.
	entries, err = os.ReadDir(l.dir)
	if err != nil {
		return
	}
	l.segs, l.sealed = 0, 0
	active := filepath.Base(l.f.Name())
	for _, e := range entries {
		if _, _, ok := parseSegName(e.Name()); !ok {
			continue
		}
		l.segs++
		if e.Name() == active {
			continue
		}
		if fi, err := e.Info(); err == nil {
			l.sealed += fi.Size()
		}
	}
}

// NextSeq returns the sequence number the next Append will assign.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Generation returns the current truncation generation.
func (l *Log) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Stats returns a point-in-time view of the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Generation:      l.gen,
		NextSeq:         l.nextSeq,
		Segments:        l.segs,
		Bytes:           l.sealed + l.size,
		Appended:        l.appended,
		Syncs:           l.syncs,
		UnsyncedBatches: l.unsyncedB,
		UnsyncedBytes:   l.unsyncedN,
	}
	if !l.lastSync.IsZero() {
		st.LastSyncUnixNano = l.lastSync.UnixNano()
		st.LastSyncNanos = int64(l.lastDur)
	}
	if l.syncErr != nil {
		st.SyncError = l.syncErr.Error()
	}
	return st
}

// Close stops the background syncer, makes the tail durable (best-effort
// final fsync unless the policy is off) and closes the active segment. The
// log accepts no appends afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	if l.stop != nil {
		close(l.stop)
	}
	l.mu.Unlock()
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	var err error
	if l.opts.Sync != SyncOff && l.unsyncedB > 0 {
		if serr := l.f.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("wal: final fsync: %w", serr)
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: closing segment: %w", cerr)
	}
	return err
}
