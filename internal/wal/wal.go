// Package wal is the durability layer of the live write path: a segmented,
// checksummed, append-only write-ahead log of mutation batches. The serving
// layer logs every /mutate batch here *before* acknowledging it, so any crash
// short of disk loss — a killed process, a panic, a power cut with the
// "always" fsync policy — loses nothing that a client was told succeeded.
// Recovery replays the log over the frozen base snapshot and reconstructs the
// overlay the process died with.
//
// # On-disk layout
//
// A WAL directory holds numbered segment files plus an optional CHECKPOINT
// file. Segment names encode their generation and the sequence number of
// their first record:
//
//	wal-<generation:016x>-<firstSeq:016x>.seg
//	CHECKPOINT
//
// Every segment starts with a 40-byte header (integers little-endian):
//
//	 0  magic      [8]byte  "KGWLOG\r\n"
//	 8  version    u32      1
//	12  reserved   u32      0
//	16  generation u64      truncation epoch the segment belongs to
//	24  firstSeq   u64      sequence number of the segment's first record
//	32  headerCRC  u32      CRC32C of bytes [0, 32)
//	36  reserved   u32      0
//
// followed by length-prefixed records, back to back:
//
//	 0  length  u32   payload bytes
//	 4  crc     u32   CRC32C of bytes [8, 16+length) — seq plus payload
//	 8  seq     u64   monotonic batch sequence number (+1 per record)
//	16  payload       the batch, JSON-encoded in the /mutate wire format
//	                  (overlay.EncodeOps — the same bytes a client could POST)
//
// Sequence numbers start at 1 and increase by exactly one per record across
// segment boundaries; a gap means acknowledged data is missing and recovery
// refuses with ErrCorrupt. The payload is opaque to this package — the WAL
// stores batches, the overlay interprets them.
//
// # Recovery
//
// Open scans the directory, validates every segment and returns the
// acknowledged records in sequence order. A crash mid-append leaves a torn
// tail in the highest segment: the first record whose length, checksum or
// sequence number does not hold marks the valid prefix, the file is truncated
// there, and appending resumes cleanly. Torn tails are expected and silent
// (reported in Recovery, not an error); an invalid record in any *earlier*
// segment — one whose tail was sealed by a rotation — is real corruption and
// surfaces as a typed error in the snapfile style (ErrBadMagic, ErrBadVersion,
// ErrCorrupt), never a panic.
//
// # Truncation and generations
//
// The log grows until its batches are folded into a durable base snapshot.
// Checkpoint stamps the fold: it bumps the generation, atomically writes the
// CHECKPOINT file (the new generation, the last sequence number covered, and
// the path of the base the post-checkpoint log replays over), rotates to a
// fresh segment of the new generation, and deletes the sealed segments of
// older generations. The invariant linking the two: every record in a
// generation-g segment has seq > the checkpoint seq of every checkpoint with
// generation <= g, so deleting pre-checkpoint segments never drops a batch
// the checkpoint base does not already contain. A crash anywhere inside
// Checkpoint is safe — the CHECKPOINT write is atomic (temp + fsync +
// rename), stale segments that escaped deletion are removed on the next
// Open, and a CHECKPOINT that never landed leaves the old base plus the full
// log, which replays to the same merged view.
//
// # Fsync policies
//
// SyncAlways fsyncs inside every Append before the batch is acknowledged —
// the full durability of the paper's deployment setting. SyncInterval
// acknowledges after write(2) and fsyncs from a background ticker: a killed
// process loses nothing (the page cache survives), a power cut can lose the
// last interval. SyncOff never fsyncs explicitly. The fault sites wal/append,
// wal/fsync, wal/rotate and wal/replay plug the whole lifecycle into the
// chaos harness (internal/fault).
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
)

// Magic is the 8-byte segment signature; the \r\n tail catches text-mode
// mangling the way the snapshot magic does.
const Magic = "KGWLOG\r\n"

// Version is the segment format version written by this package.
const Version = 1

const (
	headerLen = 40 // segment header size
	recHdrLen = 16 // record header size
	// maxRecordLen bounds a single record payload; a length field above it
	// is treated as corruption, not an allocation request.
	maxRecordLen = 16 << 20

	segSuffix      = ".seg"
	segPrefix      = "wal-"
	checkpointName = "CHECKPOINT"
)

// Fault-injection sites of the durability layer (see internal/fault): the
// record append, the fsync, the segment rotation (which Checkpoint's
// truncation path crosses), and the startup replay.
var (
	siteAppend = fault.Site("wal/append")
	siteFsync  = fault.Site("wal/fsync")
	siteRotate = fault.Site("wal/rotate")
	siteReplay = fault.Site("wal/replay")
)

// Typed errors in the snapfile style: every malformed log maps to exactly
// one of these through errors.Is, and no input shape panics.
var (
	// ErrBadMagic: a segment file does not start with the KGWLOG signature.
	ErrBadMagic = errors.New("wal: bad segment magic")
	// ErrBadVersion: the signature matched but the format version is not one
	// this reader understands.
	ErrBadVersion = errors.New("wal: unsupported segment version")
	// ErrCorrupt: a sealed segment holds an invalid record, the sequence
	// numbering has a gap, or the checkpoint file is malformed — acknowledged
	// data is missing or unreadable.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed: the log was closed (or broke irrecoverably mid-append) and
	// accepts no further appends.
	ErrClosed = errors.New("wal: log closed")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs inside every Append, before acknowledgment.
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges after write(2) and fsyncs on a background
	// ticker (Options.SyncEvery).
	SyncInterval
	// SyncOff never fsyncs explicitly (the OS flushes on its own schedule).
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
}

// ParseSyncPolicy parses the -wal-sync flag forms "always", "off",
// "interval" and "interval:<duration>". The returned duration is zero unless
// the spec carries one.
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch s {
	case "always":
		return SyncAlways, 0, nil
	case "off":
		return SyncOff, 0, nil
	case "interval":
		return SyncInterval, 0, nil
	}
	if rest, ok := strings.CutPrefix(s, "interval:"); ok {
		d, err := time.ParseDuration(rest)
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("wal: bad sync interval %q", rest)
		}
		return SyncInterval, d, nil
	}
	return 0, 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval[:dur] or off)", s)
}

// Options parameterizes a Log. The zero value is valid: SyncAlways, 25ms
// interval (unused), 16 MiB segments.
type Options struct {
	// Sync is the fsync policy (see SyncPolicy).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval ticker period; 0 selects 25ms.
	SyncEvery time.Duration
	// SegmentBytes is the size past which Append rotates to a fresh
	// segment; 0 selects 16 MiB.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 25 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

// Checkpoint records a truncation point: everything at or below Seq is
// folded into the base at Base, and only generation >= Generation segments
// remain relevant.
type Checkpoint struct {
	// Generation is the truncation epoch; it only ever increases.
	Generation uint64 `json:"generation"`
	// Seq is the last sequence number covered by the base — recovery
	// replays only records with larger sequence numbers.
	Seq uint64 `json:"seq"`
	// Base is the path recovery rebuilds the pre-log state from: a binary
	// snapshot or a JSON dictionary (anything the serving layer can load).
	// Empty means "the originally configured source".
	Base string `json:"base,omitempty"`
}

// Record is one acknowledged batch recovered from the log.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Stats is a point-in-time view of the log, surfaced by the serving layer's
// /stats endpoint: compaction debt (segments, bytes, batches) and the
// durability lag (unsynced batches/bytes, last-fsync timing).
type Stats struct {
	Generation      uint64 `json:"generation"`
	NextSeq         uint64 `json:"nextSeq"`
	Segments        int    `json:"segments"`
	Bytes           int64  `json:"bytes"`
	Appended        int64  `json:"appended"`
	Syncs           int64  `json:"syncs"`
	UnsyncedBatches int    `json:"unsyncedBatches"`
	UnsyncedBytes   int64  `json:"unsyncedBytes"`
	// LastSyncUnixNano is the wall-clock time the last fsync completed, 0
	// before the first one.
	LastSyncUnixNano int64 `json:"lastSyncUnixNano,omitempty"`
	// LastSyncNanos is the duration of the last fsync.
	LastSyncNanos int64 `json:"lastSyncNanos,omitempty"`
	// SyncError carries the last background-sync failure (SyncInterval
	// mode), empty when healthy.
	SyncError string `json:"syncError,omitempty"`
}

// segName builds the canonical segment file name.
func segName(gen, firstSeq uint64) string {
	return fmt.Sprintf("%s%016x-%016x%s", segPrefix, gen, firstSeq, segSuffix)
}

// parseSegName extracts (generation, firstSeq) from a segment file name.
func parseSegName(name string) (gen, firstSeq uint64, ok bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	parts := strings.Split(mid, "-")
	if len(parts) != 2 || len(parts[0]) != 16 || len(parts[1]) != 16 {
		return 0, 0, false
	}
	g, err1 := strconv.ParseUint(parts[0], 16, 64)
	s, err2 := strconv.ParseUint(parts[1], 16, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return g, s, true
}

// encodeHeader renders a segment header.
func encodeHeader(gen, firstSeq uint64) []byte {
	h := make([]byte, headerLen)
	copy(h, Magic)
	binary.LittleEndian.PutUint32(h[8:], Version)
	binary.LittleEndian.PutUint64(h[16:], gen)
	binary.LittleEndian.PutUint64(h[24:], firstSeq)
	binary.LittleEndian.PutUint32(h[32:], crc32.Checksum(h[:32], crcTable))
	return h
}

// decodeHeader validates a segment header, returning its generation and
// first sequence number.
func decodeHeader(h []byte) (gen, firstSeq uint64, err error) {
	if len(h) < headerLen {
		return 0, 0, fmt.Errorf("%w: %d-byte header", ErrCorrupt, len(h))
	}
	if string(h[:len(Magic)]) != Magic {
		return 0, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(h[8:]); v != Version {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if got, want := crc32.Checksum(h[:32], crcTable), binary.LittleEndian.Uint32(h[32:]); got != want {
		return 0, 0, fmt.Errorf("%w: header checksum", ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(h[16:]), binary.LittleEndian.Uint64(h[24:]), nil
}

// encodeRecord renders one record (header + payload).
func encodeRecord(seq uint64, payload []byte) []byte {
	buf := make([]byte, recHdrLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:], seq)
	copy(buf[recHdrLen:], payload)
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf[8:], crcTable))
	return buf
}

// decodeRecord parses the record starting at b, reporting how many bytes it
// spans. ok is false when the bytes do not form a whole valid record — the
// torn-tail signal during scans.
func decodeRecord(b []byte) (seq uint64, payload []byte, span int, ok bool) {
	if len(b) < recHdrLen {
		return 0, nil, 0, false
	}
	n := binary.LittleEndian.Uint32(b[0:])
	if n > maxRecordLen || recHdrLen+int(n) > len(b) {
		return 0, nil, 0, false
	}
	span = recHdrLen + int(n)
	if crc32.Checksum(b[8:span], crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return 0, nil, 0, false
	}
	return binary.LittleEndian.Uint64(b[8:]), b[recHdrLen:span], span, true
}

// readCheckpoint loads the CHECKPOINT file; (nil, nil) when absent.
func readCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading checkpoint: %w", err)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("%w: checkpoint: %v", ErrCorrupt, err)
	}
	if cp.Generation == 0 {
		return nil, fmt.Errorf("%w: checkpoint generation 0", ErrCorrupt)
	}
	return cp, nil
}

// writeCheckpoint publishes a checkpoint atomically: temp file in the same
// directory, fsync, rename, directory fsync — the snapfile discipline, so a
// crash leaves either the old checkpoint or the new one, never a torn file.
func writeCheckpoint(dir string, cp Checkpoint) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("wal: encoding checkpoint: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, checkpointName+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	published := false
	defer func() {
		if !published {
			tmp.Close()        //nolint:errcheck // already failing
			os.Remove(tmpName) //nolint:errcheck // best-effort
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("wal: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, checkpointName)); err != nil {
		return fmt.Errorf("wal: publishing checkpoint: %w", err)
	}
	published = true
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory, best-effort (not all filesystems support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best-effort
		d.Close()
	}
}
