package plan

import (
	"testing"

	"repro/internal/pg"
	"repro/internal/value"
)

func statsGraph() (*pg.Graph, Layout) {
	g := pg.New()
	var companies []pg.OID
	for i := 0; i < 10; i++ {
		props := pg.Props{"name": value.Str([]string{"a", "b"}[i%2])}
		if i%2 == 0 {
			props["cap"] = value.IntV(int64(i))
		}
		companies = append(companies, g.AddNode([]string{"Company"}, props).ID)
	}
	g.AddNode([]string{"Person"}, pg.Props{"name": value.Str("p")})
	for i := 0; i < 9; i++ {
		g.MustAddEdge(companies[0], companies[i+1], "OWNS", pg.Props{"pct": value.FloatV(0.5)})
	}
	lay := Layout{
		NodeProps: map[string][]string{"Company": {"cap", "name"}, "Person": {"name"}},
		EdgeProps: map[string][]string{"OWNS": {"pct"}},
	}
	return g, lay
}

func TestComputeStats(t *testing.T) {
	g, lay := statsGraph()
	st := ComputeStats(g.Freeze(), lay)
	if st.Nodes != 11 || st.Edges != 9 {
		t.Fatalf("graph size = %d/%d, want 11/9", st.Nodes, st.Edges)
	}
	c, ok := st.Preds["Company"]
	if !ok || c.Kind != "node" || c.Card != 10 {
		t.Fatalf("Company stats = %+v", c)
	}
	// Columns: (oid, cap, name). The oid is a key; name has two distinct
	// values; cap has 5 ints plus the shared absent bucket.
	if len(c.Distinct) != 3 || c.Distinct[0] != 10 {
		t.Fatalf("Company distincts = %v", c.Distinct)
	}
	if got := c.distinctAt(2); got != 2 {
		t.Fatalf("distinct(name) = %d, want 2", got)
	}
	if got := c.distinctAt(1); got != 6 {
		t.Fatalf("distinct(cap) = %d, want 6 (5 values + absent bucket)", got)
	}
	o, ok := st.Preds["OWNS"]
	if !ok || o.Kind != "edge" || o.Card != 9 {
		t.Fatalf("OWNS stats = %+v", o)
	}
	// Columns: (oid, from, to, pct). One hub fans out to nine targets.
	if o.Distinct[1] != 1 || o.Distinct[2] != 9 {
		t.Fatalf("OWNS from/to distincts = %v", o.Distinct)
	}
	// distinctAt outside the layout (or the stats) falls back to the default
	// selectivity divisor, never zero.
	if got := o.distinctAt(9); got != defaultDistinct {
		t.Fatalf("distinctAt out of range = %d, want %d", got, defaultDistinct)
	}
	var missing PredStats
	if got := missing.distinctAt(0); got != defaultDistinct {
		t.Fatalf("zero-value distinctAt = %d, want %d", got, defaultDistinct)
	}
}

func TestScaleDistinct(t *testing.T) {
	// Exact when the sample covered everything; linearly extrapolated and
	// clamped to the cardinality otherwise.
	if got := scaleDistinct(5, 100, 100); got != 5 {
		t.Fatalf("full sample = %d, want 5", got)
	}
	if got := scaleDistinct(50, 100, 1000); got != 500 {
		t.Fatalf("extrapolated = %d, want 500", got)
	}
	if got := clampDistinct(5000, 1000); got != 1000 {
		t.Fatalf("clamp high = %d, want 1000", got)
	}
	if got := clampDistinct(0, 1000); got != 1 {
		t.Fatalf("clamp low = %d, want 1", got)
	}
}
