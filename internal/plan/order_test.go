package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// testStats is a synthetic catalog making "big" expensive and "small" cheap,
// so ordering decisions are predictable.
func testStats() *Stats {
	return &Stats{
		Nodes: 1000, Edges: 5000,
		Preds: map[string]PredStats{
			"big":   {Kind: "node", Card: 1000, Distinct: []int{1000, 10}},
			"small": {Kind: "node", Card: 5, Distinct: []int{5, 5}},
			"edge":  {Kind: "edge", Card: 5000, Distinct: []int{5000, 500, 900}},
		},
	}
}

func mustParse(t *testing.T, src string) *vadalog.Program {
	t.Helper()
	p, err := vadalog.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

func TestCompileReordersBySelectivity(t *testing.T) {
	prog := mustParse(t, `out(X,Y) :- big(X,V), small(Y,W).`)
	planned, pl, err := Compile(prog, testStats(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Planned || len(pl.Rules) != 1 || !pl.Rules[0].Reordered {
		t.Fatalf("expected a reordered plan, got %+v", pl)
	}
	body := planned.Rules[0].Body
	if body[0].Atom.Pred != "small" || body[1].Atom.Pred != "big" {
		t.Fatalf("order = %s, %s; want small first", body[0].Atom.Pred, body[1].Atom.Pred)
	}
	// The input program is never mutated.
	if prog.Rules[0].Body[0].Atom.Pred != "big" {
		t.Fatal("Compile mutated its input program")
	}
}

func TestCompileAvoidsCartesianProducts(t *testing.T) {
	// small(Z) is the cheapest atom after big(X,V) binds X, but it shares no
	// variable — picking it would start a cross product. The planner must
	// stay connected: big, then edge probing X, and only then small.
	prog := mustParse(t, `out(X,Y,Z) :- big(X,V), edge(E,X,Y), small(Z,W).`)
	planned, pl, err := Compile(prog, testStats(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Planned {
		t.Fatalf("plan fell back: %+v", pl)
	}
	body := planned.Rules[0].Body
	var preds []string
	for _, l := range body {
		preds = append(preds, l.Atom.Pred)
	}
	if preds[0] != "small" && preds[1] == "small" {
		t.Fatalf("small joined mid-chain without shared variables: %v", preds)
	}
}

func TestCompileNilStats(t *testing.T) {
	prog := mustParse(t, `out(X) :- big(X,V).`)
	planned, pl, err := Compile(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Planned || pl.Fallback == "" {
		t.Fatalf("nil stats must report an unplanned fallback, got %+v", pl)
	}
	if planned != prog {
		t.Fatal("nil stats must return the input program unchanged")
	}
}

func TestCompileFaultSite(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm("plan/order", fault.Plan{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	prog := mustParse(t, `out(X) :- big(X,V).`)
	if _, _, err := Compile(prog, testStats(), Options{}); err == nil {
		t.Fatal("armed plan/order site must surface an error")
	}
	// The next call (site disarmed after one shot) plans normally.
	if _, pl, err := Compile(prog, testStats(), Options{}); err != nil || !pl.Planned {
		t.Fatalf("recovery compile: err=%v plan=%+v", err, pl)
	}
}

// TestReorderHazards pins the fallback taxonomy: each rule shape outside the
// reorderable class keeps written order with its reason recorded.
func TestReorderHazards(t *testing.T) {
	cases := []struct {
		src    string
		reason string
	}{
		{`out(X,C) :- big(X,V), C = count().`, "aggregation"},
		{`out(X,V) :- V = W + 1, big(X,W).`, "assignment"},
		{`out(X) :- not small(X,V), big(X,V).`, "negation over unbound variables"},
		{`out(X) :- X > 1, big(X,V).`, "condition over unbound variables"},
		// Reorderable shapes for contrast: bound negation and bound conditions
		// are not hazards.
		{`out(X) :- big(X,V), not small(X,V).`, ""},
		{`out(X) :- big(X,V), V > 1.`, ""},
	}
	for _, tc := range cases {
		prog := mustParse(t, tc.src)
		_, pl, err := Compile(prog, testStats(), Options{})
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if len(pl.Rules) != 1 {
			t.Fatalf("%q: %d rule plans", tc.src, len(pl.Rules))
		}
		if got := pl.Rules[0].Fallback; got != tc.reason {
			t.Errorf("%q: fallback = %q, want %q", tc.src, got, tc.reason)
		}
	}
	// FirstMatchOnly is an AST flag, not surface syntax: set it directly.
	prog := mustParse(t, `out(X) :- big(X,V), small(X,W).`)
	prog.Rules[0].FirstMatchOnly = true
	_, pl, err := Compile(prog, testStats(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Rules[0].Fallback != "first-match-only" {
		t.Errorf("first-match-only fallback = %q", pl.Rules[0].Fallback)
	}
}

// ---------------------------------------------------------------------------
// Property test: on randomly generated programs and databases, the compiled
// program must be result-identical to the original — including programs with
// assignments, negation and aggregates, which must fall back per rule. The
// sweep runs the engine sequentially and in parallel.
// ---------------------------------------------------------------------------

func generateOrderProgram(rng *rand.Rand) string {
	var b strings.Builder
	bins := []string{"e", "f"}
	pick := func() string { return bins[rng.Intn(len(bins))] }
	idx := 0
	fresh := func(p string) string { idx++; return fmt.Sprintf("%s%d", p, idx) }
	nRules := 2 + rng.Intn(4)
	for i := 0; i < nRules; i++ {
		switch rng.Intn(8) {
		case 0, 1: // three-way join, deliberately badly ordered
			p := fresh("j")
			fmt.Fprintf(&b, "%s(X,Z) :- %s(X,Y), %s(Y,Z), %s(Z,W).\n", p, pick(), pick(), pick())
			bins = append(bins, p)
		case 2: // filter between joins
			p := fresh("c")
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y), X < Y.\n", p, pick())
			bins = append(bins, p)
		case 3: // assignment (reorder hazard: rule keeps written order)
			p := fresh("a")
			fmt.Fprintf(&b, "%s(X,V) :- %s(X,Y), V = Y + 10.\n", p, pick())
			bins = append(bins, p)
		case 4: // negation (hazard when over unbound vars)
			p := fresh("n")
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y), not %s(Y,X).\n", p, pick(), pick())
			bins = append(bins, p)
		case 5: // aggregation (hazard)
			p := fresh("g")
			fmt.Fprintf(&b, "%s(X,C) :- %s(X,Y), C = count().\n", p, pick())
		case 6: // closure (recursion survives reordering)
			p := fresh("t")
			base := pick()
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y).\n", p, base)
			fmt.Fprintf(&b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", p, p, base)
			bins = append(bins, p)
		case 7: // wide join with a late cheap atom (reorder bait)
			p := fresh("w")
			fmt.Fprintf(&b, "%s(X,W) :- %s(X,Y), %s(Y,Z), %s(Z,W), X != W.\n", p, pick(), pick(), pick())
			bins = append(bins, p)
		}
	}
	return b.String()
}

func generateOrderDB(rng *rand.Rand) *vadalog.Database {
	db := vadalog.NewDatabase()
	n := 3 + rng.Intn(6)
	for i := 0; i < 10+rng.Intn(20); i++ {
		db.MustAddFact("e", value.IntV(int64(rng.Intn(n))), value.IntV(int64(rng.Intn(n))))
	}
	for i := 0; i < 5+rng.Intn(10); i++ {
		db.MustAddFact("f", value.IntV(int64(rng.Intn(n))), value.IntV(int64(rng.Intn(n))))
	}
	return db
}

func renderResult(res *vadalog.Result, preds map[string]bool) string {
	var names []string
	for p := range preds {
		names = append(names, p)
	}
	var b strings.Builder
	for _, p := range sortedStrings(names) {
		for _, f := range res.DB.SortedFacts(p) {
			b.WriteString(p)
			b.WriteByte('(')
			b.WriteString(f.String())
			b.WriteString(")\n")
		}
	}
	return b.String()
}

func sortedStrings(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestOrderingDifferentialProperty(t *testing.T) {
	reordered := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := generateOrderProgram(rng)
		prog, err := vadalog.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generator emitted unparsable program: %v\n%s", seed, err, src)
		}
		if _, err := vadalog.Analyze(prog); err != nil {
			continue // unsafe/unstratifiable draw; the planner never sees these
		}
		db := generateOrderDB(rng)
		st := &Stats{Nodes: 20, Edges: 40, Preds: map[string]PredStats{
			"e": {Kind: "edge", Card: 25, Distinct: []int{25, 6, 6}},
			"f": {Kind: "edge", Card: 10, Distinct: []int{10, 6, 6}},
		}}
		planned, pl, err := Compile(prog, st, Options{Demand: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, rp := range pl.Rules {
			if rp.Reordered {
				reordered++
			}
		}
		preds := map[string]bool{}
		for _, r := range prog.Rules {
			for _, h := range r.Head {
				preds[h.Pred] = true
			}
		}
		// Demand-restricted closures are intentionally narrowed; exclude them
		// (none are outputs — the generator emits no output annotations, and
		// soundness for consumers is covered by the demand tests).
		for _, dp := range pl.Demand {
			delete(preds, dp.Pred)
		}
		for _, workers := range []int{1, 4} {
			want, werr := vadalog.Run(prog, db, vadalog.Options{Workers: workers})
			got, gerr := vadalog.Run(planned, db, vadalog.Options{Workers: workers})
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("seed %d workers %d: error mismatch: %v vs %v\n%s", seed, workers, werr, gerr, src)
			}
			if werr != nil {
				continue
			}
			if w, g := renderResult(want, preds), renderResult(got, preds); w != g {
				t.Fatalf("seed %d workers %d: results diverge\nprogram:\n%s\nwant:\n%s\ngot:\n%s",
					seed, workers, src, w, g)
			}
		}
	}
	if reordered == 0 {
		t.Fatal("no generated rule was reordered; the property is vacuous")
	}
	t.Logf("%d rules reordered across the sweep", reordered)
}
