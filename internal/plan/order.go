package plan

import (
	"math"
	"strings"

	"repro/internal/fault"
	"repro/internal/vadalog"
)

// siteOrder brackets one planning pass; chaos tests arm it to prove that a
// failed planner falls back to unplanned written-order evaluation
// bit-identically (the caller keeps the input program on error).
var siteOrder = fault.Site("plan/order")

// Options selects the transformation passes Compile applies.
type Options struct {
	// Demand enables the magic-sets-style demand transformation over the
	// left-linear closure predicates (demand.go) on top of join ordering.
	Demand bool
}

// LiteralPlan is one body literal in plan order with its cumulative
// cardinality estimate (expected intermediate rows after evaluating the
// body up to and including this literal).
type LiteralPlan struct {
	Text      string  `json:"text"`
	OrigIndex int     `json:"origIndex"`
	EstRows   float64 `json:"estRows"`
}

// RulePlan is the plan of one rule: the chosen literal order (written order
// when Fallback names why the rule is outside the reorderable class) and
// the estimated output cardinality.
type RulePlan struct {
	HeadPred  string        `json:"headPred"`
	Head      string        `json:"head"`
	Reordered bool          `json:"reordered"`
	Fallback  string        `json:"fallback,omitempty"`
	EstRows   float64       `json:"estRows"`
	Literals  []LiteralPlan `json:"literals,omitempty"`
}

// DemandPlan describes one demand-transformed closure predicate.
type DemandPlan struct {
	Pred    string   `json:"pred"`
	Guard   string   `json:"guard"`
	Seeds   []string `json:"seeds"`
	SeedEst float64  `json:"seedEst"`
	FullEst float64  `json:"fullEst"`
}

// Plan is the serializable explain output of one Compile: per-rule orders
// and estimates plus the demand rewrites. Planned is false only for a
// whole-program fallback (no statistics, or a failed pass the caller
// recovered from); per-rule fallbacks leave Planned true.
type Plan struct {
	Planned  bool         `json:"planned"`
	Fallback string       `json:"fallback,omitempty"`
	EstRows  float64      `json:"estRows"`
	Rules    []RulePlan   `json:"rules,omitempty"`
	Demand   []DemandPlan `json:"demand,omitempty"`
}

// Unplanned is the Plan reported when the planner did not run: the program
// keeps its written order.
func Unplanned(reason string) *Plan { return &Plan{Planned: false, Fallback: reason} }

// OutputEst sums the estimated rows of the rules deriving headPred.
func (p *Plan) OutputEst(headPred string) float64 {
	var total float64
	for _, r := range p.Rules {
		if r.HeadPred == headPred {
			total += r.EstRows
		}
	}
	return total
}

// Compile plans a translated program against the statistics catalog: every
// rule body inside the reorderable class is reordered greedily by estimated
// cardinality (bound-variable propagation, smallest-estimate-first), and
// with opt.Demand the closure predicates are restricted to their demanded
// subset. The input program is never mutated; the returned program is
// executed by the unmodified engine. An error (only from the plan/order
// fault site or a nil program) means the caller must keep the unplanned
// program — the transformation is all-or-nothing.
func Compile(prog *vadalog.Program, st *Stats, opt Options) (*vadalog.Program, *Plan, error) {
	if err := fault.Hit(siteOrder); err != nil {
		return nil, nil, err
	}
	if st == nil {
		return prog, Unplanned("no statistics catalog"), nil
	}
	out := prog.CloneRules()
	pl := &Plan{Planned: true}
	idb := make(map[string]bool)
	for _, r := range out.Rules {
		for _, h := range r.Head {
			idb[h.Pred] = true
		}
	}
	for i := range out.Rules {
		rp := orderRule(&out.Rules[i], st, idb)
		pl.EstRows += rp.EstRows
		pl.Rules = append(pl.Rules, rp)
	}
	if opt.Demand {
		applyDemand(out, st, pl)
	}
	changed := len(pl.Demand) > 0
	for _, rp := range pl.Rules {
		changed = changed || rp.Reordered
	}
	if changed {
		// Final safety net: the transformed program must pass the same static
		// analysis the engine will run. A violation means a planner bug — the
		// caller keeps the written-order program, transparently.
		if _, err := vadalog.Analyze(out); err != nil {
			return prog, Unplanned("transformed program failed analysis: " + err.Error()), nil
		}
	}
	return out, pl, nil
}

// orderRule reorders one rule body in place and returns its plan. Rules
// outside the reorderable class — assignments (an expression literal whose
// target variable is unbound at its written position; moving it would flip
// it between assignment and condition), aggregates (contributor
// multiplicity depends on traversal order), first-match-only variants (the
// cut is anchored to the leading atom), negated atoms or conditions over
// variables unbound at their written position (their wildcard/error
// semantics are position-dependent) — keep their written order, with the
// reason recorded in Fallback. These are exactly the Maintainer's
// reordering hazards (internal/vadalog/delta.go assignTargets).
func orderRule(r *vadalog.Rule, st *Stats, idb map[string]bool) RulePlan {
	rp := RulePlan{Head: headString(r), HeadPred: headPred(r)}
	selfPreds := map[string]bool{}
	for _, h := range r.Head {
		selfPreds[h.Pred] = true
	}
	if reason := reorderHazard(r); reason != "" {
		rp.Fallback = reason
		rp.Literals, rp.EstRows = estimateBody(r.Body, st, idb, selfPreds)
		return rp
	}

	type pend struct {
		idx int
		lit vadalog.Literal
	}
	var atoms, filters []pend
	for i, l := range r.Body {
		if l.Kind == vadalog.LitAtom {
			atoms = append(atoms, pend{i, l})
		} else {
			filters = append(filters, pend{i, l})
		}
	}

	bound := map[string]bool{}
	rows := 1.0
	ordered := make([]pend, 0, len(r.Body))
	place := func(p pend, est float64) {
		rows = math.Max(rows*est, minEst)
		ordered = append(ordered, p)
		rp.Literals = append(rp.Literals, LiteralPlan{Text: p.lit.String(), OrigIndex: p.idx, EstRows: round3(rows)})
	}
	// flush places every pending filter whose variables are all bound — in
	// written relative order, immediately, so filters run as early as their
	// bindings allow.
	flush := func() {
		for changed := true; changed; {
			changed = false
			for i := 0; i < len(filters); i++ {
				if allBound(filters[i].lit.VarNames(), bound) {
					place(filters[i], filterSelectivity)
					filters = append(filters[:i], filters[i+1:]...)
					changed = true
					i--
				}
			}
		}
	}
	flush()
	for len(atoms) > 0 {
		// Avoid Cartesian products: once variables are bound, only atoms
		// sharing one (or carrying constants) are candidates, however cheap an
		// unconnected scan looks — estimates cannot price the blowup of
		// joining two unrelated relations late.
		connected := false
		if len(bound) > 0 {
			for _, a := range atoms {
				if atomConnected(a.lit.Atom, bound) {
					connected = true
					break
				}
			}
		}
		best, bestEst := -1, 0.0
		for i, a := range atoms {
			if connected && !atomConnected(a.lit.Atom, bound) {
				continue
			}
			est := estimateAtom(st, idb, selfPreds, a.lit.Atom, bound)
			if best == -1 || est < bestEst {
				best, bestEst = i, est
			}
		}
		a := atoms[best]
		atoms = append(atoms[:best], atoms[best+1:]...)
		place(a, bestEst)
		for _, v := range a.lit.Atom.Vars() {
			bound[v] = true
		}
		flush()
	}
	if len(filters) > 0 {
		// Defensive: a filter whose variables no positive atom binds. The
		// hazard scan should have caught it; keep written order.
		rp.Fallback = "unbindable filter"
		rp.Reordered = false
		rp.Literals, rp.EstRows = estimateBody(r.Body, st, idb, selfPreds)
		return rp
	}

	for i, p := range ordered {
		if p.idx != i {
			rp.Reordered = true
			break
		}
	}
	if rp.Reordered {
		body := make([]vadalog.Literal, len(ordered))
		for i, p := range ordered {
			body[i] = p.lit
		}
		r.Body = body
	}
	rp.EstRows = round3(rows)
	return rp
}

// reorderHazard names the feature that pins a rule to its written order, or
// returns "" for reorderable rules.
func reorderHazard(r *vadalog.Rule) string {
	if r.FirstMatchOnly {
		return "first-match-only"
	}
	bound := map[string]bool{}
	for _, l := range r.Body {
		switch l.Kind {
		case vadalog.LitAtom:
			for _, t := range l.Atom.Args {
				if _, ok := t.(vadalog.SkolemTerm); ok {
					return "skolem term in body"
				}
			}
			for _, v := range l.Atom.Vars() {
				bound[v] = true
			}
		case vadalog.LitNegAtom:
			for _, v := range l.Atom.Vars() {
				if !bound[v] {
					// Unbound negation variables are wildcards at their
					// written position; a reorder could bind them.
					return "negation over unbound variables"
				}
			}
		case vadalog.LitExpr:
			if l.Expr.HasAggregate() {
				return "aggregation"
			}
			if tgt, ok := l.Expr.AssignTarget(); ok && !bound[tgt] {
				return "assignment"
			}
			for _, v := range l.Expr.VarNames() {
				if !bound[v] {
					return "condition over unbound variables"
				}
			}
		}
	}
	return ""
}

const (
	filterSelectivity = 0.5
	minEst            = 1e-3
)

// estimateAtom is the cost model: expected matches of one atom per binding
// of the already-bound variables. Extensional predicates use the catalog's
// cardinality divided by the distinct count of every bound column (a bound
// edge source costs Card/Distinct[from] — the label's average out-degree;
// a bound property constant costs Card/Distinct[prop] — its selectivity).
// Intensional predicates (helpers, derived labels) have unknown size: they
// are assumed graph-scale with a default per-bound-column selectivity, which
// biases the order toward extensional scans first — exactly the index-aware
// choice, since bound extensional probes hit the relation's masked indexes.
func estimateAtom(st *Stats, idb, self map[string]bool, a vadalog.Atom, bound map[string]bool) float64 {
	if self[a.Pred] {
		// Recursive atom: under semi-naive evaluation this occurrence binds to
		// the previous round's delta, not the full relation. Price it at
		// delta scale so it leads the join — a full scan ordered before it
		// would be rescanned on every fixpoint iteration.
		return 1
	}
	ps, known := st.Preds[a.Pred]
	var est float64
	if known && !idb[a.Pred] {
		est = float64(ps.Card)
		for i, t := range a.Args {
			if termBound(t, bound) {
				est /= float64(ps.distinctAt(i))
			}
		}
	} else {
		est = float64(st.Nodes+st.Edges) + 1
		for _, t := range a.Args {
			if termBound(t, bound) {
				est /= defaultDistinct
			}
		}
	}
	return math.Max(est, minEst)
}

// estimateBody estimates a body in its given order without reordering it —
// the explain numbers for fallback rules.
func estimateBody(body []vadalog.Literal, st *Stats, idb, self map[string]bool) ([]LiteralPlan, float64) {
	bound := map[string]bool{}
	rows := 1.0
	out := make([]LiteralPlan, 0, len(body))
	for i, l := range body {
		switch l.Kind {
		case vadalog.LitAtom:
			rows = math.Max(rows*estimateAtom(st, idb, self, l.Atom, bound), minEst)
			for _, v := range l.Atom.Vars() {
				bound[v] = true
			}
		default:
			rows = math.Max(rows*filterSelectivity, minEst)
			if l.Kind == vadalog.LitExpr {
				if tgt, ok := l.Expr.AssignTarget(); ok {
					bound[tgt] = true
				}
			}
		}
		out = append(out, LiteralPlan{Text: l.String(), OrigIndex: i, EstRows: round3(rows)})
	}
	return out, round3(rows)
}

// atomConnected reports whether an atom joins with the bound variables (or
// probes by constant) rather than starting an unrelated scan.
func atomConnected(a vadalog.Atom, bound map[string]bool) bool {
	for _, t := range a.Args {
		if termBound(t, bound) {
			return true
		}
	}
	return false
}

func termBound(t vadalog.Term, bound map[string]bool) bool {
	switch t := t.(type) {
	case vadalog.Const:
		return true
	case vadalog.Var:
		return bound[t.Name]
	default:
		return false
	}
}

func allBound(vars []string, bound map[string]bool) bool {
	for _, v := range vars {
		if !bound[v] {
			return false
		}
	}
	return true
}

func headString(r *vadalog.Rule) string {
	parts := make([]string, len(r.Head))
	for i, h := range r.Head {
		parts[i] = h.String()
	}
	return strings.Join(parts, ", ")
}

func headPred(r *vadalog.Rule) string {
	if len(r.Head) == 0 {
		return ""
	}
	return r.Head[0].Pred
}

// round3 keeps the explain JSON readable (and deterministic across
// platforms) without losing the orders of magnitude the estimates carry.
func round3(f float64) float64 {
	if f >= 100 {
		return math.Round(f)
	}
	return math.Round(f*1000) / 1000
}
