// Package plan is the cost-based query planner of the reproduction: a
// statistics catalog over frozen property-graph snapshots, a join-ordering
// pass over translated Vadalog rule bodies, and a magic-sets-style demand
// transformation for the left-linear closure predicates the MetaLog
// translation emits (DESIGN.md §15).
//
// The planner never touches the engine. Like the incremental Maintainer
// (internal/vadalog/delta.go), it is a pure program transformation: Compile
// takes a translated program and returns an equivalent one whose rule bodies
// are reordered by estimated cardinality and whose closure predicates are
// restricted to the demanded subset — the unmodified semi-naive engine then
// executes the plan. Programs outside the supported class keep their written
// order, reported as a fallback in the Plan, never as an error.
package plan

import (
	"sort"

	"repro/internal/graphstats"
	"repro/internal/pg"
)

// Layout names the relational columns each label's facts are extracted
// into, mirroring the MetaLog catalog: node relations are (oid, props...),
// edge relations are (oid, from, to, props...), properties in the catalog's
// sorted order (see metalog.Catalog and its PlanLayout adapter).
type Layout struct {
	NodeProps map[string][]string `json:"nodeProps"`
	EdgeProps map[string][]string `json:"edgeProps"`
}

// PredStats summarizes one extracted relation for costing.
type PredStats struct {
	// Kind is "node" or "edge".
	Kind string `json:"kind"`
	// Card is the relation's cardinality (facts = nodes or edges).
	Card int `json:"card"`
	// Distinct estimates the number of distinct values per relational
	// column: node relations (oid, props...), edge relations (oid, from,
	// to, props...). Distinct[1] and Distinct[2] of an edge relation give
	// the average out- and in-degree of the label as Card/Distinct.
	Distinct []int `json:"distinct"`
}

// Stats is the planner's statistics catalog: cheap, serializable, computed
// once per frozen generation (at Freeze()/snapshot-load time) and shared
// read-only by every plan against that generation.
type Stats struct {
	Nodes int                  `json:"nodes"`
	Edges int                  `json:"edges"`
	Preds map[string]PredStats `json:"preds"`
}

// statsSample caps the rows scanned per label for distinct counting.
// Cardinalities stay exact (they come from the per-label postings); distinct
// counts on larger labels are linearly extrapolated from the first
// statsSample rows, which keeps the pass O(min(card, sample)) per label —
// cheap enough for snapshot-load time on paper-scale graphs.
const statsSample = 50000

// ComputeStats builds the statistics catalog for a graph view under a
// column layout. The pass is deterministic: labels come from the layout in
// sorted order, rows in the view's per-label scan order.
func ComputeStats(g pg.View, lay Layout) *Stats {
	nodeCard, edgeCard := graphstats.LabelCardinalities(g)
	st := &Stats{
		Nodes: g.NumNodes(),
		Edges: g.NumEdges(),
		Preds: make(map[string]PredStats, len(lay.NodeProps)+len(lay.EdgeProps)),
	}
	for _, label := range sortedKeys(lay.NodeProps) {
		props := lay.NodeProps[label]
		card := nodeCard[label]
		ps := PredStats{Kind: "node", Card: card, Distinct: make([]int, 1+len(props))}
		ps.Distinct[0] = card // oid column is a key
		nodes := g.NodesByLabel(label)
		sample := len(nodes)
		if sample > statsSample {
			sample = statsSample
		}
		for pi, prop := range props {
			seen := make(map[string]struct{}, min(sample, 1024))
			for _, n := range nodes[:sample] {
				seen[propKey(n.Props, prop)] = struct{}{}
			}
			ps.Distinct[1+pi] = scaleDistinct(len(seen), sample, card)
		}
		st.Preds[label] = ps
	}
	for _, label := range sortedKeys(lay.EdgeProps) {
		props := lay.EdgeProps[label]
		card := edgeCard[label]
		ps := PredStats{Kind: "edge", Card: card, Distinct: make([]int, 3+len(props))}
		ps.Distinct[0] = card // oid column is a key
		edges := g.EdgesByLabel(label)
		sample := len(edges)
		if sample > statsSample {
			sample = statsSample
		}
		from := make(map[pg.OID]struct{}, min(sample, 1024))
		to := make(map[pg.OID]struct{}, min(sample, 1024))
		for _, e := range edges[:sample] {
			from[e.From] = struct{}{}
			to[e.To] = struct{}{}
		}
		ps.Distinct[1] = scaleDistinct(len(from), sample, card)
		ps.Distinct[2] = scaleDistinct(len(to), sample, card)
		for pi, prop := range props {
			seen := make(map[string]struct{}, min(sample, 1024))
			for _, e := range edges[:sample] {
				seen[propKey(e.Props, prop)] = struct{}{}
			}
			ps.Distinct[3+pi] = scaleDistinct(len(seen), sample, card)
		}
		st.Preds[label] = ps
	}
	return st
}

// propKey is the distinct-count identity of one property cell; absent
// properties share one ⊥ bucket, matching the Missing null the extraction
// emits for them.
func propKey(props pg.Props, name string) string {
	v, ok := props[name]
	if !ok {
		return "\x00⊥"
	}
	return v.Canonical()
}

// scaleDistinct extrapolates a sampled distinct count to the full relation:
// proportionally when the sample saturated on unique-ish values, clamped to
// [1, card] (a nonempty column has at least one value).
func scaleDistinct(distinct, sample, card int) int {
	if card == 0 {
		return 0
	}
	if sample >= card || sample == 0 {
		return clampDistinct(distinct, card)
	}
	scaled := int(float64(distinct) * float64(card) / float64(sample))
	return clampDistinct(scaled, card)
}

func clampDistinct(d, card int) int {
	if d < 1 {
		return 1
	}
	if d > card {
		return card
	}
	return d
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// distinctAt returns the distinct estimate for a column, defaulting
// defensively when the column is outside the recorded layout (a pattern can
// extend the catalog past the layout the stats were computed with).
func (ps PredStats) distinctAt(col int) int {
	if col >= 0 && col < len(ps.Distinct) {
		return maxInt(ps.Distinct[col], 1)
	}
	return defaultDistinct
}

const defaultDistinct = 10

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
