package plan

import (
	"strings"
	"testing"

	"repro/internal/vadalog"
	"repro/internal/value"
)

// closureSrc is the canonical demandable shape: a left-linear closure probed
// by a consumer whose prefix binds the closure's start point cheaply.
const closureSrc = `
t(X,Y) :- big(X,Y).
t(X,Z) :- t(X,Y), big(Y,Z).
q(Y) :- small(X,W), t(X,Y).
`

func TestDemandRewritesQualifyingClosure(t *testing.T) {
	prog := mustParse(t, closureSrc)
	planned, pl, err := Compile(prog, testStats(), Options{Demand: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Demand) != 1 || pl.Demand[0].Pred != "t" {
		t.Fatalf("demand plans = %+v, want exactly t", pl.Demand)
	}
	dp := pl.Demand[0]
	if dp.Guard != demandPrefix+"t" {
		t.Fatalf("guard = %q", dp.Guard)
	}
	if len(dp.Seeds) != 1 || !strings.Contains(dp.Seeds[0], "small") {
		t.Fatalf("seeds = %v, want one rule over the consumer prefix", dp.Seeds)
	}
	if dp.SeedEst <= 0 || dp.SeedEst > demandSeedFactor*dp.FullEst {
		t.Fatalf("worthiness violated in an accepted rewrite: seed %v full %v", dp.SeedEst, dp.FullEst)
	}
	// The original rules keep their indices (seeds appended), and the base
	// rule is guarded.
	if len(planned.Rules) != len(prog.Rules)+1 {
		t.Fatalf("rule count %d, want %d", len(planned.Rules), len(prog.Rules)+1)
	}
	guarded := false
	for _, r := range planned.Rules[:len(prog.Rules)] {
		for _, l := range r.Body {
			if l.Kind == vadalog.LitAtom && l.Atom.Pred == dp.Guard {
				guarded = true
			}
		}
	}
	if !guarded {
		t.Fatal("no original rule carries the demand guard")
	}
	if prog.Rules[0].Body[0].Atom.Pred == dp.Guard {
		t.Fatal("Compile mutated its input program")
	}
}

// TestDemandSkipsUnsupportedShapes: each variation moves the closure outside
// the supported class and must leave it unrestricted.
func TestDemandSkipsUnsupportedShapes(t *testing.T) {
	cases := map[string]string{
		"output closure": `@output("t").` + closureSrc,
		"negated closure": closureSrc + `
			r(X) :- big(X,Y), not t(X,Y).`,
		"unbound consumer": `
			t(X,Y) :- big(X,Y).
			t(X,Z) :- t(X,Y), big(Y,Z).
			q(X,Y) :- t(X,Y).`,
		"not left-linear": `
			t(X,Y) :- big(X,Y).
			t(X,Z) :- t(X,Y), t(Y,Z).
			q(Y) :- small(X,W), t(X,Y).`,
		"three defining rules": closureSrc + `
			t(X,X) :- small(X,W).`,
		"unworthy seeds": `
			t(X,Y) :- small(X,Y).
			t(X,Z) :- t(X,Y), small(Y,Z).
			q(Y) :- big(X,W), t(X,Y).`,
	}
	for name, src := range cases {
		prog := mustParse(t, src)
		_, pl, err := Compile(prog, testStats(), Options{Demand: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pl.Demand) != 0 {
			t.Errorf("%s: unexpectedly demanded: %+v", name, pl.Demand)
		}
	}
}

// TestDemandDifferential: the demanded program answers the consumer exactly
// like the unrestricted one — the rewrite narrows only the closure's internal
// extension, never what consumers observe.
func TestDemandDifferential(t *testing.T) {
	prog := mustParse(t, closureSrc)
	planned, pl, err := Compile(prog, testStats(), Options{Demand: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Demand) != 1 {
		t.Fatalf("fixture no longer demandable: %+v", pl.Demand)
	}

	db := vadalog.NewDatabase()
	// Two disjoint chains; only the first is demanded (small starts at 0).
	for i := int64(0); i < 20; i++ {
		db.MustAddFact("big", value.IntV(i), value.IntV(i+1))
		db.MustAddFact("big", value.IntV(100+i), value.IntV(101+i))
	}
	db.MustAddFact("small", value.IntV(0), value.IntV(0))

	for _, workers := range []int{1, 4} {
		want, err := vadalog.Run(prog, db, vadalog.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := vadalog.Run(planned, db, vadalog.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		w := renderResult(want, map[string]bool{"q": true})
		g := renderResult(got, map[string]bool{"q": true})
		if w != g || w == "" {
			t.Fatalf("workers=%d consumer diverged (or is empty):\nfull:\n%s\ndemanded:\n%s", workers, w, g)
		}
		// The demanded run must actually have skipped the undemanded chain.
		if full, dem := len(want.DB.SortedFacts("t")), len(got.DB.SortedFacts("t")); dem >= full {
			t.Fatalf("workers=%d: demand did not narrow the closure: %d vs %d facts", workers, dem, full)
		}
	}
}
