package plan

import (
	"sort"

	"repro/internal/vadalog"
)

// Demand transformation (magic sets, per the Hogan et al. survey's query-
// answering chapter, restricted to the shape the MetaLog translation emits):
// a left-linear closure predicate
//
//	β(H,Q) :- base(H..Q).            (base)
//	β(V,Q) :- β(V,H), base(H..Q).    (recursive)
//
// consumed only at occurrences whose first argument is bound earlier in the
// consumer's (planned) body can be restricted to the demanded subset: seed
// rules ·dmd·β(X) :- <consumer prefix binding X> collect the keys actually
// probed, and the base rule gains a ·dmd·β(H) guard. Left-linearity then
// confines the whole fixpoint to demanded start points — a point query walks
// the reachable fraction instead of materializing the full closure. The
// middle dot cannot appear in a parsed predicate name, so the guard
// predicates never collide with user programs (the Maintainer's del·/ins·
// trick).
//
// Programs outside this class — a closure consumed at an unbound position,
// under negation, or exported as an output — keep the closure unrestricted;
// the supported class is detected per predicate, and skipping it is always
// sound because it only widens what is materialized.
const (
	demandPrefix = "·dmd·"
	// demandSeedFactor gates worthiness: the seeds must be estimated at
	// least 4x cheaper than the full closure, or the guard overhead cannot
	// pay for itself.
	demandSeedFactor = 0.25
)

// demandDecision is one closure predicate's rewrite, snapshotted before any
// rule is mutated so overlapping rewrites cannot corrupt each other's
// prefixes.
type demandDecision struct {
	pred            string
	baseIdx, recIdx int
	seeds           []vadalog.Rule
	seedEst         float64
	fullEst         float64
}

// applyDemand restricts every qualifying closure predicate of the planned
// program, appending seed rules and guarding base rules in place, and
// records the rewrites in pl.Demand. Rule indices of existing rules are
// stable (seeds are appended), so Skolem functor naming and the plan's
// rule alignment survive.
func applyDemand(prog *vadalog.Program, st *Stats, pl *Plan) {
	defs := map[string][]int{}
	negated := map[string]bool{}
	multiHead := map[string]bool{}
	for i, r := range prog.Rules {
		for _, h := range r.Head {
			defs[h.Pred] = append(defs[h.Pred], i)
			if len(r.Head) > 1 {
				multiHead[h.Pred] = true
			}
		}
		for _, l := range r.Body {
			if l.Kind == vadalog.LitNegAtom {
				negated[l.Atom.Pred] = true
			}
		}
	}
	outputs := map[string]bool{}
	for _, o := range prog.Outputs() {
		outputs[o] = true
	}

	var candidates []string
	for pred, idxs := range defs {
		if len(idxs) == 2 && !multiHead[pred] && !negated[pred] && !outputs[pred] {
			candidates = append(candidates, pred)
		}
	}
	sort.Strings(candidates)

	var decisions []demandDecision
	for _, pred := range candidates {
		if d, ok := planDemand(prog, st, pl, pred, defs[pred]); ok {
			decisions = append(decisions, d)
		}
	}

	// Mutations after all decisions: guard the base rules, append the seeds.
	for _, d := range decisions {
		guard := demandPrefix + d.pred
		base := &prog.Rules[d.baseIdx]
		guardLit := vadalog.Literal{Kind: vadalog.LitAtom, Atom: vadalog.Atom{
			Pred: guard, Args: []vadalog.Term{base.Head[0].Args[0]},
		}}
		base.Body = append([]vadalog.Literal{guardLit}, base.Body...)
		rp := &pl.Rules[d.baseIdx]
		rp.Literals = append([]LiteralPlan{{Text: guardLit.String(), OrigIndex: -1, EstRows: round3(d.seedEst)}}, rp.Literals...)

		dp := DemandPlan{Pred: d.pred, Guard: guard, SeedEst: round3(d.seedEst), FullEst: round3(d.fullEst)}
		for _, s := range d.seeds {
			dp.Seeds = append(dp.Seeds, s.String())
			prog.Rules = append(prog.Rules, s)
		}
		pl.Demand = append(pl.Demand, dp)
	}
}

// planDemand decides one candidate predicate: shape-checks its two rules,
// collects every consumer occurrence, and builds the seed rules. ok is false
// when the predicate is outside the supported class or the worthiness gate
// fails.
func planDemand(prog *vadalog.Program, st *Stats, pl *Plan, pred string, def []int) (demandDecision, bool) {
	baseIdx, recIdx, ok := classifyClosure(prog, pred, def[0], def[1])
	if !ok {
		return demandDecision{}, false
	}
	d := demandDecision{pred: pred, baseIdx: baseIdx, recIdx: recIdx}
	d.fullEst = pl.Rules[baseIdx].EstRows + pl.Rules[recIdx].EstRows

	guard := demandPrefix + pred
	for ri := range prog.Rules {
		if ri == baseIdx || ri == recIdx {
			continue
		}
		r := prog.Rules[ri]
		for li, l := range r.Body {
			if l.Kind != vadalog.LitAtom || l.Atom.Pred != pred {
				continue
			}
			if len(l.Atom.Args) != 2 {
				return demandDecision{}, false
			}
			prefix := r.Body[:li]
			if !prefixSelfContained(prefix) {
				return demandDecision{}, false
			}
			bound := boundAfter(prefix)
			first := l.Atom.Args[0]
			if !termBound(first, bound) {
				// Consumed at an unbound position: the closure is enumerated,
				// not probed — demand would under-derive nothing but the
				// guard could not restrict anything either. Unsupported.
				return demandDecision{}, false
			}
			seed := vadalog.Rule{
				Head: []vadalog.Atom{{Pred: guard, Args: []vadalog.Term{first}}},
				Body: append([]vadalog.Literal(nil), prefix...),
				Line: r.Line,
			}
			d.seeds = append(d.seeds, seed)
			d.seedEst += prefixEst(pl.Rules[ri], li)
		}
	}
	if len(d.seeds) == 0 {
		return demandDecision{}, false
	}
	if d.seedEst > demandSeedFactor*d.fullEst {
		return demandDecision{}, false
	}
	return d, true
}

// classifyClosure matches the two defining rules of pred against the
// left-linear closure shape, returning which is the base and which the
// recursive rule.
func classifyClosure(prog *vadalog.Program, pred string, i, j int) (baseIdx, recIdx int, ok bool) {
	if isClosureBase(prog.Rules[i], pred) && isClosureRec(prog.Rules[j], pred) {
		return i, j, true
	}
	if isClosureBase(prog.Rules[j], pred) && isClosureRec(prog.Rules[i], pred) {
		return j, i, true
	}
	return 0, 0, false
}

func isClosureBase(r vadalog.Rule, pred string) bool {
	if len(r.Head) != 1 || len(r.Head[0].Args) != 2 || len(r.Body) == 0 {
		return false
	}
	h, okH := r.Head[0].Args[0].(vadalog.Var)
	q, okQ := r.Head[0].Args[1].(vadalog.Var)
	if !okH || !okQ || h.Name == q.Name {
		return false
	}
	for _, l := range r.Body {
		if l.Kind != vadalog.LitExpr && l.Atom.Pred == pred {
			return false
		}
	}
	return true
}

func isClosureRec(r vadalog.Rule, pred string) bool {
	if len(r.Head) != 1 || len(r.Head[0].Args) != 2 {
		return false
	}
	v, okV := r.Head[0].Args[0].(vadalog.Var)
	if !okV {
		return false
	}
	recAt := -1
	for i, l := range r.Body {
		if l.Kind == vadalog.LitNegAtom && l.Atom.Pred == pred {
			return false
		}
		if l.Kind == vadalog.LitAtom && l.Atom.Pred == pred {
			if recAt != -1 {
				return false // more than one recursive atom: not left-linear
			}
			recAt = i
		}
	}
	if recAt == -1 {
		return false
	}
	rec := r.Body[recAt].Atom
	if len(rec.Args) != 2 {
		return false
	}
	rv, ok := rec.Args[0].(vadalog.Var)
	if !ok || rv.Name != v.Name {
		return false
	}
	// V must thread straight from the recursive atom to the head: any other
	// use could observe the restricted relation differently.
	for i, l := range r.Body {
		if i == recAt {
			continue
		}
		for _, n := range l.VarNames() {
			if n == v.Name {
				return false
			}
		}
	}
	if q, ok := r.Head[0].Args[1].(vadalog.Var); ok && q.Name == v.Name {
		return false
	}
	return true
}

// prefixSelfContained reports whether a body prefix can stand alone as a
// seed-rule body: every condition and negated atom has its variables bound
// within the prefix (by an atom or an assignment before it), so dropping
// the consumer's suffix cannot change its meaning or its safety.
func prefixSelfContained(prefix []vadalog.Literal) bool {
	bound := map[string]bool{}
	for _, l := range prefix {
		switch l.Kind {
		case vadalog.LitAtom:
			for _, v := range l.Atom.Vars() {
				bound[v] = true
			}
		case vadalog.LitNegAtom:
			if !allBound(l.Atom.Vars(), bound) {
				return false
			}
		case vadalog.LitExpr:
			if tgt, ok := l.Expr.AssignTarget(); ok && !bound[tgt] {
				bound[tgt] = true
				rhs := l.Expr.VarNames()
				rest := rhs[:0]
				for _, v := range rhs {
					if v != tgt {
						rest = append(rest, v)
					}
				}
				if !allBound(rest, bound) {
					return false
				}
				continue
			}
			if !allBound(l.Expr.VarNames(), bound) {
				return false
			}
		}
	}
	return true
}

// boundAfter is the bound-variable set after evaluating a body prefix.
func boundAfter(prefix []vadalog.Literal) map[string]bool {
	bound := map[string]bool{}
	for _, l := range prefix {
		switch l.Kind {
		case vadalog.LitAtom:
			for _, v := range l.Atom.Vars() {
				bound[v] = true
			}
		case vadalog.LitExpr:
			if tgt, ok := l.Expr.AssignTarget(); ok {
				bound[tgt] = true
			}
		}
	}
	return bound
}

// prefixEst is the estimated binding count feeding the literal at body
// position li — the cumulative rows of the literal before it.
func prefixEst(rp RulePlan, li int) float64 {
	if li == 0 || len(rp.Literals) < li {
		return 1
	}
	return rp.Literals[li-1].EstRows
}
