package gsl

import "testing"

// FuzzParse exercises the GSL parser for panics and canonical-form
// stability: any design that parses must serialize to a fixpoint.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`schema t oid 1 { node A { id: string @id } }`,
		`schema t oid 2 { node A { id: string @id @unique @enum("a","b") } generalization G of A total disjoint { B } node B }`,
		`schema t oid 3 { node A { id: string @id } edge R (A 0..N -> 1..1 A) { w: float @range(0,1) } }`,
		`schema broken oid {`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		schema, err := Parse(src)
		if err != nil {
			return
		}
		text := Serialize(schema)
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("serialized form does not reparse: %v\n%s", err, text)
		}
		if Serialize(again) != text {
			t.Fatalf("serialization is not a fixpoint:\n%s\nvs\n%s", text, Serialize(again))
		}
	})
}
