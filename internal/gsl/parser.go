package gsl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/supermodel"
)

// Parse reads a super-schema from the textual GSL dialect produced by
// Serialize. The parsed schema is validated before being returned.
func Parse(src string) (*supermodel.Schema, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.parseSchema()
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse panics on errors; for embedded designs.
func MustParse(src string) *supermodel.Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type tok struct {
	kind string // ident, number, string, punct
	text string
	line int
}

func lex(src string) ([]tok, error) {
	var out []tok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			start := i
			for i < len(src) && (src[i] == '_' || src[i] >= 'a' && src[i] <= 'z' || src[i] >= 'A' && src[i] <= 'Z' || src[i] >= '0' && src[i] <= '9') {
				i++
			}
			out = append(out, tok{"ident", src[start:i], line})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			// Distinguish a plain number from the start of a cardinality
			// like "0..N": stop at "..".
			if i+1 < len(src) && src[i] == '.' && src[i+1] != '.' {
				i++
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			out = append(out, tok{"number", src[start:i], line})
		case c == '"':
			start := i
			i++
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("gsl: line %d: unterminated string", line)
			}
			i++
			out = append(out, tok{"string", src[start:i], line})
		default:
			switch {
			case strings.HasPrefix(src[i:], "->"):
				out = append(out, tok{"punct", "->", line})
				i += 2
			case strings.HasPrefix(src[i:], ".."):
				out = append(out, tok{"punct", "..", line})
				i += 2
			case strings.ContainsRune("{}():,@-", rune(c)):
				out = append(out, tok{"punct", string(c), line})
				i++
			default:
				return nil, fmt.Errorf("gsl: line %d: unexpected character %q", line, string(c))
			}
		}
	}
	out = append(out, tok{"eof", "", line})
	return out, nil
}

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok { return p.toks[p.pos] }
func (p *parser) next() tok {
	t := p.toks[p.pos]
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *parser) expectIdent(words ...string) (tok, error) {
	t := p.next()
	if t.kind != "ident" {
		return t, fmt.Errorf("gsl: line %d: expected identifier, got %q", t.line, t.text)
	}
	if len(words) > 0 {
		for _, w := range words {
			if t.text == w {
				return t, nil
			}
		}
		return t, fmt.Errorf("gsl: line %d: expected %v, got %q", t.line, words, t.text)
	}
	return t, nil
}

func (p *parser) expectPunct(text string) error {
	t := p.next()
	if t.kind != "punct" || t.text != text {
		return fmt.Errorf("gsl: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) atPunct(text string) bool {
	t := p.peek()
	return t.kind == "punct" && t.text == text
}

func (p *parser) atIdent(text string) bool {
	t := p.peek()
	return t.kind == "ident" && t.text == text
}

func (p *parser) parseSchema() (*supermodel.Schema, error) {
	if _, err := p.expectIdent("schema"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectIdent("oid"); err != nil {
		return nil, err
	}
	oidTok := p.next()
	if oidTok.kind != "number" {
		return nil, fmt.Errorf("gsl: line %d: expected schema oid number", oidTok.line)
	}
	oid, err := strconv.ParseInt(oidTok.text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("gsl: line %d: bad oid %q", oidTok.line, oidTok.text)
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	s := supermodel.NewSchema(name.text, oid)

	// Deferred additions: edges and generalizations may reference nodes
	// declared later in the file.
	type edgeDecl struct {
		name, from, to   string
		fromCard, toCard supermodel.Cardinality
		attrs            []*supermodel.Attribute
		intensional      bool
		line             int
	}
	type genDecl struct {
		name, parent    string
		children        []string
		total, disjoint bool
	}
	var edges []edgeDecl
	var gens []genDecl

	for !p.atPunct("}") {
		t := p.peek()
		if t.kind == "eof" {
			return nil, fmt.Errorf("gsl: unexpected end of input inside schema body")
		}
		intensional := false
		if p.atIdent("intensional") {
			p.next()
			intensional = true
		}
		kw, err := p.expectIdent("node", "edge", "generalization")
		if err != nil {
			return nil, err
		}
		switch kw.text {
		case "node":
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var attrs []*supermodel.Attribute
			if p.atPunct("{") {
				p.next()
				attrs, err = p.parseAttrs()
				if err != nil {
					return nil, err
				}
			}
			if _, err := s.AddNode(name.text, intensional, attrs...); err != nil {
				return nil, err
			}
		case "edge":
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			from, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fromCard, err := p.parseCardinality()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("->"); err != nil {
				return nil, err
			}
			toCard, err := p.parseCardinality()
			if err != nil {
				return nil, err
			}
			to, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			var attrs []*supermodel.Attribute
			if p.atPunct("{") {
				p.next()
				attrs, err = p.parseAttrs()
				if err != nil {
					return nil, err
				}
			}
			edges = append(edges, edgeDecl{
				name: name.text, from: from.text, to: to.text,
				fromCard: fromCard, toCard: toCard,
				attrs: attrs, intensional: intensional, line: name.line,
			})
		case "generalization":
			if intensional {
				return nil, fmt.Errorf("gsl: line %d: generalizations cannot be intensional", kw.line)
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectIdent("of"); err != nil {
				return nil, err
			}
			parent, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			g := genDecl{name: name.text, parent: parent.text}
			for p.atIdent("total") || p.atIdent("disjoint") {
				if p.next().text == "total" {
					g.total = true
				} else {
					g.disjoint = true
				}
			}
			if err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			for !p.atPunct("}") {
				c, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				g.children = append(g.children, c.text)
			}
			p.next() // consume }
			gens = append(gens, g)
		}
	}
	p.next() // consume final }

	for _, e := range edges {
		if _, err := s.AddEdge(e.name, e.intensional, e.from, e.to, e.fromCard, e.toCard, e.attrs...); err != nil {
			return nil, fmt.Errorf("gsl: line %d: %w", e.line, err)
		}
	}
	for _, g := range gens {
		if _, err := s.AddGeneralization(g.name, g.parent, g.children, g.total, g.disjoint); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) parseCardinality() (supermodel.Cardinality, error) {
	lo := p.next()
	if lo.kind != "number" {
		return supermodel.Cardinality{}, fmt.Errorf("gsl: line %d: expected cardinality minimum, got %q", lo.line, lo.text)
	}
	if err := p.expectPunct(".."); err != nil {
		return supermodel.Cardinality{}, err
	}
	hi := p.next()
	return supermodel.ParseCardinality(lo.text + ".." + hi.text)
}

func (p *parser) parseAttrs() ([]*supermodel.Attribute, error) {
	var out []*supermodel.Attribute
	for !p.atPunct("}") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		typ, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		a := supermodel.Attr(name.text, supermodel.DataType(typ.text))
		for p.atPunct("@") {
			p.next()
			marker, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			switch marker.text {
			case "id":
				a.ID()
			case "opt":
				a.Opt()
			case "intensional":
				a.Intensional()
			case "unique":
				a.With(supermodel.UniqueModifier{})
			case "enum":
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				var vals []string
				for !p.atPunct(")") {
					v := p.next()
					if v.kind != "string" {
						return nil, fmt.Errorf("gsl: line %d: enum values must be strings", v.line)
					}
					uq, err := strconv.Unquote(v.text)
					if err != nil {
						return nil, fmt.Errorf("gsl: line %d: bad string %s", v.line, v.text)
					}
					vals = append(vals, uq)
					if p.atPunct(",") {
						p.next()
					}
				}
				p.next()
				a.With(supermodel.EnumModifier{Values: vals})
			case "range":
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				lo, err := p.parseSignedNumber()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
				hi, err := p.parseSignedNumber()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				a.With(supermodel.RangeModifier{Min: lo, Max: hi})
			case "default":
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				v := p.next()
				text := v.text
				if v.kind == "string" {
					uq, err := strconv.Unquote(v.text)
					if err != nil {
						return nil, fmt.Errorf("gsl: line %d: bad string %s", v.line, v.text)
					}
					text = uq
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				a.With(supermodel.DefaultModifier{Value: text})
			default:
				return nil, fmt.Errorf("gsl: line %d: unknown attribute marker @%s", marker.line, marker.text)
			}
		}
		out = append(out, a)
	}
	p.next() // consume }
	return out, nil
}

func (p *parser) parseSignedNumber() (float64, error) {
	neg := false
	if p.atPunct("-") {
		p.next()
		neg = true
	}
	t := p.next()
	if t.kind != "number" {
		return 0, fmt.Errorf("gsl: line %d: expected number, got %q", t.line, t.text)
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("gsl: line %d: bad number %q", t.line, t.text)
	}
	if neg {
		f = -f
	}
	return f, nil
}
