package gsl

import (
	"strings"
	"testing"

	"repro/internal/supermodel"
)

// TestRenderingFunctionBijective verifies that Γ_SM is a bijection, as the
// paper requires of rendering functions (Section 3.1): distinct construct
// variants map to distinct graphemes.
func TestRenderingFunctionBijective(t *testing.T) {
	table := GraphemeTable()
	seen := map[string]ConstructKey{}
	for key, gph := range table {
		if prev, dup := seen[gph.Name]; dup {
			t.Errorf("grapheme %q used by both %v and %v", gph.Name, prev, key)
		}
		seen[gph.Name] = key
		if gph.DOT == "" || gph.Text == "" {
			t.Errorf("grapheme %q has empty realization", gph.Name)
		}
	}
}

func TestGeneralizationGraphemeVariants(t *testing.T) {
	variants := map[string]*supermodel.Generalization{
		"gen-td": {IsTotal: true, IsDisjoint: true},
		"gen-pd": {IsTotal: false, IsDisjoint: true},
		"gen-to": {IsTotal: true, IsDisjoint: false},
		"gen-po": {IsTotal: false, IsDisjoint: false},
	}
	for want, g := range variants {
		if got := GenGrapheme(g).Name; got != want {
			t.Errorf("GenGrapheme(%+v) = %s, want %s", g, got, want)
		}
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	s := supermodel.CompanyKG()
	text := Serialize(s)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("parse serialized GSL: %v\n%s", err, text)
	}
	if back.Name != s.Name || back.OID != s.OID {
		t.Errorf("schema identity changed: %s/%d", back.Name, back.OID)
	}
	if len(back.Nodes) != len(s.Nodes) || len(back.Edges) != len(s.Edges) || len(back.Generalizations) != len(s.Generalizations) {
		t.Fatalf("round trip size mismatch: %s vs %s", back.Stats(), s.Stats())
	}
	// Second round trip must be a fixpoint.
	text2 := Serialize(back)
	if text2 != text {
		t.Errorf("serialization is not canonical:\n%s\nvs\n%s", text, text2)
	}
	// Spot-check details survived.
	holds := back.Edge("HOLDS")
	if holds == nil || holds.FromCard != supermodel.ZeroToMany || holds.ToCard != supermodel.OneToMany {
		t.Errorf("HOLDS cardinalities lost: %+v", holds)
	}
	right := holds.Attribute("right")
	if right == nil || len(right.Modifiers) != 1 {
		t.Errorf("HOLDS.right enum modifier lost: %+v", right)
	}
	if a := back.Node("Business").Attribute("numberOfStakeholders"); a == nil || !a.IsIntensional || !a.IsOpt {
		t.Errorf("intensional attribute flags lost: %+v", a)
	}
}

func TestParseForwardReferences(t *testing.T) {
	// Edges may reference nodes declared later.
	src := `schema t oid 7 {
		edge R (A 0..N -> 0..N B)
		node A { id: string @id }
		node B { id: string @id }
	}`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s.Edge("R") == nil {
		t.Error("edge R missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`schema t oid 1 { node A { x: bogustype } }`,
		`schema t oid 1 { edge R (A 0..N -> 0..N B) }`,                                   // dangling nodes
		`schema t oid 1 { node A { id: string @id } node A }`,                            // dup
		`schema t oid 1 { node A { id: string @id @unknownmarker } }`,                    // bad marker
		`schema t oid 1 { node A { id: string @id } generalization G of A total { A } }`, // self child
		`schema t oid x { }`, // bad oid
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse should fail: %s", src)
		}
	}
}

// TestFigure4Rendering renders the Company KG of Figure 4 and checks the
// grapheme realizations: intensional constructs dashed, extensional solid,
// generalizations with variant-specific arrows.
func TestFigure4Rendering(t *testing.T) {
	s := supermodel.CompanyKG()
	dot := RenderDOT(s)
	if !strings.Contains(dot, `"CONTROLS"`) && !strings.Contains(dot, "CONTROLS") {
		t.Errorf("DOT output missing CONTROLS edge")
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Errorf("intensional constructs must render dashed")
	}
	if !strings.Contains(dot, "arrowhead=normal style=bold") {
		t.Errorf("total disjoint generalizations must render as bold solid arrows")
	}
	if !strings.Contains(dot, `taillabel="0..N"`) {
		t.Errorf("cardinalities must be rendered")
	}

	text := RenderText(s)
	if !strings.Contains(text, "[N~] Family") {
		t.Errorf("intensional node grapheme missing in text rendering:\n%s", text)
	}
	if !strings.Contains(text, "-o* fiscalCode: string") {
		t.Errorf("identifying attribute grapheme missing:\n%s", text)
	}
	if !strings.Contains(text, "~~> CONTROLS") {
		t.Errorf("intensional edge grapheme missing:\n%s", text)
	}
}

func TestParseEmptyIntensionalNode(t *testing.T) {
	src := `schema t oid 3 {
		node A { id: string @id }
		intensional node V
		intensional edge E (A 0..N -> 0..N V)
	}`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if n := s.Node("V"); n == nil || !n.IsIntensional {
		t.Error("intensional node V missing")
	}
}

func TestParseComments(t *testing.T) {
	src := `# full-line comment
schema t oid 4 { // trailing comment
	node A { id: string @id } # another
}`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("comments must be skipped: %v", err)
	}
	if s.Node("A") == nil {
		t.Error("node lost")
	}
}

func TestRenderTextAllAttrVariants(t *testing.T) {
	s := supermodel.NewSchema("v", 8)
	s.MustAddNode("A", false,
		supermodel.Attr("id", supermodel.String).ID(),
		supermodel.Attr("opt", supermodel.Int).Opt(),
		supermodel.Attr("plain", supermodel.Bool),
		supermodel.Attr("derived", supermodel.Float).Opt().Intensional().With(supermodel.DefaultModifier{Value: "0"}),
	)
	text := RenderText(s)
	for _, want := range []string{"-o* id", "-o? opt", "-o plain", "derived: float ~", "{default(0)}"} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}
}
