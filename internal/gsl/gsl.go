// Package gsl implements the Graph Schema Language, KGModel's conceptual
// design language for super-schemas (Section 3).
//
// The paper's GSL is visual: the rendering function Γ_SM maps every
// super-construct instance to a grapheme (Figure 3). This package provides
//
//   - a textual GSL dialect with a parser and serializer, playing the role
//     of the KGSE design environment's storage format;
//   - Γ_SM as an explicit, testable table (Grapheme / GraphemeTable);
//   - renderers that realize the graphemes: Graphviz DOT (solid vs dashed
//     for extensional vs intensional, arrowhead styles for the four
//     generalization variants, lollipop-style attribute markers) and a
//     plain-text rendering for terminals.
//
// The textual dialect:
//
//	schema CompanyKG oid 123 {
//	  node Person {
//	    fiscalCode: string @id @unique
//	  }
//	  intensional node Family {
//	    familyName: string
//	  }
//	  generalization PersonKind of Person total disjoint {
//	    PhysicalPerson
//	    LegalPerson
//	  }
//	  edge HOLDS (Person 0..N -> 1..N Share) {
//	    right: string @enum("ownership","bare ownership","usufruct")
//	    percentage: float @range(0,1)
//	  }
//	  intensional edge CONTROLS (Person 0..N -> 0..N Business)
//	}
package gsl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/supermodel"
)

// ConstructKey identifies a row of the Γ_SM table: a super-construct
// together with the attribute values that select its grapheme (Figure 3
// distinguishes, e.g., intensional from extensional SM_Nodes).
type ConstructKey struct {
	Construct string
	Variant   string
}

// Grapheme is an elementary graphic item of the visual alphabet V.
type Grapheme struct {
	Name string // stable identifier of the grapheme
	DOT  string // Graphviz attributes realizing it
	Text string // plain-text marker realizing it
}

// GraphemeTable is the tabular representation of the rendering function
// Γ_SM of Figure 3. It is a bijection: distinct construct variants map to
// distinct graphemes (verified by tests).
func GraphemeTable() map[ConstructKey]Grapheme {
	return map[ConstructKey]Grapheme{
		{"SM_Node", "extensional"}: {"solid-box", `shape=box style=solid`, "[N]"},
		{"SM_Node", "intensional"}: {"dashed-box", `shape=box style=dashed`, "[N~]"},
		{"SM_Edge", "extensional"}: {"solid-arrow", `style=solid arrowhead=vee`, "-->"},
		{"SM_Edge", "intensional"}: {"dashed-arrow", `style=dashed arrowhead=vee`, "~~>"},
		{"SM_Type", ""}:            {"name-label", `fontname="Helvetica-Bold"`, "name"},

		{"SM_Attribute", "plain"}:    {"lollipop", `circle-filled-small`, "-o"},
		{"SM_Attribute", "optional"}: {"lollipop-open", `circle-open-small`, "-o?"},
		{"SM_Attribute", "id"}:       {"lollipop-key", `circle-filled-key`, "-o*"},

		{"SM_HAS_NODE_PROPERTY", "extensional"}: {"prop-line", `style=solid`, ":"},
		{"SM_HAS_NODE_PROPERTY", "intensional"}: {"prop-line-dashed", `style=dashed`, ":~"},

		{"SM_Generalization", "total-disjoint"}:      {"gen-td", `arrowhead=normal style=bold`, "<=!"},
		{"SM_Generalization", "partial-disjoint"}:    {"gen-pd", `arrowhead=normal style=solid`, "<-!"},
		{"SM_Generalization", "total-overlapping"}:   {"gen-to", `arrowhead=empty style=bold`, "<=+"},
		{"SM_Generalization", "partial-overlapping"}: {"gen-po", `arrowhead=empty style=solid`, "<-+"},
	}
}

// NodeGrapheme returns the grapheme of a node construct.
func NodeGrapheme(n *supermodel.Node) Grapheme {
	variant := "extensional"
	if n.IsIntensional {
		variant = "intensional"
	}
	return GraphemeTable()[ConstructKey{"SM_Node", variant}]
}

// EdgeGrapheme returns the grapheme of an edge construct.
func EdgeGrapheme(e *supermodel.Edge) Grapheme {
	variant := "extensional"
	if e.IsIntensional {
		variant = "intensional"
	}
	return GraphemeTable()[ConstructKey{"SM_Edge", variant}]
}

// AttrGrapheme returns the grapheme of an attribute construct.
func AttrGrapheme(a *supermodel.Attribute) Grapheme {
	switch {
	case a.IsID:
		return GraphemeTable()[ConstructKey{"SM_Attribute", "id"}]
	case a.IsOpt:
		return GraphemeTable()[ConstructKey{"SM_Attribute", "optional"}]
	default:
		return GraphemeTable()[ConstructKey{"SM_Attribute", "plain"}]
	}
}

// GenGrapheme returns the grapheme of a generalization construct.
func GenGrapheme(g *supermodel.Generalization) Grapheme {
	switch {
	case g.IsTotal && g.IsDisjoint:
		return GraphemeTable()[ConstructKey{"SM_Generalization", "total-disjoint"}]
	case !g.IsTotal && g.IsDisjoint:
		return GraphemeTable()[ConstructKey{"SM_Generalization", "partial-disjoint"}]
	case g.IsTotal && !g.IsDisjoint:
		return GraphemeTable()[ConstructKey{"SM_Generalization", "total-overlapping"}]
	default:
		return GraphemeTable()[ConstructKey{"SM_Generalization", "partial-overlapping"}]
	}
}

// RenderDOT renders the GSL diagram of a super-schema as Graphviz DOT,
// applying Γ_SM.
func RenderDOT(s *supermodel.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", s.Name)
	b.WriteString("  rankdir=TB;\n  node [fontsize=10 fontname=\"Helvetica\"];\n  edge [fontsize=9 fontname=\"Helvetica\"];\n")
	for _, n := range s.Nodes {
		gph := NodeGrapheme(n)
		var rows []string
		rows = append(rows, n.Name)
		for _, a := range n.Attributes {
			rows = append(rows, attrRow(a))
		}
		fmt.Fprintf(&b, "  %q [%s label=\"%s\"];\n", n.Name, gph.DOT, strings.Join(rows, "\\n"))
	}
	for _, e := range s.Edges {
		gph := EdgeGrapheme(e)
		label := e.Name
		for _, a := range e.Attributes {
			label += "\\n" + attrRow(a)
		}
		fmt.Fprintf(&b, "  %q -> %q [%s label=\"%s\" taillabel=%q headlabel=%q];\n",
			e.From, e.To, gph.DOT, label, e.FromCard.String(), e.ToCard.String())
	}
	for _, g := range s.Generalizations {
		gph := GenGrapheme(g)
		for _, c := range g.Children {
			fmt.Fprintf(&b, "  %q -> %q [%s label=%q];\n", c, g.Parent, gph.DOT, g.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func attrRow(a *supermodel.Attribute) string {
	row := AttrGrapheme(a).Text + " " + a.Name + ": " + string(a.Type)
	if a.IsIntensional {
		row += " ~"
	}
	for _, m := range a.Modifiers {
		row += " {" + m.Describe() + "}"
	}
	return row
}

// RenderText renders a plain-text GSL diagram summary for terminals.
func RenderText(s *supermodel.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s (oid %d): %s\n", s.Name, s.OID, s.Stats())
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "%s %s\n", NodeGrapheme(n).Text, n.Name)
		for _, a := range n.Attributes {
			fmt.Fprintf(&b, "    %s\n", attrRow(a))
		}
	}
	for _, g := range s.Generalizations {
		children := append([]string(nil), g.Children...)
		sort.Strings(children)
		fmt.Fprintf(&b, "%s %s: %s of %s\n", GenGrapheme(g).Text, g.Name, strings.Join(children, ", "), g.Parent)
	}
	for _, e := range s.Edges {
		fmt.Fprintf(&b, "%s %s: %s [%s] %s [%s]\n",
			EdgeGrapheme(e).Text, e.Name, e.From, e.FromCard, e.To, e.ToCard)
		for _, a := range e.Attributes {
			fmt.Fprintf(&b, "    %s\n", attrRow(a))
		}
	}
	return b.String()
}

// Serialize renders the super-schema in the textual GSL dialect; Parse
// reads it back.
func Serialize(s *supermodel.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s oid %d {\n", s.Name, s.OID)
	for _, n := range s.Nodes {
		kw := "node"
		if n.IsIntensional {
			kw = "intensional node"
		}
		if len(n.Attributes) == 0 {
			fmt.Fprintf(&b, "  %s %s\n", kw, n.Name)
			continue
		}
		fmt.Fprintf(&b, "  %s %s {\n", kw, n.Name)
		for _, a := range n.Attributes {
			fmt.Fprintf(&b, "    %s\n", serializeAttr(a))
		}
		b.WriteString("  }\n")
	}
	for _, g := range s.Generalizations {
		flags := ""
		if g.IsTotal {
			flags += " total"
		}
		if g.IsDisjoint {
			flags += " disjoint"
		}
		fmt.Fprintf(&b, "  generalization %s of %s%s {\n", g.Name, g.Parent, flags)
		for _, c := range g.Children {
			fmt.Fprintf(&b, "    %s\n", c)
		}
		b.WriteString("  }\n")
	}
	for _, e := range s.Edges {
		kw := "edge"
		if e.IsIntensional {
			kw = "intensional edge"
		}
		head := fmt.Sprintf("  %s %s (%s %s -> %s %s)", kw, e.Name, e.From, e.FromCard, e.ToCard, e.To)
		if len(e.Attributes) == 0 {
			b.WriteString(head + "\n")
			continue
		}
		b.WriteString(head + " {\n")
		for _, a := range e.Attributes {
			fmt.Fprintf(&b, "    %s\n", serializeAttr(a))
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func serializeAttr(a *supermodel.Attribute) string {
	s := a.Name + ": " + string(a.Type)
	if a.IsID {
		s += " @id"
	}
	if a.IsOpt {
		s += " @opt"
	}
	if a.IsIntensional {
		s += " @intensional"
	}
	for _, m := range a.Modifiers {
		switch m := m.(type) {
		case supermodel.UniqueModifier:
			s += " @unique"
		case supermodel.EnumModifier:
			quoted := make([]string, len(m.Values))
			for i, v := range m.Values {
				quoted[i] = fmt.Sprintf("%q", v)
			}
			s += " @enum(" + strings.Join(quoted, ",") + ")"
		case supermodel.RangeModifier:
			s += fmt.Sprintf(" @range(%g,%g)", m.Min, m.Max)
		case supermodel.DefaultModifier:
			s += fmt.Sprintf(" @default(%q)", m.Value)
		}
	}
	return s
}
