package metalog

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/overlay"
	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// factsDBEqual asserts that both databases hold the same non-empty relations
// with the same facts at the same positions. Position identity is the point:
// engine derivation order (and therefore query row order) follows relation
// insertion order, so the incremental path must reproduce ExtractFacts'
// ordering exactly, not just its fact set.
func factsDBEqual(t *testing.T, tag string, got, want *vadalog.Database) {
	t.Helper()
	preds := map[string]bool{}
	for _, p := range got.Predicates() {
		if got.Count(p) > 0 {
			preds[p] = true
		}
	}
	for _, p := range want.Predicates() {
		if want.Count(p) > 0 {
			preds[p] = true
		}
	}
	for p := range preds {
		gf, wf := got.Facts(p), want.Facts(p)
		if len(gf) != len(wf) {
			t.Fatalf("%s: relation %s: %d facts vs %d", tag, p, len(gf), len(wf))
		}
		for i := range gf {
			if !reflect.DeepEqual(gf[i], wf[i]) {
				t.Fatalf("%s: relation %s position %d: %v vs %v", tag, p, i, gf[i], wf[i])
			}
		}
	}
}

func deltaBase(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.New()
	mustNode := func(labels []string, props pg.Props) *pg.Node { return g.AddNode(labels, props) }
	a := mustNode([]string{"Company"}, pg.Props{"name": value.Str("acme"), "share": value.IntV(10)})
	b := mustNode([]string{"Company", "Bank"}, pg.Props{"name": value.Str("bcorp")})
	c := mustNode([]string{"Person"}, pg.Props{"name": value.Str("carla"), "share": value.FloatV(0.5)})
	if _, err := g.AddEdge(a.ID, b.ID, "owns", pg.Props{"share": value.FloatV(0.2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(c.ID, a.ID, "owns", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(c.ID, b.ID, "controls", nil); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestApplyFactsDeltaOrderPin pins the core contract on a hand-built batch:
// the maintained database is position-for-position identical to a fresh
// ExtractFacts over the mutated view.
func TestApplyFactsDeltaOrderPin(t *testing.T) {
	g := deltaBase(t)
	frozen := g.Freeze()
	cat := FromGraph(frozen)
	db, err := ExtractFacts(frozen, cat)
	if err != nil {
		t.Fatal(err)
	}

	ov := overlay.New(frozen)
	diff, err := ov.Apply([]overlay.Op{
		{Kind: overlay.OpAddNode, Name: "n", Labels: []string{"Company"}, Props: pg.Props{"name": value.Str("newco")}},
		{Kind: overlay.OpAddEdge, From: overlay.Ref{Name: "n"}, To: overlay.Ref{ID: 1}, Label: "owns"},
		{Kind: overlay.OpRemoveNode, Node: overlay.Ref{ID: 3}}, // cascades both of carla's edges
		{Kind: overlay.OpSetNodeProp, Node: overlay.Ref{ID: 1}, Key: "share", Value: value.IntV(99)},
		// Person's layout is [name, share], which covers node 1's props.
		{Kind: overlay.OpAddLabel, Node: overlay.Ref{ID: 1}, Label: "Person"},
	})
	if err != nil {
		t.Fatal(err)
	}

	got, ok := ApplyFactsDelta(db, cat, diff)
	if !ok {
		t.Fatal("expected incremental path (batch stays inside the catalog)")
	}
	want, err := ExtractFacts(ov, cat)
	if err != nil {
		t.Fatal(err)
	}
	factsDBEqual(t, "batch", got, want)

	// The input database is untouched.
	orig, err := ExtractFacts(frozen, cat)
	if err != nil {
		t.Fatal(err)
	}
	factsDBEqual(t, "input-preserved", db, orig)

	// An empty diff returns the database unchanged (same pointer is fine).
	same, ok := ApplyFactsDelta(db, cat, overlay.Diff{})
	if !ok || same != db {
		t.Fatal("empty diff must be the identity")
	}
}

// TestApplyFactsDeltaFallback pins when the incremental path must refuse:
// any construct needing columns the catalog lacks.
func TestApplyFactsDeltaFallback(t *testing.T) {
	g := deltaBase(t)
	frozen := g.Freeze()
	cat := FromGraph(frozen)
	db, err := ExtractFacts(frozen, cat)
	if err != nil {
		t.Fatal(err)
	}

	cases := [][]overlay.Op{
		// A node label the catalog has never seen.
		{{Kind: overlay.OpAddNode, Labels: []string{"Exotic"}}},
		// A known label with a property outside its layout.
		{{Kind: overlay.OpAddNode, Labels: []string{"Person"}, Props: pg.Props{"salary": value.IntV(1)}}},
		// A property set gaining a new key on an existing node.
		{{Kind: overlay.OpSetNodeProp, Node: overlay.Ref{ID: 1}, Key: "founded", Value: value.IntV(1900)}},
		// A label gain to a label unknown to the catalog.
		{{Kind: overlay.OpAddLabel, Node: overlay.Ref{ID: 1}, Label: "Exotic"}},
		// A gain of a known label whose layout lacks the node's properties:
		// Bank's layout is [name], but node 3 also carries share.
		{{Kind: overlay.OpAddLabel, Node: overlay.Ref{ID: 3}, Label: "Bank"}},
		// An edge label the catalog has never seen.
		{{Kind: overlay.OpAddEdge, From: overlay.Ref{ID: 1}, To: overlay.Ref{ID: 2}, Label: "audits"}},
		// A known edge label with an out-of-layout property.
		{{Kind: overlay.OpAddEdge, From: overlay.Ref{ID: 1}, To: overlay.Ref{ID: 2}, Label: "owns",
			Props: pg.Props{"since": value.IntV(2001)}}},
	}
	for i, ops := range cases {
		ov := overlay.New(frozen)
		diff, err := ov.Apply(ops)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if _, ok := ApplyFactsDelta(db, cat, diff); ok {
			t.Errorf("case %d: expected ok=false (catalog cannot cover the batch)", i)
		}
		// The fallback the caller performs — re-infer and re-extract — must
		// accept the view.
		fullCat := FromGraph(ov)
		if _, err := ExtractFacts(ov, fullCat); err != nil {
			t.Fatalf("case %d: fallback extract: %v", i, err)
		}
	}
}

// TestApplyFactsDeltaSweep drives random mutation lineages, re-checking after
// every batch that incremental maintenance matches a full re-extraction —
// including the catalog-growth fallback a serving lineage would take.
func TestApplyFactsDeltaSweep(t *testing.T) {
	nodeLabels := []string{"Company", "Person"}
	edgeLabels := []string{"owns", "controls"}
	propKeys := []string{"name", "share"}
	for seed := int64(0); seed < 10; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := pg.New()
			var oids []pg.OID
			for i := 0; i < 8; i++ {
				n := g.AddNode(
					[]string{nodeLabels[rng.Intn(len(nodeLabels))]},
					pg.Props{propKeys[rng.Intn(len(propKeys))]: value.IntV(int64(rng.Intn(50)))})
				oids = append(oids, n.ID)
			}
			// Seed every label and key so the initial catalog is total.
			g.AddNode(nodeLabels, pg.Props{"name": value.Str("x"), "share": value.IntV(1)})
			for i := 0; i < 10; i++ {
				from := oids[rng.Intn(len(oids))]
				to := oids[rng.Intn(len(oids))]
				if _, err := g.AddEdge(from, to, edgeLabels[rng.Intn(len(edgeLabels))],
					pg.Props{"share": value.IntV(int64(rng.Intn(9)))}); err != nil {
					t.Fatal(err)
				}
			}
			for _, l := range edgeLabels {
				g.AddNode(nil, nil) // unlabeled nodes are invisible to extraction
				if _, err := g.AddEdge(oids[0], oids[1], l, pg.Props{"name": value.Str("k"), "share": value.IntV(0)}); err != nil {
					t.Fatal(err)
				}
			}

			frozen := g.Freeze()
			cat := FromGraph(frozen)
			db, err := ExtractFacts(frozen, cat)
			if err != nil {
				t.Fatal(err)
			}
			ov := overlay.New(frozen)

			for batch := 0; batch < 5; batch++ {
				ops := randDeltaOps(rng, ov, nodeLabels, edgeLabels, propKeys)
				diff, err := ov.Apply(ops)
				if err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				next, ok := ApplyFactsDelta(db, cat, diff)
				if !ok {
					// The lineage fallback: re-infer the catalog, full extract.
					cat = FromGraph(ov)
					if next, err = ExtractFacts(ov, cat); err != nil {
						t.Fatalf("batch %d fallback: %v", batch, err)
					}
				}
				want, err := ExtractFacts(ov, cat)
				if err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				factsDBEqual(t, fmt.Sprintf("batch %d", batch), next, want)
				db = next
			}
		})
	}
}

// randDeltaOps emits a valid mutation batch against the overlay's current
// state, occasionally stepping outside the catalog (new property key) to
// exercise the fallback path.
func randDeltaOps(rng *rand.Rand, ov *overlay.Overlay, nodeLabels, edgeLabels, propKeys []string) []overlay.Op {
	var liveNodes []pg.OID
	for _, n := range ov.Nodes() {
		liveNodes = append(liveNodes, n.ID)
	}
	var liveEdges []pg.OID
	for _, e := range ov.Edges() {
		liveEdges = append(liveEdges, e.ID)
	}
	removed := map[pg.OID]bool{}
	pick := func(ids []pg.OID) (pg.OID, bool) {
		alive := ids[:0:0]
		for _, id := range ids {
			if !removed[id] {
				alive = append(alive, id)
			}
		}
		if len(alive) == 0 {
			return 0, false
		}
		return alive[rng.Intn(len(alive))], true
	}
	var ops []overlay.Op
	handles := 0
	for k := 0; k < 4+rng.Intn(5); k++ {
		switch rng.Intn(6) {
		case 0:
			handles++
			ops = append(ops, overlay.Op{Kind: overlay.OpAddNode,
				Name:   fmt.Sprintf("h%d", handles),
				Labels: []string{nodeLabels[rng.Intn(len(nodeLabels))]},
				Props:  pg.Props{propKeys[rng.Intn(len(propKeys))]: value.IntV(int64(rng.Intn(50)))}})
		case 1:
			from, ok1 := pick(liveNodes)
			to, ok2 := pick(liveNodes)
			if ok1 && ok2 {
				ops = append(ops, overlay.Op{Kind: overlay.OpAddEdge,
					From: overlay.Ref{ID: from}, To: overlay.Ref{ID: to},
					Label: edgeLabels[rng.Intn(len(edgeLabels))]})
			}
		case 2:
			if id, ok := pick(liveNodes); ok {
				removed[id] = true
				for _, e := range ov.Out(id) {
					removed[e.ID] = true
				}
				for _, e := range ov.In(id) {
					removed[e.ID] = true
				}
				ops = append(ops, overlay.Op{Kind: overlay.OpRemoveNode, Node: overlay.Ref{ID: id}})
			}
		case 3:
			if id, ok := pick(liveEdges); ok {
				removed[id] = true
				ops = append(ops, overlay.Op{Kind: overlay.OpRemoveEdge, Edge: id})
			}
		case 4:
			if id, ok := pick(liveNodes); ok {
				key := propKeys[rng.Intn(len(propKeys))]
				if rng.Intn(10) == 0 {
					key = fmt.Sprintf("extra%d", rng.Intn(2)) // outside the catalog
				}
				ops = append(ops, overlay.Op{Kind: overlay.OpSetNodeProp,
					Node: overlay.Ref{ID: id}, Key: key, Value: value.IntV(int64(rng.Intn(50)))})
			}
		case 5:
			if id, ok := pick(liveNodes); ok {
				ops = append(ops, overlay.Op{Kind: overlay.OpAddLabel,
					Node: overlay.Ref{ID: id}, Label: nodeLabels[rng.Intn(len(nodeLabels))]})
			}
		}
	}
	return ops
}
