package metalog

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// Pattern-matching queries: the paper grounds MetaLog in the UC2RPQ
// tradition of navigational query languages (XPath, SPARQL, Cypher —
// Section 1 desiderata). Query exposes that capability directly: a MetaLog
// rule body — chains with regular path patterns, conditions, expressions —
// evaluated against a property graph, returning one row per match.
//
//	rows, err := metalog.Query(g, `
//	    (x: Business; businessName: n) [: CONTROLS] (y: Business),
//	    x != y
//	`, vadalog.Options{})
//
// Every named variable of the pattern becomes a column. Variables bound to
// node or edge identifiers hold the pg.OID as an integer value.

// QueryRow is one match of a query pattern: variable name → value.
type QueryRow map[string]value.Value

// OID reads a variable bound to a node or edge identifier.
func (r QueryRow) OID(name string) (pg.OID, bool) {
	v, ok := r[name]
	if !ok {
		return 0, false
	}
	i, ok := v.AsInt()
	return pg.OID(i), ok
}

const queryResultLabel = "__QueryResult"

// Query evaluates a MetaLog body pattern against the graph and returns the
// matches in deterministic order. The catalog is inferred from the graph.
func Query(g pg.View, pattern string, opts vadalog.Options) ([]QueryRow, error) {
	return QueryCtx(context.Background(), g, pattern, opts)
}

// QueryCtx is Query under a context: the evaluation stops cooperatively once
// ctx is canceled or its deadline expires (see vadalog.RunCtx).
func QueryCtx(ctx context.Context, g pg.View, pattern string, opts vadalog.Options) ([]QueryRow, error) {
	return QueryWithCatalogCtx(ctx, g, FromGraph(g), pattern, opts)
}

// QueryWithCatalog is Query with a caller-provided catalog (schema-derived
// layouts). The catalog is extended with the query-result layout and must be
// private to the call.
func QueryWithCatalog(g pg.View, cat *Catalog, pattern string, opts vadalog.Options) ([]QueryRow, error) {
	return QueryWithCatalogCtx(context.Background(), g, cat, pattern, opts)
}

// QueryWithCatalogCtx is QueryWithCatalog under a context.
func QueryWithCatalogCtx(ctx context.Context, g pg.View, cat *Catalog, pattern string, opts vadalog.Options) ([]QueryRow, error) {
	// Translate before extracting: a pattern may mention labels or
	// properties absent from the catalog, which Translate adds to the
	// layouts — extraction then emits the corresponding null columns and
	// the query binds them to Missing instead of failing on arity.
	tr, vars, err := buildQueryProgram(pattern, cat)
	if err != nil {
		return nil, err
	}
	db, err := ExtractFacts(g, cat)
	if err != nil {
		return nil, err
	}
	// The fact database was extracted for this call alone; hand it over so
	// the engine skips its defensive clone.
	opts.OwnInput = true
	return runQueryProgram(ctx, tr.Program, vars, db, cat, opts)
}

// ErrStaleDatabase reports that a query needs catalog layouts beyond the
// ones its pre-extracted database was built with — the pattern mentions a
// label or property the extraction never emitted columns for. Re-extract
// against the extended catalog (or fall back to QueryWithCatalogCtx, which
// does) to serve such a query.
var ErrStaleDatabase = errors.New("metalog: query needs layouts absent from the pre-extracted database")

// QueryDBCtx evaluates a pattern against a pre-extracted fact database (see
// ExtractFacts). Unless opts.OwnInput is set the database is cloned by the
// engine and survives the call untouched, so one extraction can be shared
// across many concurrent queries — the serving layer's hot path. The catalog
// is extended with the query-result layout and must be private to the call
// (Catalog.Clone a shared one). A pattern that mentions labels or properties
// outside the catalog the database was extracted with fails with
// ErrStaleDatabase rather than evaluating against misaligned relations.
func QueryDBCtx(ctx context.Context, db *vadalog.Database, cat *Catalog, pattern string, opts vadalog.Options) ([]QueryRow, error) {
	nodeW := make(map[string]int, len(cat.NodeProps))
	for l, ps := range cat.NodeProps {
		nodeW[l] = len(ps)
	}
	edgeW := make(map[string]int, len(cat.EdgeProps))
	for l, ps := range cat.EdgeProps {
		edgeW[l] = len(ps)
	}
	tr, vars, err := buildQueryProgram(pattern, cat)
	if err != nil {
		return nil, err
	}
	for l, ps := range cat.NodeProps {
		if l == queryResultLabel {
			continue
		}
		if w, ok := nodeW[l]; !ok || len(ps) != w {
			return nil, fmt.Errorf("node label %s: %w", l, ErrStaleDatabase)
		}
	}
	for l, ps := range cat.EdgeProps {
		if w, ok := edgeW[l]; !ok || len(ps) != w {
			return nil, fmt.Errorf("edge label %s: %w", l, ErrStaleDatabase)
		}
	}
	return runQueryProgram(ctx, tr.Program, vars, db, cat, opts)
}

// buildQueryProgram parses a body pattern, wraps it into a __QueryResult
// rule, and translates it against cat (extending cat with any layouts the
// pattern introduces plus the query-result layout). It returns the compiled
// program and the sorted pattern variables.
func buildQueryProgram(pattern string, cat *Catalog) (*Translation, []string, error) {
	body, err := ParseBody(pattern)
	if err != nil {
		return nil, nil, err
	}
	vars := patternVariables(body)
	if len(vars) == 0 {
		return nil, nil, fmt.Errorf("metalog: query pattern has no named variables")
	}

	// Wrap the body into a rule deriving one __QueryResult node per distinct
	// binding: the result's linker Skolem over all variables makes rows
	// set-semantic, and the variables ride along as properties.
	head := Chain{Nodes: []NodeAtom{{
		ID:    Ident{Functor: "q", SkArgs: vars},
		Label: queryResultLabel,
	}}}
	for _, v := range vars {
		head.Nodes[0].Props = append(head.Nodes[0].Props, PropBinding{Name: v, Var: v})
	}
	prog := &Program{Rules: []Rule{{Body: body, Head: []Chain{head}, Line: 1}}}

	tr, err := Translate(prog, cat)
	if err != nil {
		return nil, nil, err
	}
	return tr, vars, nil
}

func runQueryProgram(ctx context.Context, prog *vadalog.Program, vars []string, db *vadalog.Database, cat *Catalog, opts vadalog.Options) ([]QueryRow, error) {
	res, err := vadalog.RunCtx(ctx, prog, db, opts)
	if err != nil {
		return nil, err
	}

	props := cat.NodeProps[queryResultLabel]
	pos := map[string]int{}
	for i, p := range props {
		pos[p] = i + 1
	}
	var rows []QueryRow
	for _, f := range res.DB.SortedFacts(queryResultLabel) {
		row := QueryRow{}
		for _, v := range vars {
			cell := f[pos[v]]
			if cell.IsZero() || value.Equal(cell, Missing) {
				continue
			}
			row[v] = cell
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ParseBody parses a comma-separated list of MetaLog body conjuncts (the
// left-hand side of a rule), for query patterns.
func ParseBody(src string) ([]BodyElem, error) {
	toks, err := lexMetaLog(src)
	if err != nil {
		return nil, fmt.Errorf("metalog: %w", err)
	}
	p := &parser{toks: toks}
	var out []BodyElem
	for {
		elem, err := p.parseBodyElem()
		if err != nil {
			return nil, fmt.Errorf("metalog: %w", err)
		}
		out = append(out, elem)
		if p.at(",") {
			p.advance()
			continue
		}
		break
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("metalog: line %d: unexpected %q after pattern", t.line, t.text)
	}
	return out, nil
}

// patternVariables collects the named (non-anonymous) variables of a body,
// sorted: node/edge identifiers, property bindings, and expression
// variables.
func patternVariables(body []BodyElem) []string {
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && name != "_" {
			seen[name] = true
		}
	}
	var walkPath func(pe PathExpr)
	walkPath = func(pe PathExpr) {
		switch pe := pe.(type) {
		case Step:
			add(pe.Edge.ID.Var)
			for _, pb := range pe.Edge.Props {
				if !pb.IsConst {
					add(pb.Var)
				}
			}
		case Concat:
			for _, p := range pe.Parts {
				walkPath(p)
			}
		case Alt:
			for _, p := range pe.Branches {
				walkPath(p)
			}
		case Repeat:
			walkPath(pe.Inner)
		case Inv:
			walkPath(pe.Inner)
		}
	}
	for _, be := range body {
		switch be.Kind {
		case BodyChain, BodyNegChain:
			for _, n := range be.Chain.Nodes {
				add(n.ID.Var)
				for _, pb := range n.Props {
					if !pb.IsConst {
						add(pb.Var)
					}
				}
			}
			for _, pe := range be.Chain.Paths {
				walkPath(pe)
			}
		case BodyExpr:
			vs := map[string]bool{}
			collectExprVars(be.Expr, vs)
			for v := range vs {
				add(v)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectExprVars(e *vadalog.Expr, set map[string]bool) {
	if e == nil {
		return
	}
	switch e.Kind {
	case vadalog.ExprVar:
		set[e.Name] = true
	case vadalog.ExprBinary:
		collectExprVars(e.Left, set)
		collectExprVars(e.Right, set)
	case vadalog.ExprUnary:
		collectExprVars(e.Left, set)
	case vadalog.ExprCall:
		for _, a := range e.Args {
			collectExprVars(a, set)
		}
	case vadalog.ExprAggregate:
		collectExprVars(e.Agg.Arg, set)
		collectExprVars(e.Agg.Arg2, set)
		for _, c := range e.Agg.Contributors {
			set[c] = true
		}
	}
}
