package metalog

import (
	"strings"
	"testing"

	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

func reasonOn(t *testing.T, src string, g *pg.Graph) *ReasonResult {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Reason(prog, g, vadalog.Options{})
	if err != nil {
		t.Fatalf("reason: %v", err)
	}
	return res
}

func lineGraph(labels ...string) (*pg.Graph, []pg.OID) {
	g := pg.New()
	ids := make([]pg.OID, len(labels))
	for i, l := range labels {
		ids[i] = g.AddNode([]string{"N"}, pg.Props{"tag": value.Str(l)}).ID
	}
	return g, ids
}

func TestGroupInverse(t *testing.T) {
	// ([:R] . [:S])- from x to y means the concatenation traversed backward:
	// there must be a path y -R-> m -S-> x.
	g, ids := lineGraph("a", "m", "b")
	g.MustAddEdge(ids[0], ids[1], "R", nil)
	g.MustAddEdge(ids[1], ids[2], "S", nil)
	reasonOn(t, `(x: N) ([: R] . [: S])- (y: N) -> (x) [e: BACK] (y).`, g)
	edges := g.EdgesByLabel("BACK")
	if len(edges) != 1 || edges[0].From != ids[2] || edges[0].To != ids[0] {
		t.Errorf("BACK edges = %+v, want b->a", edges)
	}
}

func TestAlternationInsideConcat(t *testing.T) {
	// ([:R] | [:S]) . [:T]
	g, ids := lineGraph("a", "b", "c", "d")
	g.MustAddEdge(ids[0], ids[1], "R", nil)
	g.MustAddEdge(ids[2], ids[1], "S", nil)
	g.MustAddEdge(ids[1], ids[3], "T", nil)
	reasonOn(t, `(x: N) (([: R] | [: S]) . [: T]) (y: N) -> (x) [e: OUT] (y).`, g)
	edges := g.EdgesByLabel("OUT")
	// a -R-> b -T-> d and c -S-> b -T-> d.
	if len(edges) != 2 {
		t.Fatalf("OUT edges = %d, want 2", len(edges))
	}
}

func TestAlternationHelperDeduplicated(t *testing.T) {
	// The same alternation used in two rules must share one α predicate.
	prog := MustParse(`
		(x: N) ([: R] | [: S]) (y: N) -> (x) [e: P1] (y).
		(x: N) ([: R] | [: S]) (y: N) -> (x) [e: P2] (y).
	`)
	tr, err := Translate(prog, NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.HelperPreds) != 1 {
		t.Errorf("helpers = %v, want one shared α", tr.HelperPreds)
	}
}

func TestConstantFilterInsideGroup(t *testing.T) {
	g := pg.New()
	a := g.AddNode([]string{"N"}, nil).ID
	b := g.AddNode([]string{"N"}, nil).ID
	c := g.AddNode([]string{"N"}, nil).ID
	g.MustAddEdge(a, b, "R", pg.Props{"kind": value.Str("good")})
	g.MustAddEdge(b, c, "R", pg.Props{"kind": value.Str("bad")})
	reasonOn(t, `(x: N) ([: R; kind: "good"])+ (y: N) -> (x) [e: G] (y).`, g)
	edges := g.EdgesByLabel("G")
	if len(edges) != 1 || edges[0].From != a || edges[0].To != b {
		t.Errorf("G edges = %+v, want only a->b", edges)
	}
}

func TestMultipleBodyChains(t *testing.T) {
	g := pg.New()
	p := g.AddNode([]string{"P"}, nil).ID
	q := g.AddNode([]string{"Q"}, nil).ID
	g.MustAddEdge(p, q, "R", nil)
	g.MustAddEdge(q, p, "S", nil)
	// Two separate chains sharing variables.
	reasonOn(t, `(x: P) [: R] (y: Q), (y) [: S] (x) -> (x) [e: MUTUAL] (y).`, g)
	if len(g.EdgesByLabel("MUTUAL")) != 1 {
		t.Errorf("MUTUAL edges = %d", len(g.EdgesByLabel("MUTUAL")))
	}
}

func TestHeadMultipleChains(t *testing.T) {
	g := pg.New()
	g.AddNode([]string{"A"}, pg.Props{"k": value.Str("v")})
	res := reasonOn(t, `
		(x: A; k: n) -> (#skB(n): B; name: n), (x) [e1: TO_B] (#skB(n): B), (#skB(n): B) [e2: SELF] (#skB(n): B).
	`, g)
	_ = res
	if len(g.NodesByLabel("B")) != 1 {
		t.Errorf("B nodes = %d", len(g.NodesByLabel("B")))
	}
	if len(g.EdgesByLabel("TO_B")) != 1 || len(g.EdgesByLabel("SELF")) != 1 {
		t.Errorf("edges: TO_B=%d SELF=%d", len(g.EdgesByLabel("TO_B")), len(g.EdgesByLabel("SELF")))
	}
}

func TestUserAnnotationsPassThrough(t *testing.T) {
	prog := MustParse(`
		(x: A) -> (x: B).
		@custom("hello", "world").
	`)
	tr, err := Translate(prog, NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range tr.Program.Annotations {
		if a.Name == "custom" && len(a.Args) == 2 && a.Args[1] == "world" {
			found = true
		}
	}
	if !found {
		t.Errorf("user annotation lost: %v", tr.Program.Annotations)
	}
}

func TestTranslateErrors(t *testing.T) {
	// Label used as node and edge.
	if _, err := Translate(MustParse(`(x: A) [: A] (y: B) -> (x) [e: C] (y).`), NewCatalog()); err == nil {
		t.Error("node/edge label clash must fail")
	}
	// Head with only bare references derives nothing.
	if _, err := Translate(MustParse(`(x: A) [: R] (y: B) -> (x).`), NewCatalog()); err == nil {
		t.Error("head without constructive atoms must fail")
	}
	// Unlabeled node atom with properties.
	if _, err := Translate(MustParse(`(x; p: v) -> (x: Out).`), NewCatalog()); err == nil {
		t.Error("properties without a label must fail")
	}
	// Negated chain with labeled endpoints.
	if _, err := Translate(MustParse(`(x: A), (y: B), not (x: A) [: R] (y) -> (x) [e: C] (y).`), NewCatalog()); err == nil {
		t.Error("negated edge with labeled endpoint must fail")
	}
}

func TestNegatedNodeAtom(t *testing.T) {
	g := pg.New()
	a := g.AddNode([]string{"P"}, nil)
	b := g.AddNode([]string{"P", "Banned"}, nil)
	_, _ = a, b
	reasonOn(t, `(x: P), not (x: Banned) -> (x: Clean).`, g)
	clean := g.NodesByLabel("Clean")
	if len(clean) != 1 || clean[0].ID != a.ID {
		t.Errorf("Clean nodes = %v", clean)
	}
}

func TestEdgePropertyInHead(t *testing.T) {
	g := pg.New()
	x := g.AddNode([]string{"A"}, pg.Props{"w": value.FloatV(2.5)}).ID
	y := g.AddNode([]string{"A"}, nil).ID
	g.MustAddEdge(x, y, "R", nil)
	reasonOn(t, `(a: A; w: v) [: R] (b: A), d = v * 2 -> (a) [e: W; weight: d] (b).`, g)
	edges := g.EdgesByLabel("W")
	if len(edges) != 1 || edges[0].Props["weight"].F != 5 {
		t.Errorf("W edges = %+v", edges)
	}
}

func TestCatalogInference(t *testing.T) {
	cat := NewCatalog()
	prog := MustParse(`(x: A; p1: a, p2: b) [: R; q: c] (y: B) -> (x) [e: S; out: c] (y).`)
	if _, err := Translate(prog, cat); err != nil {
		t.Fatal(err)
	}
	if got := cat.NodeProps["A"]; len(got) != 2 || got[0] != "p1" {
		t.Errorf("A props = %v", got)
	}
	if got := cat.EdgeProps["R"]; len(got) != 1 || got[0] != "q" {
		t.Errorf("R props = %v", got)
	}
	if got := cat.EdgeProps["S"]; len(got) != 1 || got[0] != "out" {
		t.Errorf("S props = %v", got)
	}
	if cat.NodeArity("A") != 3 || cat.EdgeArity("R") != 4 {
		t.Errorf("arities: %d, %d", cat.NodeArity("A"), cat.EdgeArity("R"))
	}
}

func TestUpdatePredRoundTrip(t *testing.T) {
	// numberOfX updates must flow through the shadow predicate and the
	// catalog position math must align.
	g := pg.New()
	a := g.AddNode([]string{"T"}, pg.Props{"n": value.IntV(0), "k": value.Str("x")}).ID
	g.AddNode([]string{"U"}, nil)
	reasonOn(t, `(x: T; k: s), (y: U), c = count() -> (x: T; n: c).`, g)
	if got := g.Node(a).Props["n"]; got.I != 1 {
		t.Errorf("n = %v", got)
	}
	if got := g.Node(a).Props["k"]; got.S != "x" {
		t.Errorf("update must not clobber other properties: k = %v", got)
	}
}

func TestInputAnnotationsExampleStyle(t *testing.T) {
	// The generated @input annotations follow the Example 4.4 style.
	prog := MustParse(`(x: SM_Node) [: SM_PARENT]- (g: SM_Generalization) -> (x: Marked).`)
	tr, err := Translate(prog, NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	text := tr.Program.String()
	if !strings.Contains(text, `@input("SM_Node","pg","(n:SM_Node) return n")`) {
		t.Errorf("node @input missing:\n%s", text)
	}
	if !strings.Contains(text, `@input("SM_PARENT","pg","(a)-[e:SM_PARENT]->(b) return (e,a,b)")`) {
		t.Errorf("edge @input missing:\n%s", text)
	}
}

func TestDeepGeneralizationClosurePerformance(t *testing.T) {
	// A 200-level chain through the β closure must stay well under a second
	// (regression guard for the chain-order join fix).
	g := pg.New()
	prev := g.AddNode([]string{"SM_Node"}, nil).ID
	for i := 0; i < 200; i++ {
		next := g.AddNode([]string{"SM_Node"}, nil).ID
		gen := g.AddNode([]string{"SM_Generalization"}, nil).ID
		g.MustAddEdge(gen, prev, "SM_PARENT", nil)
		g.MustAddEdge(gen, next, "SM_CHILD", nil)
		prev = next
	}
	res := reasonOn(t, `(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])+ (y: SM_Node) -> (x) [w: DESCFROM] (y).`, g)
	want := 200 * 201 / 2
	if n := len(g.EdgesByLabel("DESCFROM")); n != want {
		t.Errorf("DESCFROM edges = %d, want %d", n, want)
	}
	if res.ReasonDuration.Seconds() > 2 {
		t.Errorf("closure too slow: %v", res.ReasonDuration)
	}
}
