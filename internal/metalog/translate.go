package metalog

import (
	"fmt"
	"sort"

	"repro/internal/vadalog"
	"repro/internal/value"
)

// This file implements MTV, the MetaLog-to-Vadalog translator (Section 4,
// "MetaLog and Vadalog"). The translation has the paper's three phases:
//
//  1. the PG instance is mapped to a relational instance — implemented by
//     ExtractFacts (catalog.go) and documented in the generated program by
//     @input annotations in the style of Example 4.4;
//  2. PG node and edge atoms become relational atoms over the catalog's
//     column layout;
//  3. path patterns are resolved: concatenations chain fresh intermediate
//     variables, alternations produce α helper predicates, and repetitions
//     produce the recursive β helper predicates of Section 4. The zero-step
//     case of "*" is compiled by duplicating the rule with unified
//     endpoints, since the β rules natively express one-or-more.
//
// Per the paper's decidability condition, repetition is only admitted in
// non-recursive programs; Translate rejects programs that use "*"/"+" inside
// a cyclic label dependency graph. The generated β rules are then the only
// recursion in the output, which keeps it piecewise linear.

// Translation is the output of MTV: the Vadalog program plus the label
// bookkeeping needed to materialize results back into a property graph.
type Translation struct {
	Program *vadalog.Program

	// HeadNodeLabels / HeadEdgeLabels are the labels the program derives
	// (the intensional nodes and edges).
	HeadNodeLabels map[string]bool
	HeadEdgeLabels map[string]bool

	// BodyNodeLabels / BodyEdgeLabels are the labels the program reads.
	BodyNodeLabels map[string]bool
	BodyEdgeLabels map[string]bool

	// UpdateNodePreds maps internal shadow predicates to the node label they
	// update. A head node atom whose identifier is body-bound and whose label
	// is also read by the same rule is an in-place update (e.g. the
	// intensional numberOfStakeholders property of Section 3.3); deriving the
	// label itself would make the label depend on itself and break
	// stratification, so MTV derives mtv_set_<Label> instead and the
	// materializer applies it as a property update.
	UpdateNodePreds map[string]string

	// HelperPreds lists the generated α/β predicates, sorted.
	HelperPreds []string
}

type translator struct {
	cat   *Catalog
	tr    *Translation
	fresh int

	aux         []vadalog.Rule
	helperCache map[string]string
	helperKind  map[string]string // helper pred -> "alt" | "closure"

	nodeLabels map[string]bool
	edgeLabels map[string]bool
	hasRepeat  bool

	// depHeads and depEdges drive the repetition/recursion check: head atom
	// occurrences refined by their constant signatures, and the body atom
	// occurrences each depends on (see recordDeps).
	depHeads map[string]depAtom
	depEdges map[string][]depAtom
}

// depAtom is an atom occurrence in the label dependency graph, refined by
// the constant pattern it carries: the constants at its own argument
// positions and, for edge atoms, the constant patterns of the node atoms
// adjacent to its endpoints. Two occurrences of the same label with
// incompatible constant patterns (different constants at the same position)
// can never feed each other; this is what makes the paper's schemaOID-guarded
// mapping programs (Example 5.1) non-recursive despite reusing the SM_*
// labels on both sides of the rules.
type depAtom struct {
	pred     string
	consts   []value.Value
	epConsts [2][]value.Value // endpoint node-atom constants; nil = unknown
}

func (d depAtom) key() string {
	k := d.pred
	for _, c := range d.consts {
		k += "|" + c.Canonical()
	}
	for _, ep := range d.epConsts {
		k += "/"
		for _, c := range ep {
			k += "|" + c.Canonical()
		}
	}
	return k
}

func constsCompatible(a, b []value.Value) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if !a[i].IsZero() && !b[i].IsZero() && !value.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// compatible reports whether facts produced under head occurrence h could
// match body occurrence b.
func (h depAtom) compatible(b depAtom) bool {
	if h.pred != b.pred {
		return false
	}
	if !constsCompatible(h.consts, b.consts) {
		return false
	}
	for i := 0; i < 2; i++ {
		if h.epConsts[i] != nil && b.epConsts[i] != nil && !constsCompatible(h.epConsts[i], b.epConsts[i]) {
			return false
		}
	}
	return true
}

// Translate compiles a MetaLog program to Vadalog. The catalog is extended
// in place with any labels and properties the program mentions, so that the
// same catalog drives fact extraction and result materialization.
func Translate(p *Program, cat *Catalog) (*Translation, error) {
	t := &translator{
		cat: cat,
		tr: &Translation{
			Program:         &vadalog.Program{},
			HeadNodeLabels:  map[string]bool{},
			HeadEdgeLabels:  map[string]bool{},
			BodyNodeLabels:  map[string]bool{},
			BodyEdgeLabels:  map[string]bool{},
			UpdateNodePreds: map[string]string{},
		},
		helperCache: map[string]string{},
		helperKind:  map[string]string{},
		nodeLabels:  map[string]bool{},
		edgeLabels:  map[string]bool{},
		depHeads:    map[string]depAtom{},
		depEdges:    map[string][]depAtom{},
	}
	if err := t.registerLabels(p); err != nil {
		return nil, err
	}
	for _, r := range p.Rules {
		rules, err := t.translateRule(r)
		if err != nil {
			return nil, err
		}
		t.tr.Program.Rules = append(t.tr.Program.Rules, rules...)
	}
	t.tr.Program.Rules = append(t.tr.Program.Rules, t.aux...)
	if err := t.checkRepeatNonRecursive(); err != nil {
		return nil, err
	}
	t.addAnnotations(p)
	for h := range t.helperKind {
		t.tr.HelperPreds = append(t.tr.HelperPreds, h)
	}
	sort.Strings(t.tr.HelperPreds)
	return t.tr, nil
}

// MustTranslate panics on translation errors; for embedded framework
// programs.
func MustTranslate(p *Program, cat *Catalog) *Translation {
	tr, err := Translate(p, cat)
	if err != nil {
		panic(err)
	}
	return tr
}

func (t *translator) freshVar(prefix string) string {
	t.fresh++
	return fmt.Sprintf("%s%d", prefix, t.fresh)
}

// registerLabels scans the program, classifies every label as node or edge,
// and extends the catalog with the properties used.
func (t *translator) registerLabels(p *Program) error {
	var walkPath func(pe PathExpr) error
	noteEdge := func(e EdgeAtom) error {
		if e.Label == "" {
			return fmt.Errorf("metalog: edge atoms require a label")
		}
		if t.nodeLabels[e.Label] {
			return fmt.Errorf("metalog: label %s used both as node and edge label", e.Label)
		}
		t.edgeLabels[e.Label] = true
		var props []string
		for _, pb := range e.Props {
			props = append(props, pb.Name)
		}
		t.cat.EnsureEdge(e.Label, props...)
		return nil
	}
	noteNode := func(n NodeAtom) error {
		if n.Label == "" {
			if len(n.Props) > 0 {
				return fmt.Errorf("metalog: node atom %s has properties but no label", n)
			}
			return nil
		}
		if t.edgeLabels[n.Label] {
			return fmt.Errorf("metalog: label %s used both as node and edge label", n.Label)
		}
		t.nodeLabels[n.Label] = true
		var props []string
		for _, pb := range n.Props {
			props = append(props, pb.Name)
		}
		t.cat.EnsureNode(n.Label, props...)
		return nil
	}
	walkPath = func(pe PathExpr) error {
		switch pe := pe.(type) {
		case Step:
			return noteEdge(pe.Edge)
		case Concat:
			for _, part := range pe.Parts {
				if err := walkPath(part); err != nil {
					return err
				}
			}
		case Alt:
			for _, b := range pe.Branches {
				if err := walkPath(b); err != nil {
					return err
				}
			}
		case Repeat:
			t.hasRepeat = true
			return walkPath(pe.Inner)
		case Inv:
			return walkPath(pe.Inner)
		}
		return nil
	}
	walkChain := func(ch Chain) error {
		for _, n := range ch.Nodes {
			if err := noteNode(n); err != nil {
				return err
			}
		}
		for _, pe := range ch.Paths {
			if err := walkPath(pe); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range p.Rules {
		for _, b := range r.Body {
			if b.Kind == BodyChain || b.Kind == BodyNegChain {
				if err := walkChain(b.Chain); err != nil {
					return err
				}
			}
		}
		for _, h := range r.Head {
			if err := walkChain(h); err != nil {
				return err
			}
		}
	}
	return nil
}

// starUse records a zero-or-more repetition occurrence: the index of its β
// literal in the rule body and the endpoint variables to unify for the
// zero-step variant.
type starUse struct {
	litIndex int
	fromVar  string
	toVar    string
}

func (t *translator) translateRule(r Rule) ([]vadalog.Rule, error) {
	var lits []vadalog.Literal
	var stars []starUse

	for _, be := range r.Body {
		switch be.Kind {
		case BodyChain:
			if err := t.translateChain(be.Chain, &lits, &stars, r.Line); err != nil {
				return nil, err
			}
		case BodyNegChain:
			if err := t.translateNegChain(be.Chain, &lits, r.Line); err != nil {
				return nil, err
			}
		case BodyExpr:
			lits = append(lits, vadalog.Literal{Kind: vadalog.LitExpr, Expr: be.Expr})
		}
	}

	bodyLabels := map[string]bool{}
	for _, be := range r.Body {
		if be.Kind == BodyChain {
			for _, n := range be.Chain.Nodes {
				if n.Label != "" {
					bodyLabels[n.Label] = true
				}
			}
		}
	}

	var heads []vadalog.Atom
	for _, hc := range r.Head {
		hs, err := t.translateHeadChain(hc, bodyLabels, r.Line)
		if err != nil {
			return nil, err
		}
		heads = append(heads, hs...)
	}
	if len(heads) == 0 {
		return nil, fmt.Errorf("metalog: line %d: rule head derives nothing (all head atoms are bare references)", r.Line)
	}

	t.recordDeps(heads, lits)

	// Expand the zero-step variants of "*" occurrences: one rule per subset
	// of stars taking zero steps, with the corresponding β literal dropped
	// and endpoints unified.
	var out []vadalog.Rule
	for mask := 0; mask < 1<<uint(len(stars)); mask++ {
		subst := map[string]string{}
		drop := map[int]bool{}
		for si, su := range stars {
			if mask&(1<<uint(si)) != 0 {
				drop[su.litIndex] = true
				subst[su.toVar] = su.fromVar
			}
		}
		variant := vadalog.Rule{Line: r.Line}
		for li, l := range lits {
			if drop[li] {
				continue
			}
			variant.Body = append(variant.Body, substLiteral(l, subst))
		}
		for _, h := range heads {
			variant.Head = append(variant.Head, substAtom(h, subst))
		}
		out = append(out, variant)
	}
	return out, nil
}

// translateChain lowers n0 R1 n1 R2 … into relational literals. Node and
// path literals are interleaved in traversal order — n0, R1, n1, R2, n2 … —
// so that each join step is bound by its predecessors; emitting all node
// atoms first would build a cross product over the node relations.
func (t *translator) translateChain(ch Chain, lits *[]vadalog.Literal, stars *[]starUse, line int) error {
	ids := make([]string, len(ch.Nodes))
	for i, n := range ch.Nodes {
		if n.ID.IsSkolem() {
			return fmt.Errorf("metalog: line %d: Skolem identifiers are only allowed in rule heads", line)
		}
		if n.ID.Var != "" {
			ids[i] = n.ID.Var
		} else {
			ids[i] = t.freshVar("_mn")
		}
	}
	emitNode := func(i int) error {
		lit, err := t.nodeLiteral(ch.Nodes[i], ids[i], false)
		if err != nil {
			return err
		}
		if lit != nil {
			*lits = append(*lits, *lit)
		}
		return nil
	}
	if err := emitNode(0); err != nil {
		return err
	}
	for i, pe := range ch.Paths {
		if err := t.translatePath(pe, ids[i], ids[i+1], false, lits, stars, line); err != nil {
			return err
		}
		if err := emitNode(i + 1); err != nil {
			return err
		}
	}
	return nil
}

func (t *translator) translateNegChain(ch Chain, lits *[]vadalog.Literal, line int) error {
	switch {
	case len(ch.Nodes) == 1 && len(ch.Paths) == 0:
		n := ch.Nodes[0]
		if n.Label == "" {
			return fmt.Errorf("metalog: line %d: negated node atoms require a label", line)
		}
		if n.ID.Var == "" {
			return fmt.Errorf("metalog: line %d: negated node atoms require a bound identifier", line)
		}
		lit, err := t.nodeLiteral(n, n.ID.Var, true)
		if err != nil {
			return err
		}
		lit.Kind = vadalog.LitNegAtom
		*lits = append(*lits, *lit)
		return nil
	case len(ch.Nodes) == 2 && len(ch.Paths) == 1:
		st, ok := ch.Paths[0].(Step)
		if !ok {
			return fmt.Errorf("metalog: line %d: negated patterns must be single edge steps", line)
		}
		for _, n := range ch.Nodes {
			if n.Label != "" || len(n.Props) > 0 {
				return fmt.Errorf("metalog: line %d: endpoints of a negated edge must be bare references", line)
			}
			if n.ID.Var == "" {
				return fmt.Errorf("metalog: line %d: endpoints of a negated edge must be bound variables", line)
			}
		}
		lit, _, err := t.edgeLiteral(st.Edge, ch.Nodes[0].ID.Var, ch.Nodes[1].ID.Var, true)
		if err != nil {
			return err
		}
		lit.Kind = vadalog.LitNegAtom
		*lits = append(*lits, lit)
		return nil
	default:
		return fmt.Errorf("metalog: line %d: negated patterns must be a node atom or a single edge step", line)
	}
}

// nodeLiteral builds the relational literal of a node atom; nil when the
// atom is a bare reference (no label). anon selects wildcard naming for
// filler variables, used inside negated literals.
func (t *translator) nodeLiteral(n NodeAtom, idVar string, anon bool) (*vadalog.Literal, error) {
	if n.Label == "" {
		if len(n.Props) > 0 {
			return nil, fmt.Errorf("metalog: node atom %s has properties but no label", n)
		}
		return nil, nil
	}
	props := t.cat.NodeProps[n.Label]
	args := make([]vadalog.Term, 1+len(props))
	args[0] = vadalog.Var{Name: idVar}
	for i := range props {
		args[i+1] = vadalog.Var{Name: t.fillerVar(anon)}
	}
	for _, pb := range n.Props {
		pos := t.cat.nodePropPos(n.Label, pb.Name)
		if pos < 0 {
			return nil, fmt.Errorf("metalog: label %s has no property %s", n.Label, pb.Name)
		}
		if pb.IsConst {
			args[pos] = vadalog.Const{Value: pb.Const}
		} else {
			args[pos] = vadalog.Var{Name: pb.Var}
		}
	}
	return &vadalog.Literal{Kind: vadalog.LitAtom, Atom: vadalog.Atom{Pred: n.Label, Args: args}}, nil
}

// edgeLiteral builds the relational literal of an edge atom between two
// endpoint variables, honoring inversion, and returns the edge id variable.
func (t *translator) edgeLiteral(e EdgeAtom, fromVar, toVar string, anon bool) (vadalog.Literal, string, error) {
	if e.Label == "" {
		return vadalog.Literal{}, "", fmt.Errorf("metalog: edge atoms require a label")
	}
	idVar := e.ID.Var
	if idVar == "" {
		idVar = t.fillerVar(anon)
	}
	src, dst := fromVar, toVar
	if e.Inverse {
		src, dst = toVar, fromVar
	}
	props := t.cat.EdgeProps[e.Label]
	args := make([]vadalog.Term, 3+len(props))
	args[0] = vadalog.Var{Name: idVar}
	args[1] = vadalog.Var{Name: src}
	args[2] = vadalog.Var{Name: dst}
	for i := range props {
		args[i+3] = vadalog.Var{Name: t.fillerVar(anon)}
	}
	for _, pb := range e.Props {
		pos := t.cat.edgePropPos(e.Label, pb.Name)
		if pos < 0 {
			return vadalog.Literal{}, "", fmt.Errorf("metalog: edge label %s has no property %s", e.Label, pb.Name)
		}
		if pb.IsConst {
			args[pos] = vadalog.Const{Value: pb.Const}
		} else {
			args[pos] = vadalog.Var{Name: pb.Var}
		}
	}
	return vadalog.Literal{Kind: vadalog.LitAtom, Atom: vadalog.Atom{Pred: e.Label, Args: args}}, idVar, nil
}

func (t *translator) fillerVar(anon bool) string {
	if anon {
		return t.freshVar("_anonm")
	}
	return t.freshVar("_f")
}

// translatePath resolves a path expression between two endpoint variables,
// appending literals and recording zero-or-more occurrences (phase 3).
func (t *translator) translatePath(pe PathExpr, from, to string, inGroup bool, lits *[]vadalog.Literal, stars *[]starUse, line int) error {
	switch pe := pe.(type) {
	case Step:
		if inGroup {
			if err := groupSafeEdge(pe.Edge, line); err != nil {
				return err
			}
		}
		lit, _, err := t.edgeLiteral(pe.Edge, from, to, false)
		if err != nil {
			return err
		}
		*lits = append(*lits, lit)
		return nil
	case Inv:
		return t.translatePath(pe.Inner, to, from, inGroup, lits, stars, line)
	case Concat:
		cur := from
		for i, part := range pe.Parts {
			next := to
			if i < len(pe.Parts)-1 {
				next = t.freshVar("_mi")
			}
			if err := t.translatePath(part, cur, next, inGroup, lits, stars, line); err != nil {
				return err
			}
			cur = next
		}
		return nil
	case Alt:
		pred, err := t.helperAlt(pe, line)
		if err != nil {
			return err
		}
		*lits = append(*lits, binaryLit(pred, from, to))
		return nil
	case Repeat:
		if inGroup && !pe.Plus {
			return fmt.Errorf("metalog: line %d: zero-or-more repetition cannot be nested inside groups; use + or lift it to the top level of a step", line)
		}
		pred, err := t.helperClosure(pe.Inner, line)
		if err != nil {
			return err
		}
		*lits = append(*lits, binaryLit(pred, from, to))
		if !pe.Plus {
			*stars = append(*stars, starUse{litIndex: len(*lits) - 1, fromVar: from, toVar: to})
		}
		return nil
	default:
		return fmt.Errorf("metalog: line %d: unsupported path expression", line)
	}
}

func binaryLit(pred, from, to string) vadalog.Literal {
	return vadalog.Literal{Kind: vadalog.LitAtom, Atom: vadalog.Atom{
		Pred: pred,
		Args: []vadalog.Term{vadalog.Var{Name: from}, vadalog.Var{Name: to}},
	}}
}

// groupSafeEdge enforces that edge atoms inside α/β groups bind no
// variables: their matches are folded into a binary helper predicate, so any
// binding would be lost.
func groupSafeEdge(e EdgeAtom, line int) error {
	if e.ID.Var != "" {
		return fmt.Errorf("metalog: line %d: edge identifier %s cannot be bound inside a repeated or alternated group", line, e.ID.Var)
	}
	for _, pb := range e.Props {
		if !pb.IsConst {
			return fmt.Errorf("metalog: line %d: property variable %s cannot be bound inside a repeated or alternated group", line, pb.Var)
		}
	}
	return nil
}

// helperAlt returns (creating on first use) the α predicate for an
// alternation, per Section 4: one Vadalog rule per branch.
func (t *translator) helperAlt(a Alt, line int) (string, error) {
	key := "alt:" + a.String()
	if pred, ok := t.helperCache[key]; ok {
		return pred, nil
	}
	pred := fmt.Sprintf("mtv_alt_%d", len(t.helperCache)+1)
	t.helperCache[key] = pred
	t.helperKind[pred] = "alt"
	for _, branch := range a.Branches {
		var lits []vadalog.Literal
		var innerStars []starUse
		if err := t.translatePath(branch, "H", "Q", true, &lits, &innerStars, line); err != nil {
			return "", err
		}
		t.aux = append(t.aux, vadalog.Rule{
			Head: []vadalog.Atom{{Pred: pred, Args: []vadalog.Term{vadalog.Var{Name: "H"}, vadalog.Var{Name: "Q"}}}},
			Body: lits,
			Line: line,
		})
		t.noteHelperDeps(pred, lits)
	}
	return pred, nil
}

// helperClosure returns (creating on first use) the β predicate computing
// the one-or-more closure of a path expression, with the two rules of the
// paper's translation: τ(S,h,q) → β(h,q) and β(v,h), τ(S,h,q) → β(v,q).
func (t *translator) helperClosure(inner PathExpr, line int) (string, error) {
	key := "closure:" + inner.String()
	if pred, ok := t.helperCache[key]; ok {
		return pred, nil
	}
	pred := fmt.Sprintf("mtv_closure_%d", len(t.helperCache)+1)
	t.helperCache[key] = pred
	t.helperKind[pred] = "closure"

	var base []vadalog.Literal
	var innerStars []starUse
	if err := t.translatePath(inner, "H", "Q", true, &base, &innerStars, line); err != nil {
		return "", err
	}
	headHQ := vadalog.Atom{Pred: pred, Args: []vadalog.Term{vadalog.Var{Name: "H"}, vadalog.Var{Name: "Q"}}}
	t.aux = append(t.aux, vadalog.Rule{Head: []vadalog.Atom{headHQ}, Body: base, Line: line})
	t.noteHelperDeps(pred, base)

	var stepBody []vadalog.Literal
	stepBody = append(stepBody, binaryLit(pred, "V", "H"))
	var base2 []vadalog.Literal
	if err := t.translatePath(inner, "H", "Q", true, &base2, &innerStars, line); err != nil {
		return "", err
	}
	stepBody = append(stepBody, base2...)
	t.aux = append(t.aux, vadalog.Rule{
		Head: []vadalog.Atom{{Pred: pred, Args: []vadalog.Term{vadalog.Var{Name: "V"}, vadalog.Var{Name: "Q"}}}},
		Body: stepBody,
		Line: line,
	})
	t.noteHelperDeps(pred, stepBody)
	return pred, nil
}

func (t *translator) noteHelperDeps(pred string, lits []vadalog.Literal) {
	t.recordDeps([]vadalog.Atom{{Pred: pred, Args: []vadalog.Term{vadalog.Var{Name: "H"}, vadalog.Var{Name: "Q"}}}}, lits)
}

// translateHeadChain lowers a head chain into head atoms. Node atoms without
// a label are bare endpoint references and produce no atom.
func (t *translator) translateHeadChain(hc Chain, bodyLabels map[string]bool, line int) ([]vadalog.Atom, error) {
	ids := make([]vadalog.Term, len(hc.Nodes))
	var out []vadalog.Atom
	for i, n := range hc.Nodes {
		switch {
		case n.ID.IsSkolem():
			st := vadalog.SkolemTerm{Functor: n.ID.Functor}
			for _, a := range n.ID.SkArgs {
				st.Args = append(st.Args, vadalog.Var{Name: a})
			}
			ids[i] = st
		case n.ID.Var != "":
			ids[i] = vadalog.Var{Name: n.ID.Var}
		default:
			if n.Label == "" {
				return nil, fmt.Errorf("metalog: line %d: anonymous unlabeled node atoms are not allowed in heads", line)
			}
			// Anonymous labeled head node: an existential node (fresh
			// variable that the engine Skolemizes).
			ids[i] = vadalog.Var{Name: t.freshVar("_hex")}
		}
		if n.Label == "" {
			if len(n.Props) > 0 {
				return nil, fmt.Errorf("metalog: line %d: head node atom has properties but no label", line)
			}
			continue
		}
		props := t.cat.NodeProps[n.Label]
		args := make([]vadalog.Term, 1+len(props))
		args[0] = ids[i]
		for j := range props {
			args[j+1] = vadalog.Const{Value: Missing}
		}
		for _, pb := range n.Props {
			pos := t.cat.nodePropPos(n.Label, pb.Name)
			if pos < 0 {
				return nil, fmt.Errorf("metalog: label %s has no property %s", n.Label, pb.Name)
			}
			if pb.IsConst {
				args[pos] = vadalog.Const{Value: pb.Const}
			} else {
				args[pos] = vadalog.Var{Name: pb.Var}
			}
		}
		pred := n.Label
		if n.ID.Var != "" && !n.ID.IsSkolem() && bodyLabels[n.Label] {
			// In-place update of an existing node (see UpdateNodePreds).
			pred = "mtv_set_" + n.Label
			t.tr.UpdateNodePreds[pred] = n.Label
		} else {
			t.tr.HeadNodeLabels[n.Label] = true
		}
		out = append(out, vadalog.Atom{Pred: pred, Args: args})
	}
	for i, pe := range hc.Paths {
		st := pe.(Step) // validated by the parser
		e := st.Edge
		var idTerm vadalog.Term
		switch {
		case e.ID.IsSkolem():
			skt := vadalog.SkolemTerm{Functor: e.ID.Functor}
			for _, a := range e.ID.SkArgs {
				skt.Args = append(skt.Args, vadalog.Var{Name: a})
			}
			idTerm = skt
		case e.ID.Var != "":
			idTerm = vadalog.Var{Name: e.ID.Var}
		default:
			idTerm = vadalog.Var{Name: t.freshVar("_hex")}
		}
		props := t.cat.EdgeProps[e.Label]
		args := make([]vadalog.Term, 3+len(props))
		args[0] = idTerm
		args[1] = ids[i]
		args[2] = ids[i+1]
		for j := range props {
			args[j+3] = vadalog.Const{Value: Missing}
		}
		for _, pb := range e.Props {
			pos := t.cat.edgePropPos(e.Label, pb.Name)
			if pos < 0 {
				return nil, fmt.Errorf("metalog: edge label %s has no property %s", e.Label, pb.Name)
			}
			if pb.IsConst {
				args[pos] = vadalog.Const{Value: pb.Const}
			} else {
				args[pos] = vadalog.Var{Name: pb.Var}
			}
		}
		out = append(out, vadalog.Atom{Pred: e.Label, Args: args})
		t.tr.HeadEdgeLabels[e.Label] = true
	}
	return out, nil
}

// recordDeps records the dependency-graph contribution of one rule: every
// head atom occurrence (refined by constant signature) depends on every body
// atom occurrence. Compatibility between occurrences is resolved at
// traversal time by checkRepeatNonRecursive.
func (t *translator) recordDeps(heads []vadalog.Atom, lits []vadalog.Literal) {
	constPattern := func(a vadalog.Atom) []value.Value {
		out := make([]value.Value, len(a.Args))
		for i, arg := range a.Args {
			if c, ok := arg.(vadalog.Const); ok {
				out[i] = c.Value
			}
		}
		return out
	}
	// Index node atoms by identifier term so edge endpoints resolve to the
	// constant pattern of their adjacent node atoms.
	headNodeByID := map[string][]value.Value{}
	for _, h := range heads {
		if t.nodeLabels[h.Pred] && len(h.Args) > 0 {
			headNodeByID[h.Args[0].String()] = constPattern(h)
		}
	}
	bodyNodeByID := map[string][]value.Value{}
	for _, l := range lits {
		if l.Kind == vadalog.LitAtom && t.nodeLabels[l.Atom.Pred] && len(l.Atom.Args) > 0 {
			bodyNodeByID[l.Atom.Args[0].String()] = constPattern(l.Atom)
		}
	}
	mk := func(a vadalog.Atom, nodeByID map[string][]value.Value) depAtom {
		d := depAtom{pred: a.Pred, consts: constPattern(a)}
		if t.edgeLabels[a.Pred] && len(a.Args) >= 3 {
			for i := 0; i < 2; i++ {
				if pat, ok := nodeByID[a.Args[i+1].String()]; ok {
					d.epConsts[i] = pat
				}
			}
		}
		return d
	}
	var bodyAtoms []depAtom
	for _, l := range lits {
		if l.Kind == vadalog.LitAtom || l.Kind == vadalog.LitNegAtom {
			bodyAtoms = append(bodyAtoms, mk(l.Atom, bodyNodeByID))
		}
	}
	for _, h := range heads {
		hd := mk(h, headNodeByID)
		k := hd.key()
		if _, ok := t.depHeads[k]; !ok {
			t.depHeads[k] = hd
		}
		t.depEdges[k] = append(t.depEdges[k], bodyAtoms...)
	}
}

// checkRepeatNonRecursive enforces the paper's decidability condition:
// transitive closure (the Kleene operators) is allowed only in non-recursive
// programs. The dependency graph is over constant-refined atom occurrences,
// so the schemaOID-guarded mapping programs of Section 5 — which read one
// schema and write another — pass the check, while genuinely recursive
// programs with repetition are rejected. The self-recursion of the generated
// β closure predicates is exempt: it is exactly what the translation
// introduces, and it is piecewise linear by construction.
func (t *translator) checkRepeatNonRecursive() error {
	if !t.hasRepeat {
		return nil
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	keys := make([]string, 0, len(t.depHeads))
	for k := range t.depHeads {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var visit func(k string) error
	visit = func(k string) error {
		switch color[k] {
		case gray:
			return fmt.Errorf("metalog: program uses repetition (* or +) but is recursive through label %s; the paper's decidability condition forbids this", t.depHeads[k].pred)
		case black:
			return nil
		}
		color[k] = gray
		hd := t.depHeads[k]
		for _, body := range t.depEdges[k] {
			for _, k2 := range keys {
				h2 := t.depHeads[k2]
				if !h2.compatible(body) {
					continue
				}
				if k2 == k && t.helperKind[hd.pred] == "closure" {
					continue // β self-recursion introduced by the translation
				}
				if err := visit(k2); err != nil {
					return err
				}
			}
		}
		color[k] = black
		return nil
	}
	for _, k := range keys {
		if err := visit(k); err != nil {
			return err
		}
	}
	return nil
}

// addAnnotations emits @output annotations for every derived label, @input
// annotations in the style of Example 4.4 for every label read from the
// property graph, and passes the user's annotations through.
func (t *translator) addAnnotations(p *Program) {
	prog := t.tr.Program
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.Kind != vadalog.LitAtom && l.Kind != vadalog.LitNegAtom {
				continue
			}
			pred := l.Atom.Pred
			if t.nodeLabels[pred] {
				t.tr.BodyNodeLabels[pred] = true
			}
			if t.edgeLabels[pred] {
				t.tr.BodyEdgeLabels[pred] = true
			}
		}
	}
	for _, l := range sortedKeys(t.tr.BodyNodeLabels) {
		prog.Annotations = append(prog.Annotations, vadalog.Annotation{
			Name: "input",
			Args: []string{l, "pg", fmt.Sprintf("(n:%s) return n", l)},
		})
	}
	for _, l := range sortedKeys(t.tr.BodyEdgeLabels) {
		prog.Annotations = append(prog.Annotations, vadalog.Annotation{
			Name: "input",
			Args: []string{l, "pg", fmt.Sprintf("(a)-[e:%s]->(b) return (e,a,b)", l)},
		})
	}
	outs := map[string]bool{}
	for l := range t.tr.HeadNodeLabels {
		outs[l] = true
	}
	for l := range t.tr.HeadEdgeLabels {
		outs[l] = true
	}
	for _, l := range sortedKeys(outs) {
		prog.Annotations = append(prog.Annotations, vadalog.Annotation{Name: "output", Args: []string{l}})
	}
	prog.Annotations = append(prog.Annotations, p.Annotations...)
}

// substitution helpers for the zero-step variants of "*".

func substLiteral(l vadalog.Literal, subst map[string]string) vadalog.Literal {
	if len(subst) == 0 {
		return l
	}
	switch l.Kind {
	case vadalog.LitAtom, vadalog.LitNegAtom:
		return vadalog.Literal{Kind: l.Kind, Atom: substAtom(l.Atom, subst)}
	default:
		return vadalog.Literal{Kind: l.Kind, Expr: substExpr(l.Expr, subst)}
	}
}

func substAtom(a vadalog.Atom, subst map[string]string) vadalog.Atom {
	if len(subst) == 0 {
		return a
	}
	out := vadalog.Atom{Pred: a.Pred, Args: make([]vadalog.Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = substTerm(t, subst)
	}
	return out
}

func substTerm(t vadalog.Term, subst map[string]string) vadalog.Term {
	switch t := t.(type) {
	case vadalog.Var:
		if to, ok := subst[t.Name]; ok {
			return vadalog.Var{Name: to}
		}
		return t
	case vadalog.SkolemTerm:
		out := vadalog.SkolemTerm{Functor: t.Functor, Args: make([]vadalog.Term, len(t.Args))}
		for i, a := range t.Args {
			out.Args[i] = substTerm(a, subst)
		}
		return out
	default:
		return t
	}
}

func substExpr(e *vadalog.Expr, subst map[string]string) *vadalog.Expr {
	if e == nil {
		return nil
	}
	out := *e
	if e.Kind == vadalog.ExprVar {
		if to, ok := subst[e.Name]; ok {
			out.Name = to
		}
		return &out
	}
	out.Left = substExpr(e.Left, subst)
	out.Right = substExpr(e.Right, subst)
	if e.Args != nil {
		out.Args = make([]*vadalog.Expr, len(e.Args))
		for i, a := range e.Args {
			out.Args[i] = substExpr(a, subst)
		}
	}
	if e.Agg != nil {
		agg := *e.Agg
		agg.Arg = substExpr(e.Agg.Arg, subst)
		agg.Arg2 = substExpr(e.Agg.Arg2, subst)
		if e.Agg.Contributors != nil {
			agg.Contributors = make([]string, len(e.Agg.Contributors))
			for i, c := range e.Agg.Contributors {
				if to, ok := subst[c]; ok {
					agg.Contributors[i] = to
				} else {
					agg.Contributors[i] = c
				}
			}
		}
		out.Agg = &agg
	}
	return &out
}
