package metalog

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

func queryGraph(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.New()
	biz := func(name string, cap float64) pg.OID {
		return g.AddNode([]string{"Business"}, pg.Props{
			"businessName": value.Str(name), "cap": value.FloatV(cap),
		}).ID
	}
	a, b, c := biz("alfa", 100), biz("beta", 50), biz("gamma", 10)
	g.MustAddEdge(a, b, "OWNS", pg.Props{"percentage": value.FloatV(0.7)})
	g.MustAddEdge(b, c, "OWNS", pg.Props{"percentage": value.FloatV(0.6)})
	g.MustAddEdge(a, c, "OWNS", pg.Props{"percentage": value.FloatV(0.1)})
	return g
}

func TestQueryBasic(t *testing.T) {
	g := queryGraph(t)
	rows, err := Query(g, `(x: Business; businessName: n) [: OWNS; percentage: w] (y: Business), w > 0.5`, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Deterministic order; columns bound.
	if rows[0]["n"].S != "alfa" || rows[1]["n"].S != "beta" {
		t.Errorf("names = %v, %v", rows[0]["n"], rows[1]["n"])
	}
	if _, ok := rows[0].OID("x"); !ok {
		t.Errorf("x should be an OID: %v", rows[0]["x"])
	}
	if w, _ := rows[0]["w"].AsFloat(); w != 0.7 {
		t.Errorf("w = %v", rows[0]["w"])
	}
}

func TestQueryPathPattern(t *testing.T) {
	g := queryGraph(t)
	rows, err := Query(g, `(x: Business; businessName: "alfa") ([: OWNS])+ (y: Business; businessName: m)`, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r["m"].S] = true
	}
	if !names["beta"] || !names["gamma"] {
		t.Errorf("reachable = %v", names)
	}
}

func TestQueryWithExpression(t *testing.T) {
	g := queryGraph(t)
	rows, err := Query(g, `(x: Business; cap: c), d = c * 2, d >= 100`, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // alfa (200) and beta (100)
		t.Fatalf("rows = %v", rows)
	}
	if d, _ := rows[0]["d"].AsFloat(); d != 200 && d != 100 {
		t.Errorf("d = %v", rows[0]["d"])
	}
}

func TestQueryNegation(t *testing.T) {
	g := queryGraph(t)
	// Businesses nobody owns: only alfa.
	rows, err := Query(g, `(x: Business; businessName: n), (y: Business), not (y) [: OWNS] (x), x != y`, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Row per (x, y) pair where y does not own x; alfa is never owned, so it
	// pairs with both others; beta is not owned by gamma; gamma not by...
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	unowned := map[string]int{}
	for _, r := range rows {
		unowned[r["n"].S]++
	}
	if unowned["alfa"] != 2 {
		t.Errorf("alfa should pair with both others: %v", unowned)
	}
}

func TestQueryDistinctRows(t *testing.T) {
	// Two parallel edges with identical properties produce one row when the
	// edge variable is anonymous (set semantics over the named variables).
	g := pg.New()
	a := g.AddNode([]string{"N"}, nil).ID
	b := g.AddNode([]string{"N"}, nil).ID
	g.MustAddEdge(a, b, "R", nil)
	g.MustAddEdge(a, b, "R", nil)
	rows, err := Query(g, `(x: N) [: R] (y: N)`, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %v, want 1 (set semantics)", rows)
	}
	// Naming the edge variable distinguishes the two.
	rows2, err := Query(g, `(x: N) [e: R] (y: N)`, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 2 {
		t.Errorf("rows = %v, want 2 (edge identity)", rows2)
	}
}

func TestQueryErrors(t *testing.T) {
	g := queryGraph(t)
	if _, err := Query(g, `(x: Business`, vadalog.Options{}); err == nil {
		t.Error("syntax error must fail")
	}
	if _, err := Query(g, `(: Business)`, vadalog.Options{}); err == nil {
		t.Error("pattern without variables must fail")
	}
	if _, err := Query(g, `(x: Business) -> (x: Out).`, vadalog.Options{}); err == nil {
		t.Error("full rules are not patterns")
	}
}

func TestQueryMissingPropsOmitted(t *testing.T) {
	g := pg.New()
	g.AddNode([]string{"P"}, pg.Props{"a": value.IntV(1)})
	g.AddNode([]string{"P"}, pg.Props{"a": value.IntV(2), "b": value.Str("x")})
	rows, err := Query(g, `(p: P; a: av)`, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if _, ok := r["av"]; !ok {
			t.Errorf("a binding missing: %v", r)
		}
	}
}

// TestExplainThroughMetaLog: provenance flows through the MetaLog pipeline —
// a derived CONTROLS fact explains down to the OWNS ground data.
func TestExplainThroughMetaLog(t *testing.T) {
	g := queryGraph(t)
	prog := MustParse(`
		(x: Business) -> (x) [c: CONTROLS] (x).
		(x: Business) [: CONTROLS] (z: Business) [: OWNS; percentage: w] (y: Business),
			v = sum(w, <z>), v > 0.5
			-> (x) [c: CONTROLS] (y).
	`)
	res, err := Reason(prog, g, vadalog.Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find a derived CONTROLS fact with distinct endpoints and explain it.
	var derived vadalog.Fact
	for _, f := range res.DB.SortedFacts("CONTROLS") {
		if !value.Equal(f[1], f[2]) {
			derived = f
			break
		}
	}
	if derived == nil {
		t.Fatal("no non-self control derived")
	}
	proof, err := res.Run.Explain("CONTROLS", derived, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := proof.String()
	if !strings.Contains(text, "OWNS(") || !strings.Contains(text, "[ground]") {
		t.Errorf("proof should reach the OWNS ground data:\n%s", text)
	}
}

// TestQueryAbsentProperty pins the pre-serving-layer behavior of the
// one-shot query path: a pattern may mention a property no node carries —
// translation extends the catalog, extraction emits the null column, and
// the variable simply binds to Missing (dropped from the row) instead of
// the evaluation failing on an arity mismatch.
func TestQueryAbsentProperty(t *testing.T) {
	g := queryGraph(t)
	rows, err := Query(g, `(x: Business; nope: n) [: OWNS] (y: Business)`, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if _, bound := r["n"]; bound {
			t.Fatalf("absent property bound to %v", r["n"])
		}
		if _, ok := r.OID("x"); !ok {
			t.Fatalf("x unbound in %v", r)
		}
	}
}

// TestQueryDBStaleDatabase: the shared-database path cannot invent columns
// after extraction, so the same pattern fails with the typed sentinel the
// serving layer keys its re-extraction fallback on.
func TestQueryDBStaleDatabase(t *testing.T) {
	g := queryGraph(t)
	cat := FromGraph(g)
	db, err := ExtractFacts(g, cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{
		`(x: Business; nope: n) [: OWNS] (y: Business)`,      // absent node prop
		`(x: Business) [: OWNS; nope: n] (y: Business)`,      // absent edge prop
		`(x: NoSuchLabel) [: OWNS] (y: Business)`,            // absent node label
		`(x: Business) [: NO_SUCH_EDGE] (y: Business)`,       // absent edge label
	} {
		if _, err := QueryDBCtx(context.Background(), db, cat.Clone(), pattern, vadalog.Options{}); !errors.Is(err, ErrStaleDatabase) {
			t.Errorf("pattern %q: err = %v, want ErrStaleDatabase", pattern, err)
		}
	}
	// The known-layout pattern still evaluates against the same database.
	rows, err := QueryDBCtx(context.Background(), db, cat.Clone(), `(x: Business; businessName: n) [: OWNS] (y: Business)`, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}
