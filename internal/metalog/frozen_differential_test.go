package metalog

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// The differential sweep: every generated MetaLog query must produce
// byte-identical rows whether it reads the mutable graph or its frozen
// snapshot. This is the acceptance gate of the two-phase storage refactor —
// pg.Frozen is a drop-in View, not an approximation.

// diffGraph builds a randomized shareholding-shaped graph guaranteeing every
// label of the query templates is inhabited.
func diffGraph(r *rand.Rand) *pg.Graph {
	g := pg.New()
	nCompanies := 4 + r.Intn(12)
	nPersons := 3 + r.Intn(8)
	var companies, persons []pg.OID
	for i := 0; i < nCompanies; i++ {
		props := pg.Props{"name": value.Str(fmt.Sprintf("c%d", i))}
		if r.Intn(2) == 0 {
			props["cap"] = value.FloatV(float64(r.Intn(5000)) / 3)
		}
		labels := []string{"Company"}
		if r.Intn(4) == 0 {
			labels = append(labels, "Listed")
		}
		companies = append(companies, g.AddNode(labels, props).ID)
	}
	for i := 0; i < nPersons; i++ {
		props := pg.Props{"name": value.Str(fmt.Sprintf("p%d", i))}
		if r.Intn(2) == 0 {
			props["age"] = value.IntV(int64(20 + r.Intn(60)))
		}
		persons = append(persons, g.AddNode([]string{"Person"}, props).ID)
	}
	for i := 0; i < nCompanies*3; i++ {
		from := companies[r.Intn(len(companies))]
		to := companies[r.Intn(len(companies))]
		g.MustAddEdge(from, to, "OWNS", pg.Props{"pct": value.FloatV(float64(r.Intn(100)) / 100)})
	}
	for i := 0; i < nPersons*2; i++ {
		g.MustAddEdge(persons[r.Intn(len(persons))], companies[r.Intn(len(companies))],
			"WORKS_FOR", nil)
	}
	return g
}

// diffQueries are the pattern templates of the sweep, all valid against
// diffGraph's catalog.
var diffQueries = []string{
	`(x: Company)`,
	`(x: Person; name: n)`,
	`(x: Company; name: n), (y: Person)`,
	`(x: Company) [: OWNS] (y: Company)`,
	`(x: Company) [e: OWNS] (y: Company), x != y`,
	`(p: Person) [: WORKS_FOR] (c: Company; name: n)`,
	`(x: Company) [: OWNS] (y: Company) [: OWNS] (z: Company)`,
	`(x: Company) ([: OWNS])+ (y: Company)`,
	`(p: Person; age: a), a > 30`,
	`(x: Listed), (x: Company; name: n)`,
	`(p: Person) [: WORKS_FOR] (c: Company) [: OWNS] (d: Company), c != d`,
	`(x: Company; cap: k), k > 100`,
}

// renderRows serializes query rows deterministically for byte comparison.
func renderRows(rows []QueryRow) string {
	var b strings.Builder
	for _, row := range rows {
		names := make([]string, 0, len(row))
		for k := range row {
			names = append(names, k)
		}
		sort.Strings(names)
		for i, k := range names {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(row[k].Canonical())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFrozenDifferentialSweep runs >100 generated queries against the
// mutable graph and its frozen snapshot and requires byte-identical rows.
func TestFrozenDifferentialSweep(t *testing.T) {
	queries := 0
	for seed := int64(0); seed < 10; seed++ {
		g := diffGraph(rand.New(rand.NewSource(seed)))
		f := g.Freeze()

		// The inferred catalogs must agree before any query runs.
		if gc, fc := FromGraph(g), FromGraph(f); !reflect.DeepEqual(gc, fc) {
			t.Fatalf("seed %d: catalogs diverge:\n%v\n%v", seed, gc, fc)
		}

		for _, q := range diffQueries {
			queries++
			mrows, merr := Query(g, q, vadalog.Options{})
			frows, ferr := Query(f, q, vadalog.Options{})
			if (merr == nil) != (ferr == nil) {
				t.Fatalf("seed %d, query %q: error mismatch: %v vs %v", seed, q, merr, ferr)
			}
			if merr != nil {
				t.Fatalf("seed %d, query %q: %v", seed, q, merr)
			}
			if m, fr := renderRows(mrows), renderRows(frows); m != fr {
				t.Fatalf("seed %d, query %q: rows diverge:\nmutable:\n%s\nfrozen:\n%s", seed, q, m, fr)
			}
		}
	}
	if queries < 100 {
		t.Fatalf("sweep ran only %d queries; the acceptance gate requires >= 100", queries)
	}
}

// TestFrozenQueryConcurrent runs the same query from 8 goroutines against
// one shared snapshot (under -race in make test-race): ExtractFacts and the
// whole query pipeline must be read-only on the frozen path.
func TestFrozenQueryConcurrent(t *testing.T) {
	g := diffGraph(rand.New(rand.NewSource(99)))
	f := g.Freeze()
	const q = `(x: Company) [e: OWNS] (y: Company), x != y`
	want, err := Query(g, q, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantStr := renderRows(want)

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows, err := Query(f, q, vadalog.Options{})
			if err != nil {
				errs <- fmt.Errorf("reader %d: %v", w, err)
				return
			}
			if got := renderRows(rows); got != wantStr {
				errs <- fmt.Errorf("reader %d: rows diverged from mutable reference", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
