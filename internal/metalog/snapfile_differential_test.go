package metalog

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/snapfile"
	"repro/internal/vadalog"
)

// TestSnapfileDifferentialSweep extends the frozen differential sweep one
// layer down: the same >100 generated queries, now against a view
// reconstructed from the on-disk snapshot format (mmap-backed where the
// platform allows), must return rows byte-identical to the mutable graph.
// This is the acceptance gate for the persistence layer — a snapfile round
// trip is a drop-in View, not an approximation.
func TestSnapfileDifferentialSweep(t *testing.T) {
	dir := t.TempDir()
	queries := 0
	for seed := int64(0); seed < 10; seed++ {
		g := diffGraph(rand.New(rand.NewSource(seed)))
		path := filepath.Join(dir, "sweep.snap")
		if _, err := snapfile.WriteFile(path, g.Freeze(), snapfile.BuildInfo{Tool: "sweep"}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		snap, err := snapfile.Open(path)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		f := snap.Frozen

		if gc, fc := FromGraph(g), FromGraph(f); !reflect.DeepEqual(gc, fc) {
			snap.Close()
			t.Fatalf("seed %d: catalogs diverge:\n%v\n%v", seed, gc, fc)
		}
		for _, q := range diffQueries {
			queries++
			mrows, merr := Query(g, q, vadalog.Options{})
			frows, ferr := Query(f, q, vadalog.Options{})
			if (merr == nil) != (ferr == nil) {
				snap.Close()
				t.Fatalf("seed %d, query %q: error mismatch: %v vs %v", seed, q, merr, ferr)
			}
			if merr != nil {
				snap.Close()
				t.Fatalf("seed %d, query %q: %v", seed, q, merr)
			}
			if m, fr := renderRows(mrows), renderRows(frows); m != fr {
				snap.Close()
				t.Fatalf("seed %d, query %q: rows diverge:\nmutable:\n%s\nsnapfile:\n%s", seed, q, m, fr)
			}
		}
		if err := snap.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
	if queries < 100 {
		t.Fatalf("sweep ran only %d queries; the acceptance gate requires >= 100", queries)
	}
}
