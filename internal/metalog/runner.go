package metalog

import (
	"context"
	"time"

	"repro/internal/pg"
	"repro/internal/vadalog"
)

// ReasonResult is the outcome of running a MetaLog program over a property
// graph end to end: translation, loading, reasoning and flushing. The phase
// durations reproduce the breakdown discussed in Section 6 of the paper
// (loading and flushing vs. the reasoning task proper).
type ReasonResult struct {
	Translation *Translation
	Catalog     *Catalog
	DB          *vadalog.Database
	// Run is the underlying engine result; with vadalog.Options.Provenance
	// set, Run.Explain reconstructs proof trees for derived facts.
	Run         *vadalog.Result
	Materialize MaterializeStats
	RunStats    vadalog.RunStats

	LoadDuration   time.Duration // ExtractFacts (the paper's "loading")
	ReasonDuration time.Duration // the Vadalog fixpoint
	FlushDuration  time.Duration // Materialize (the paper's "flushing")
}

// Reason compiles and runs a MetaLog program over the graph, materializing
// the derived nodes and edges back into it. The graph's own labels and
// properties seed the catalog; the program may extend it with intensional
// labels. The options — including Options.Workers, which selects the
// parallel fixpoint engine — pass through to the Vadalog run unchanged.
func Reason(prog *Program, g *pg.Graph, opts vadalog.Options) (*ReasonResult, error) {
	return ReasonCtx(context.Background(), prog, g, opts)
}

// ReasonCtx is Reason under a context: the embedded Vadalog run honors ctx
// and vadalog.Options.Timeout (typed vadalog.ErrCanceled / ErrTimeout), and
// the loading and flushing phases check ctx at their boundaries, so a
// MetaLog-level run inherits the engine's operational controls end to end.
func ReasonCtx(ctx context.Context, prog *Program, g *pg.Graph, opts vadalog.Options) (*ReasonResult, error) {
	cat := FromGraph(g)
	return ReasonWithCatalogCtx(ctx, prog, g, cat, opts)
}

// ReasonWithCatalog is Reason with a caller-provided catalog, used when the
// property layout comes from a designed schema rather than from instance
// inference.
func ReasonWithCatalog(prog *Program, g *pg.Graph, cat *Catalog, opts vadalog.Options) (*ReasonResult, error) {
	return ReasonWithCatalogCtx(context.Background(), prog, g, cat, opts)
}

// ReasonWithCatalogCtx is ReasonWithCatalog under a context (see ReasonCtx).
func ReasonWithCatalogCtx(ctx context.Context, prog *Program, g *pg.Graph, cat *Catalog, opts vadalog.Options) (*ReasonResult, error) {
	tr, err := Translate(prog, cat)
	if err != nil {
		return nil, err
	}

	loadStart := time.Now()
	db, err := ExtractFacts(g, cat)
	if err != nil {
		return nil, err
	}
	loadDur := time.Since(loadStart)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	reasonStart := time.Now()
	res, err := vadalog.RunInPlaceCtx(ctx, tr.Program, db, opts)
	if err != nil {
		return nil, err
	}
	reasonDur := time.Since(reasonStart)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	flushStart := time.Now()
	mst, err := Materialize(res.DB, tr, cat, g)
	if err != nil {
		return nil, err
	}
	flushDur := time.Since(flushStart)

	return &ReasonResult{
		Translation:    tr,
		Catalog:        cat,
		DB:             res.DB,
		Run:            res,
		Materialize:    mst,
		RunStats:       res.Stats,
		LoadDuration:   loadDur,
		ReasonDuration: reasonDur,
		FlushDuration:  flushDur,
	}, nil
}

// ctxErr maps a done context onto the engine's typed interruption errors, so
// cancellation between phases surfaces the same way as cancellation inside
// the fixpoint.
func ctxErr(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return vadalog.ErrTimeout
	default:
		return vadalog.ErrCanceled
	}
}
