package metalog

import (
	"context"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/fingraph"
	"repro/internal/vadalog"
)

// The E24 planning benchmarks (EXPERIMENTS.md): a point query — one company's
// ownership closure — over the E1 shareholding graph, evaluated unplanned
// (written order, full closure materialized) versus through the cost-based
// plan (join reordering + demand transformation, only the demanded subset of
// the closure computed). make bench-plan captures them into BENCH_plan.json
// and runs the speedup gate below.
//
// Both sides run the same Prepared.QueryDB path — the unplanned side is
// prepared with a nil statistics catalog — and each run evaluates a
// pre-cloned database with OwnInput, so the comparison isolates evaluation
// work from the engine's defensive copy (a constant both sides would pay).

// planBenchQuery probes one company's transitive ownership: the shape the
// demand transformation exists for.
const planBenchQuery = `(x: Business; fiscalCode: "CO00000042") ([: OWNS])+ (y: Business)`

// planBench is the shared fixture: the E1 shareholding graph extracted once,
// with the query prepared both ways.
type planBench struct {
	db        *vadalog.Database
	planned   *Prepared
	unplanned *Prepared
}

func planBenchSetup(tb testing.TB, companies int) planBench {
	tb.Helper()
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(companies, 42))
	f := topo.Shareholding().Freeze()
	cat := FromGraph(f)
	st := ComputePlanStats(f, cat)
	planned, err := PrepareQuery(cat.Clone(), planBenchQuery, st)
	if err != nil {
		tb.Fatal(err)
	}
	if !planned.Planned() {
		tb.Fatal("point query did not plan; the comparison would run identical programs")
	}
	unplanned, err := PrepareQuery(cat.Clone(), planBenchQuery, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if unplanned.Planned() {
		tb.Fatal("nil-stats prepare unexpectedly planned")
	}
	db, err := ExtractFacts(f, cat)
	if err != nil {
		tb.Fatal(err)
	}
	return planBench{db: db, planned: planned, unplanned: unplanned}
}

// run evaluates one prepared side on its own clone, returning the row count.
func (pb planBench) run(tb testing.TB, prep *Prepared, clone *vadalog.Database) int {
	tb.Helper()
	rows, err := prep.QueryDB(context.Background(), clone, vadalog.Options{OwnInput: true})
	if err != nil {
		tb.Fatal(err)
	}
	if len(rows) == 0 {
		tb.Fatal("empty result")
	}
	return len(rows)
}

func BenchmarkPlanPointQuery(b *testing.B) {
	pb := planBenchSetup(b, 2000)
	for _, tc := range []struct {
		name string
		prep *Prepared
	}{
		{"unplanned", pb.unplanned},
		{"planned", pb.planned},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clone := pb.db.Clone()
				b.StartTimer()
				pb.run(b, tc.prep, clone)
			}
		})
	}
}

// TestPlanPointQueryGate is the E24 acceptance gate: the planned point query
// must evaluate at least 5x faster than the unplanned one on the E1 graph —
// demand-driven evaluation walks one company's reachable cone instead of
// materializing the whole ownership closure. Median of per-round medians
// with retries, like the E23 WAL gate, so one noisy round on shared hardware
// proves nothing. Run by make bench-plan (RUN_PLAN_GATE=1); skipped
// otherwise.
func TestPlanPointQueryGate(t *testing.T) {
	if os.Getenv("RUN_PLAN_GATE") == "" {
		t.Skip("speedup gate runs under make bench-plan (set RUN_PLAN_GATE=1)")
	}
	const (
		companies = 8000
		rounds    = 5
		perRound  = 3
		attempts  = 4
		minRatio  = 5.0
	)
	pb := planBenchSetup(t, companies)

	var actual int
	median := func(prep *Prepared) time.Duration {
		meds := make([]time.Duration, 0, rounds)
		for r := 0; r < rounds; r++ {
			lats := make([]time.Duration, 0, perRound)
			for i := 0; i < perRound; i++ {
				clone := pb.db.Clone()
				start := time.Now()
				actual = pb.run(t, prep, clone)
				lats = append(lats, time.Since(start))
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			meds = append(meds, lats[len(lats)/2])
		}
		sort.Slice(meds, func(i, j int) bool { return meds[i] < meds[j] })
		return meds[len(meds)/2]
	}

	var up, pl time.Duration
	for attempt := 1; attempt <= attempts; attempt++ {
		up, pl = median(pb.unplanned), median(pb.planned)
		ratio := float64(up) / float64(pl)
		t.Logf("attempt %d: unplanned %v, planned %v (speedup %.2fx; estimated %.1f rows, actual %d)",
			attempt, up, pl, ratio, pb.planned.EstimatedRows(), actual)
		if ratio >= minRatio {
			return
		}
	}
	t.Fatalf("planned point query speedup below %.0fx: unplanned %v, planned %v", minRatio, up, pl)
}
