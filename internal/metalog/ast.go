// Package metalog implements MetaLog, the language the paper proposes for
// the intensional component of Knowledge Graphs and for the schema
// translation mappings (Section 4).
//
// MetaLog combines Warded Datalog± (the core of Vadalog) with property-graph
// pattern matching: rules are existential rules whose bodies are
// conjunctions of PG node atoms, path patterns, conditions and expressions,
// and whose heads are conjunctions of PG node atoms and single-step path
// patterns.
//
// The textual syntax used by this package mirrors the paper's mathematical
// notation:
//
//	(x: Business) [: CONTROLS] (z: Business)
//	    [: OWNS; percentage: w] (y: Business),
//	    v = sum(w, <z>), v > 0.5
//	    -> (x) [c: CONTROLS] (y).
//
// Path patterns are regular expressions over edge atoms: juxtaposition or
// "." is concatenation, "|" is alternation, a postfix "-" inverts an edge
// atom (or group), "*" is reflexive-transitive repetition and "+" is the
// one-or-more repetition that the paper's β-rule translation produces. The
// paper's Example 4.3 reads, in this syntax:
//
//	(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])* (y: SM_Node)
//	    -> (x) [w: DESCFROM] (y).
//
// The MTV compiler (translate.go) lowers MetaLog programs to Vadalog
// following the three translation phases of Section 4.
package metalog

import (
	"fmt"
	"strings"

	"repro/internal/vadalog"
	"repro/internal/value"
)

// Ident is the identifier of a node or edge atom: a variable, an explicit
// linker Skolem functor application, or nothing (anonymous).
type Ident struct {
	Var     string   // variable name, "" if anonymous or Skolem
	Functor string   // Skolem functor name, "" if variable/anonymous
	SkArgs  []string // Skolem argument variable names
}

// IsAnon reports whether the identifier was omitted.
func (id Ident) IsAnon() bool { return id.Var == "" && id.Functor == "" }

// IsSkolem reports whether the identifier is a Skolem functor application.
func (id Ident) IsSkolem() bool { return id.Functor != "" }

func (id Ident) String() string {
	if id.Functor != "" {
		return "#" + id.Functor + "(" + strings.Join(id.SkArgs, ",") + ")"
	}
	return id.Var
}

// PropBinding is one named term "name: x" or "name: const" of a PG atom's
// tuple K (Section 4).
type PropBinding struct {
	Name    string
	IsConst bool
	Const   value.Value
	Var     string
}

func (p PropBinding) String() string {
	if p.IsConst {
		if p.Const.K == value.String {
			return fmt.Sprintf("%s: %q", p.Name, p.Const.S)
		}
		return p.Name + ": " + p.Const.String()
	}
	return p.Name + ": " + p.Var
}

func propsString(props []PropBinding) string {
	if len(props) == 0 {
		return ""
	}
	parts := make([]string, len(props))
	for i, p := range props {
		parts[i] = p.String()
	}
	return "; " + strings.Join(parts, ", ")
}

// NodeAtom is a PG node atom (x: L; K).
type NodeAtom struct {
	ID    Ident
	Label string // "" when omitted: matches any node
	Props []PropBinding
}

func (n NodeAtom) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(n.ID.String())
	if n.Label != "" {
		if !n.ID.IsAnon() {
			b.WriteByte(' ')
		}
		b.WriteString(": ")
		b.WriteString(n.Label)
	}
	b.WriteString(propsString(n.Props))
	b.WriteByte(')')
	return b.String()
}

// EdgeAtom is a PG edge atom [x: L; K], possibly inverted by a postfix "-".
type EdgeAtom struct {
	ID      Ident
	Label   string
	Props   []PropBinding
	Inverse bool
}

func (e EdgeAtom) String() string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(e.ID.String())
	if e.Label != "" {
		if !e.ID.IsAnon() {
			b.WriteByte(' ')
		}
		b.WriteString(": ")
		b.WriteString(e.Label)
	}
	b.WriteString(propsString(e.Props))
	b.WriteByte(']')
	if e.Inverse {
		b.WriteByte('-')
	}
	return b.String()
}

// PathExpr is a regular expression over edge atoms (the alphabet A of
// Section 4).
type PathExpr interface {
	isPathExpr()
	String() string
}

// Step is a single edge-atom traversal.
type Step struct{ Edge EdgeAtom }

func (Step) isPathExpr()      {}
func (s Step) String() string { return s.Edge.String() }

// Concat is the concatenation S1 · S2 · … of path expressions.
type Concat struct{ Parts []PathExpr }

func (Concat) isPathExpr() {}

// String parenthesizes the sequence: the "." separator is only grammatical
// inside a group, so a bare "a . b" would not reparse at chain level.
func (c Concat) String() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " . ") + ")"
}

// Alt is the alternation (S | T | …).
type Alt struct{ Branches []PathExpr }

func (Alt) isPathExpr() {}
func (a Alt) String() string {
	parts := make([]string, len(a.Branches))
	for i, p := range a.Branches {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// Repeat is (S)* (zero or more; Plus false) or (S)+ (one or more; Plus true).
// The paper's β-rule translation natively produces the one-or-more closure;
// the zero-step case of "*" is compiled by duplicating the rule with unified
// endpoints.
type Repeat struct {
	Inner PathExpr
	Plus  bool
}

func (Repeat) isPathExpr() {}
func (r Repeat) String() string {
	op := "*"
	if r.Plus {
		op = "+"
	}
	return "(" + r.Inner.String() + ")" + op
}

// Inv is the inverse (S)- of a grouped path expression. Single edge atoms
// carry their inversion on the atom itself.
type Inv struct{ Inner PathExpr }

func (Inv) isPathExpr()      {}
func (i Inv) String() string { return "(" + i.Inner.String() + ")-" }

// Chain is an alternating sequence of node atoms and path expressions:
// n0 R1 n1 R2 n2 …, with len(Nodes) == len(Paths)+1.
type Chain struct {
	Nodes []NodeAtom
	Paths []PathExpr
}

func (c Chain) String() string {
	var b strings.Builder
	for i, n := range c.Nodes {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n.String())
		if i < len(c.Paths) {
			b.WriteByte(' ')
			b.WriteString(c.Paths[i].String())
		}
	}
	return b.String()
}

// BodyElem is one conjunct of a rule body.
type BodyElem struct {
	Kind  BodyKind
	Chain Chain         // BodyChain / BodyNegChain
	Expr  *vadalog.Expr // BodyExpr: condition or assignment
}

// BodyKind discriminates body conjunct forms.
type BodyKind uint8

// Body conjunct kinds.
const (
	BodyChain BodyKind = iota
	BodyNegChain
	BodyExpr
)

func (b BodyElem) String() string {
	switch b.Kind {
	case BodyChain:
		return b.Chain.String()
	case BodyNegChain:
		return "not " + b.Chain.String()
	default:
		return b.Expr.String()
	}
}

// Rule is a MetaLog existential rule: body -> head.
type Rule struct {
	Body []BodyElem
	Head []Chain // head chains contain only single-step paths
	Line int
}

func (r Rule) String() string {
	bodies := make([]string, len(r.Body))
	for i, b := range r.Body {
		bodies[i] = b.String()
	}
	heads := make([]string, len(r.Head))
	for i, h := range r.Head {
		heads[i] = h.String()
	}
	return strings.Join(bodies, ", ") + " -> " + strings.Join(heads, ", ") + "."
}

// Program is a set of MetaLog rules with annotations.
type Program struct {
	Rules       []Rule
	Annotations []vadalog.Annotation
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, a := range p.Annotations {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}
