package metalog

import (
	"fmt"
	"sort"

	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// Missing is the placeholder stored at a property position when a node or
// edge does not carry that property. It is an identifier outside the constant
// domain, so it never compares equal to real data; materialization skips it.
var Missing = value.IDV("⊥")

// Catalog fixes, for every node and edge label, the ordered list of property
// names used by the PG-to-relational mapping of Section 4 (step 1): an
// L-labeled node becomes a fact L(oid, p1, …, pn) and an L-labeled edge a
// fact L(oid, from, to, f1, …, fm), with the property columns in catalog
// order.
type Catalog struct {
	NodeProps map[string][]string // label -> sorted property names
	EdgeProps map[string][]string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{NodeProps: map[string][]string{}, EdgeProps: map[string][]string{}}
}

// Clone returns a deep copy of the catalog. Query translation extends the
// catalog it is handed (the query-result layout), so callers sharing one
// catalog across concurrent queries clone it per call.
func (c *Catalog) Clone() *Catalog {
	out := &Catalog{
		NodeProps: make(map[string][]string, len(c.NodeProps)),
		EdgeProps: make(map[string][]string, len(c.EdgeProps)),
	}
	for label, props := range c.NodeProps {
		out.NodeProps[label] = append([]string(nil), props...)
	}
	for label, props := range c.EdgeProps {
		out.EdgeProps[label] = append([]string(nil), props...)
	}
	return out
}

// FromGraph infers a catalog from the labels and properties present in a
// graph instance.
func FromGraph(g pg.View) *Catalog {
	c := NewCatalog()
	for _, n := range g.Nodes() {
		for _, l := range n.Labels {
			props := make([]string, 0, len(n.Props))
			for k := range n.Props {
				props = append(props, k)
			}
			c.EnsureNode(l, props...)
		}
	}
	for _, e := range g.Edges() {
		props := make([]string, 0, len(e.Props))
		for k := range e.Props {
			props = append(props, k)
		}
		c.EnsureEdge(e.Label, props...)
	}
	return c
}

func ensure(m map[string][]string, label string, props []string) {
	existing := m[label]
	seen := map[string]bool{}
	for _, p := range existing {
		seen[p] = true
	}
	changed := false
	for _, p := range props {
		if !seen[p] {
			existing = append(existing, p)
			seen[p] = true
			changed = true
		}
	}
	if changed || m[label] == nil {
		sort.Strings(existing)
		if existing == nil {
			existing = []string{}
		}
		m[label] = existing
	}
}

// EnsureNode registers a node label with the given properties (merged with
// any already known, kept sorted).
func (c *Catalog) EnsureNode(label string, props ...string) { ensure(c.NodeProps, label, props) }

// EnsureEdge registers an edge label with the given properties.
func (c *Catalog) EnsureEdge(label string, props ...string) { ensure(c.EdgeProps, label, props) }

// HasNode reports whether the label is registered as a node label.
func (c *Catalog) HasNode(label string) bool { _, ok := c.NodeProps[label]; return ok }

// HasEdge reports whether the label is registered as an edge label.
func (c *Catalog) HasEdge(label string) bool { _, ok := c.EdgeProps[label]; return ok }

// NodeArity returns the relational arity of a node label: 1 (oid) + #props.
func (c *Catalog) NodeArity(label string) int { return 1 + len(c.NodeProps[label]) }

// EdgeArity returns the relational arity of an edge label:
// 3 (oid, from, to) + #props.
func (c *Catalog) EdgeArity(label string) int { return 3 + len(c.EdgeProps[label]) }

// nodePropPos returns the argument position of a property in the node
// relation, or -1.
func (c *Catalog) nodePropPos(label, prop string) int {
	for i, p := range c.NodeProps[label] {
		if p == prop {
			return 1 + i
		}
	}
	return -1
}

func (c *Catalog) edgePropPos(label, prop string) int {
	for i, p := range c.EdgeProps[label] {
		if p == prop {
			return 3 + i
		}
	}
	return -1
}

// ExtractFacts implements translation step (1) of Section 4: it loads a
// property-graph instance into a relational database instance following the
// catalog's column layout. Multi-labeled nodes produce one fact per label.
func ExtractFacts(g pg.View, cat *Catalog) (*vadalog.Database, error) {
	db := vadalog.NewDatabase()
	for _, n := range g.Nodes() {
		for _, l := range n.Labels {
			if !cat.HasNode(l) {
				continue // label outside the catalog's scope
			}
			props := cat.NodeProps[l]
			f := make([]value.Value, 1+len(props))
			f[0] = value.IntV(int64(n.ID))
			for i, pname := range props {
				if v, ok := n.Props[pname]; ok {
					f[i+1] = v
				} else {
					f[i+1] = Missing
				}
			}
			if _, err := db.AddFact(l, f...); err != nil {
				return nil, fmt.Errorf("metalog: extracting node %d: %w", n.ID, err)
			}
		}
	}
	for _, e := range g.Edges() {
		if !cat.HasEdge(e.Label) {
			continue
		}
		props := cat.EdgeProps[e.Label]
		f := make([]value.Value, 3+len(props))
		f[0] = value.IntV(int64(e.ID))
		f[1] = value.IntV(int64(e.From))
		f[2] = value.IntV(int64(e.To))
		for i, pname := range props {
			if v, ok := e.Props[pname]; ok {
				f[i+3] = v
			} else {
				f[i+3] = Missing
			}
		}
		if _, err := db.AddFact(e.Label, f...); err != nil {
			return nil, fmt.Errorf("metalog: extracting edge %d: %w", e.ID, err)
		}
	}
	return db, nil
}

// MaterializeStats reports what Materialize changed in the target graph.
type MaterializeStats struct {
	NodesCreated int
	NodesLabeled int
	EdgesCreated int
	PropsSet     int
}

// Materialize writes the derived node and edge facts of a reasoning result
// back into the property graph (the inverse of ExtractFacts, used to store
// the intensional component; Section 6). Facts whose OID is an existing node
// OID update that node; facts with Skolem/null OIDs create fresh nodes, one
// per distinct identifier. Edge facts are deduplicated against existing
// edges with the same label, endpoints and properties.
func Materialize(db *vadalog.Database, tr *Translation, cat *Catalog, g *pg.Graph) (MaterializeStats, error) {
	var stats MaterializeStats
	idMap := map[string]pg.OID{}

	resolveNode := func(v value.Value, createLabels []string) (pg.OID, bool, error) {
		if oid, ok := v.AsInt(); ok {
			if g.Node(pg.OID(oid)) != nil {
				return pg.OID(oid), false, nil
			}
			n, err := g.AddNodeWithID(pg.OID(oid), createLabels, nil)
			if err != nil {
				return 0, false, err
			}
			stats.NodesCreated++
			return n.ID, true, nil
		}
		key := v.Canonical()
		if oid, ok := idMap[key]; ok {
			return oid, false, nil
		}
		n := g.AddNode(createLabels, pg.Props{"_derivedOID": value.Str(key)})
		idMap[key] = n.ID
		stats.NodesCreated++
		return n.ID, true, nil
	}

	// Existing-edge fingerprints for deduplication.
	edgeSeen := map[string]bool{}
	edgeFingerprint := func(label string, from, to pg.OID, props pg.Props) string {
		keys := make([]string, 0, len(props))
		for k := range props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := fmt.Sprintf("%s|%d|%d", label, from, to)
		for _, k := range keys {
			s += "|" + k + "=" + props[k].Canonical()
		}
		return s
	}
	for _, e := range g.Edges() {
		edgeSeen[edgeFingerprint(e.Label, e.From, e.To, e.Props)] = true
	}

	nodeLabels := sortedKeys(tr.HeadNodeLabels)
	for _, label := range nodeLabels {
		props := cat.NodeProps[label]
		for _, f := range db.SortedFacts(label) {
			oid, created, err := resolveNode(f[0], []string{label})
			if err != nil {
				return stats, err
			}
			if !created {
				n := g.Node(oid)
				if !n.HasLabel(label) {
					if err := g.AddLabel(oid, label); err != nil {
						return stats, err
					}
					stats.NodesLabeled++
				}
			}
			n := g.Node(oid)
			for i, pname := range props {
				v := f[i+1]
				if value.Equal(v, Missing) || v.IsZero() {
					continue
				}
				if cur, ok := n.Props[pname]; !ok || !value.Equal(cur, v) {
					n.Props[pname] = v
					stats.PropsSet++
				}
			}
		}
	}

	// Apply in-place node updates (mtv_set_<Label> shadow predicates).
	updatePreds := make([]string, 0, len(tr.UpdateNodePreds))
	for p := range tr.UpdateNodePreds {
		updatePreds = append(updatePreds, p)
	}
	sort.Strings(updatePreds)
	for _, pred := range updatePreds {
		label := tr.UpdateNodePreds[pred]
		props := cat.NodeProps[label]
		for _, f := range db.SortedFacts(pred) {
			oid, ok := f[0].AsInt()
			if !ok || g.Node(pg.OID(oid)) == nil {
				return stats, fmt.Errorf("metalog: update of %s refers to unknown node %s", label, f[0])
			}
			n := g.Node(pg.OID(oid))
			for i, pname := range props {
				v := f[i+1]
				if value.Equal(v, Missing) || v.IsZero() {
					continue
				}
				if cur, ok := n.Props[pname]; !ok || !value.Equal(cur, v) {
					n.Props[pname] = v
					stats.PropsSet++
				}
			}
		}
	}

	edgeLabels := sortedKeys(tr.HeadEdgeLabels)
	for _, label := range edgeLabels {
		props := cat.EdgeProps[label]
		for _, f := range db.SortedFacts(label) {
			from, _, err := resolveNode(f[1], nil)
			if err != nil {
				return stats, err
			}
			to, _, err := resolveNode(f[2], nil)
			if err != nil {
				return stats, err
			}
			eprops := pg.Props{}
			for i, pname := range props {
				v := f[i+3]
				if value.Equal(v, Missing) || v.IsZero() {
					continue
				}
				eprops[pname] = v
			}
			fp := edgeFingerprint(label, from, to, eprops)
			if edgeSeen[fp] {
				continue
			}
			edgeSeen[fp] = true
			if _, err := g.AddEdge(from, to, label, eprops); err != nil {
				return stats, err
			}
			stats.EdgesCreated++
		}
	}
	return stats, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
