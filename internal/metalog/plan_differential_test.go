package metalog

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/pg"
	"repro/internal/vadalog"
)

// The planner differential sweep: every generated query must produce
// byte-identical rows whether the engine runs the written-order program or
// the cost-based transformation (join reordering + demand), at one worker
// and at eight. This is the acceptance gate of the query-planning refactor —
// the planner is a pure program transformation, never a semantics change.

// preparedRows runs a pattern through the planned path: statistics catalog,
// PrepareQuery, QueryDB against a fresh extraction.
func preparedRows(t *testing.T, f *pg.Frozen, pattern string, workers int) ([]QueryRow, *Prepared) {
	t.Helper()
	cat := FromGraph(f)
	st := ComputePlanStats(f, cat)
	prep, err := PrepareQuery(cat, pattern, st)
	if err != nil {
		t.Fatalf("prepare %q: %v", pattern, err)
	}
	if prep.Stale() {
		t.Fatalf("prepare %q: unexpectedly stale against its own catalog", pattern)
	}
	db, err := ExtractFacts(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := prep.QueryDB(context.Background(), db, vadalog.Options{Workers: workers, OwnInput: true})
	if err != nil {
		t.Fatalf("planned run %q: %v", pattern, err)
	}
	return rows, prep
}

func TestPlannedDifferentialSweep(t *testing.T) {
	for _, workers := range []int{1, 8} {
		queries, planned := 0, 0
		for seed := int64(0); seed < 10; seed++ {
			g := diffGraph(rand.New(rand.NewSource(seed)))
			f := g.Freeze()
			for _, q := range diffQueries {
				queries++
				want, err := Query(f, q, vadalog.Options{Workers: workers})
				if err != nil {
					t.Fatalf("seed %d, query %q: %v", seed, q, err)
				}
				got, prep := preparedRows(t, f, q, workers)
				if prep.Planned() {
					planned++
				}
				if w, g := renderRows(want), renderRows(got); w != g {
					t.Fatalf("workers=%d seed %d, query %q diverged:\nunplanned:\n%s\nplanned:\n%s",
						workers, seed, q, w, g)
				}
			}
		}
		if queries < 100 {
			t.Fatalf("sweep ran only %d queries; the acceptance gate requires >= 100", queries)
		}
		if planned == 0 {
			t.Fatal("no query of the sweep was actually planned; the differential is vacuous")
		}
		t.Logf("workers=%d: %d queries, %d planned", workers, queries, planned)
	}
}

// TestPreparedProvenanceUsesWrittenOrder proves provenance runs take the
// written-order program even when a planned one exists: proof trees must
// explain the program as written.
func TestPreparedProvenanceUsesWrittenOrder(t *testing.T) {
	g := diffGraph(rand.New(rand.NewSource(3)))
	f := g.Freeze()
	const q = `(x: Company; name: n) [: OWNS] (y: Company)`
	cat := FromGraph(f)
	st := ComputePlanStats(f, cat)
	prep, err := PrepareQuery(cat, q, st)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ExtractFacts(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := prep.QueryDB(context.Background(), db, vadalog.Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Query(f, q, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(rows) != renderRows(want) {
		t.Fatal("provenance run diverged from the written-order reference")
	}
}

// TestPreparedStaleDatabase proves a pattern that extends the catalog beyond
// the pre-extracted database reports ErrStaleDatabase from QueryDB, exactly
// like the shared-database path (QueryDBCtx).
func TestPreparedStaleDatabase(t *testing.T) {
	g := diffGraph(rand.New(rand.NewSource(5)))
	f := g.Freeze()
	cat := FromGraph(f)
	st := ComputePlanStats(f, cat)
	db, err := ExtractFacts(f, cat.Clone())
	if err != nil {
		t.Fatal(err)
	}
	prep, err := PrepareQuery(cat, `(x: NoSuchLabel)`, st)
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Stale() {
		t.Fatal("pattern over an unknown label should be stale")
	}
	if _, err := prep.QueryDB(context.Background(), db, vadalog.Options{}); err == nil {
		t.Fatal("stale prepared query should refuse the pre-extracted database")
	}
}
