package metalog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vadalog"
	"repro/internal/value"
)

// The concrete MetaLog grammar:
//
//	program   := (rule | annotation)*
//	rule      := body "->" head "."
//	body      := bodyElem ("," bodyElem)*
//	bodyElem  := "not" chain | chain | expr
//	head      := chain ("," chain)*
//	chain     := nodeAtom (pathExpr nodeAtom)*
//	nodeAtom  := "(" [ident] [":" label] [";" props] ")"
//	edgeAtom  := "[" [ident] [":" label] [";" props] "]" ["-"]
//	pathExpr  := pathFactor+                        (juxtaposition = concat)
//	pathFactor:= edgeAtom | "(" groupExpr ")" ["-"|"*"|"+"]
//	groupExpr := groupSeq ("|" groupSeq)*
//	groupSeq  := groupItem (["."] groupItem)*       ("." optional, as in the paper)
//	groupItem := edgeAtom | "(" groupExpr ")" ["-"|"*"|"+"]
//	ident     := VAR | "#" functor "(" VAR ("," VAR)* ")"
//	props     := prop ("," prop)*
//	prop      := NAME ":" (VAR | literal)
//
// The "." concatenation separator is accepted only inside parenthesized
// groups, where it cannot collide with the rule terminator.

type mtoken struct {
	kind tokenKind
	text string
	line int
}

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct
)

func lexMetaLog(src string) ([]mtoken, error) {
	var toks []mtoken
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			toks = append(toks, mtoken{tokIdent, src[start:i], line})
		case c >= '0' && c <= '9':
			start := i
			i++
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i+1 < len(src) && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				i++
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			toks = append(toks, mtoken{tokNumber, src[start:i], line})
		case c == '"':
			start := i
			i++
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' {
					i++
				}
				if i < len(src) && src[i] == '\n' {
					return nil, fmt.Errorf("line %d: unterminated string", line)
				}
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated string", line)
			}
			i++
			toks = append(toks, mtoken{tokString, src[start:i], line})
		default:
			matched := false
			for _, op := range []string{"->", "!=", "<=", ">=", "=="} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, mtoken{tokPunct, op, line})
					i += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("()[]{};:,.<>=+-*/|#@", rune(c)) {
				toks = append(toks, mtoken{tokPunct, string(c), line})
				i++
				continue
			}
			return nil, fmt.Errorf("line %d: unexpected character %q", line, string(c))
		}
	}
	toks = append(toks, mtoken{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

type parser struct {
	toks []mtoken
	pos  int
}

// Parse parses a MetaLog program from its textual form.
func Parse(src string) (*Program, error) {
	toks, err := lexMetaLog(src)
	if err != nil {
		return nil, fmt.Errorf("metalog: %w", err)
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		if p.peek().kind == tokPunct && p.peek().text == "@" {
			// Annotations share the Vadalog syntax exactly.
			ann, err := p.parseAnnotation()
			if err != nil {
				return nil, fmt.Errorf("metalog: %w", err)
			}
			prog.Annotations = append(prog.Annotations, ann)
			continue
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, fmt.Errorf("metalog: %w", err)
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

// MustParse panics on syntax errors; it is used for the framework's embedded
// mapping programs, where a failure indicates a bug.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) peek() mtoken { return p.toks[p.pos] }
func (p *parser) peekAt(n int) mtoken {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return mtoken{kind: tokEOF}
}
func (p *parser) advance() mtoken {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) expect(text string) (mtoken, error) {
	t := p.advance()
	if t.kind != tokPunct || t.text != text {
		return t, fmt.Errorf("line %d: expected %q, got %q", t.line, text, t.text)
	}
	return t, nil
}
func (p *parser) at(text string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == text
}

func (p *parser) parseAnnotation() (vadalog.Annotation, error) {
	if _, err := p.expect("@"); err != nil {
		return vadalog.Annotation{}, err
	}
	name := p.advance()
	if name.kind != tokIdent {
		return vadalog.Annotation{}, fmt.Errorf("line %d: expected annotation name", name.line)
	}
	ann := vadalog.Annotation{Name: name.text, Line: name.line}
	if _, err := p.expect("("); err != nil {
		return vadalog.Annotation{}, err
	}
	for {
		t := p.advance()
		switch t.kind {
		case tokString:
			s, err := strconv.Unquote(t.text)
			if err != nil {
				return vadalog.Annotation{}, fmt.Errorf("line %d: bad string %s", t.line, t.text)
			}
			ann.Args = append(ann.Args, s)
		case tokIdent, tokNumber:
			ann.Args = append(ann.Args, t.text)
		default:
			return vadalog.Annotation{}, fmt.Errorf("line %d: expected annotation argument, got %q", t.line, t.text)
		}
		t = p.advance()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == ")" {
			break
		}
		return vadalog.Annotation{}, fmt.Errorf("line %d: expected , or ) in annotation", t.line)
	}
	if _, err := p.expect("."); err != nil {
		return vadalog.Annotation{}, err
	}
	return ann, nil
}

func (p *parser) parseRule() (Rule, error) {
	line := p.peek().line
	r := Rule{Line: line}
	for {
		elem, err := p.parseBodyElem()
		if err != nil {
			return Rule{}, err
		}
		r.Body = append(r.Body, elem)
		if p.at(",") {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect("->"); err != nil {
		return Rule{}, err
	}
	for {
		ch, err := p.parseChain()
		if err != nil {
			return Rule{}, err
		}
		if err := validateHeadChain(ch, line); err != nil {
			return Rule{}, err
		}
		r.Head = append(r.Head, ch)
		if p.at(",") {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect("."); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// validateHeadChain enforces that head path patterns are single edge steps:
// heads construct nodes and edges, they do not navigate.
func validateHeadChain(ch Chain, line int) error {
	for _, pe := range ch.Paths {
		st, ok := pe.(Step)
		if !ok {
			return fmt.Errorf("line %d: head path patterns must be single edge atoms, got %s", line, pe)
		}
		if st.Edge.Inverse {
			return fmt.Errorf("line %d: head edge atoms cannot be inverted", line)
		}
	}
	return nil
}

func (p *parser) parseBodyElem() (BodyElem, error) {
	t := p.peek()
	if t.kind == tokIdent && t.text == "not" && p.peekAt(1).kind == tokPunct && p.peekAt(1).text == "(" {
		p.advance()
		ch, err := p.parseChain()
		if err != nil {
			return BodyElem{}, err
		}
		if len(ch.Paths) > 1 {
			return BodyElem{}, fmt.Errorf("line %d: negated patterns must be a single node atom or edge step", t.line)
		}
		return BodyElem{Kind: BodyNegChain, Chain: ch}, nil
	}
	if t.kind == tokPunct && t.text == "(" {
		// Could be a node atom or a parenthesized expression; try the node
		// atom first and backtrack on failure.
		save := p.pos
		ch, err := p.parseChain()
		if err == nil {
			return BodyElem{Kind: BodyChain, Chain: ch}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return BodyElem{}, err
	}
	return BodyElem{Kind: BodyExpr, Expr: e}, nil
}

// parseChain parses nodeAtom (pathExpr nodeAtom)*.
func (p *parser) parseChain() (Chain, error) {
	n0, err := p.parseNodeAtom()
	if err != nil {
		return Chain{}, err
	}
	ch := Chain{Nodes: []NodeAtom{n0}}
	for {
		// A path factor begins with "[" or with "(" that opens a group; the
		// latter is distinguished from a following node atom by attempting
		// the path parse with backtracking.
		if p.at("[") {
			pe, err := p.parsePathExpr()
			if err != nil {
				return Chain{}, err
			}
			n, err := p.parseNodeAtom()
			if err != nil {
				return Chain{}, err
			}
			ch.Paths = append(ch.Paths, pe)
			ch.Nodes = append(ch.Nodes, n)
			continue
		}
		if p.at("(") {
			save := p.pos
			pe, err := p.parsePathExpr()
			if err == nil {
				n, nerr := p.parseNodeAtom()
				if nerr == nil {
					ch.Paths = append(ch.Paths, pe)
					ch.Nodes = append(ch.Nodes, n)
					continue
				}
			}
			p.pos = save
		}
		return ch, nil
	}
}

// parsePathExpr parses one or more juxtaposed path factors (top level).
func (p *parser) parsePathExpr() (PathExpr, error) {
	var parts []PathExpr
	for {
		if p.at("[") {
			e, err := p.parseEdgeAtom()
			if err != nil {
				return nil, err
			}
			parts = append(parts, Step{Edge: e})
		} else if p.at("(") {
			// A group is only a path group if it starts a group expression,
			// not a node atom; try and backtrack.
			save := p.pos
			g, err := p.parseGroup()
			if err != nil {
				p.pos = save
				break
			}
			parts = append(parts, g)
		} else {
			break
		}
		if len(parts) > 0 && !p.at("[") && !p.at("(") {
			break
		}
		// A "(" here might open the next node atom rather than another
		// factor; peek inside: a group starts with "[" or "(".
		if p.at("(") {
			inner := p.peekAt(1)
			if !(inner.kind == tokPunct && (inner.text == "[" || inner.text == "(")) {
				break
			}
		}
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("line %d: expected path expression", p.peek().line)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Concat{Parts: parts}, nil
}

// parseGroup parses "(" groupExpr ")" with optional postfix "-", "*", "+".
func (p *parser) parseGroup() (PathExpr, error) {
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	inner, err := p.parseGroupExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at("*"):
			p.advance()
			inner = Repeat{Inner: inner, Plus: false}
		case p.at("+"):
			p.advance()
			inner = Repeat{Inner: inner, Plus: true}
		case p.at("-"):
			// Postfix "-" after a group is inversion only when not followed
			// by a term (which would make it binary minus); inside path
			// context this is unambiguous.
			p.advance()
			inner = Inv{Inner: inner}
		default:
			return inner, nil
		}
	}
}

// parseGroupExpr parses alternation of sequences inside a group; "." is an
// optional concatenation separator here, as in the paper's notation.
func (p *parser) parseGroupExpr() (PathExpr, error) {
	var branches []PathExpr
	for {
		seq, err := p.parseGroupSeq()
		if err != nil {
			return nil, err
		}
		branches = append(branches, seq)
		if p.at("|") {
			p.advance()
			continue
		}
		break
	}
	if len(branches) == 1 {
		return branches[0], nil
	}
	return Alt{Branches: branches}, nil
}

func (p *parser) parseGroupSeq() (PathExpr, error) {
	var parts []PathExpr
	for {
		if p.at(".") {
			p.advance()
			continue
		}
		if p.at("[") {
			e, err := p.parseEdgeAtom()
			if err != nil {
				return nil, err
			}
			parts = append(parts, Step{Edge: e})
			continue
		}
		if p.at("(") {
			g, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			parts = append(parts, g)
			continue
		}
		break
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("line %d: empty path group", p.peek().line)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Concat{Parts: parts}, nil
}

func (p *parser) parseNodeAtom() (NodeAtom, error) {
	if _, err := p.expect("("); err != nil {
		return NodeAtom{}, err
	}
	n := NodeAtom{}
	var err error
	n.ID, n.Label, n.Props, err = p.parseAtomInner(")")
	if err != nil {
		return NodeAtom{}, err
	}
	return n, nil
}

func (p *parser) parseEdgeAtom() (EdgeAtom, error) {
	if _, err := p.expect("["); err != nil {
		return EdgeAtom{}, err
	}
	e := EdgeAtom{}
	var err error
	e.ID, e.Label, e.Props, err = p.parseAtomInner("]")
	if err != nil {
		return EdgeAtom{}, err
	}
	if p.at("-") {
		// Inversion only if the "-" is not the start of an arithmetic
		// expression; after "]" in path position it always is inversion.
		p.advance()
		e.Inverse = true
	}
	return e, nil
}

// parseAtomInner parses [ident] [":" label] [";" props] up to the closing
// delimiter.
func (p *parser) parseAtomInner(closer string) (Ident, string, []PropBinding, error) {
	var id Ident
	var label string
	var props []PropBinding

	// Identifier (variable or Skolem) if present.
	if p.peek().kind == tokIdent {
		id.Var = p.advance().text
	} else if p.at("#") {
		p.advance()
		fn := p.advance()
		if fn.kind != tokIdent {
			return id, "", nil, fmt.Errorf("line %d: expected Skolem functor name", fn.line)
		}
		id.Functor = fn.text
		if _, err := p.expect("("); err != nil {
			return id, "", nil, err
		}
		for {
			v := p.advance()
			if v.kind != tokIdent {
				return id, "", nil, fmt.Errorf("line %d: Skolem arguments must be variables", v.line)
			}
			id.SkArgs = append(id.SkArgs, v.text)
			t := p.advance()
			if t.kind == tokPunct && t.text == "," {
				continue
			}
			if t.kind == tokPunct && t.text == ")" {
				break
			}
			return id, "", nil, fmt.Errorf("line %d: expected , or ) in Skolem term", t.line)
		}
	}

	if p.at(":") {
		p.advance()
		lt := p.advance()
		if lt.kind != tokIdent {
			return id, "", nil, fmt.Errorf("line %d: expected label after :, got %q", lt.line, lt.text)
		}
		label = lt.text
	}

	if p.at(";") {
		p.advance()
		for {
			name := p.advance()
			if name.kind != tokIdent {
				return id, "", nil, fmt.Errorf("line %d: expected property name, got %q", name.line, name.text)
			}
			if _, err := p.expect(":"); err != nil {
				return id, "", nil, err
			}
			pb := PropBinding{Name: name.text}
			t := p.advance()
			switch t.kind {
			case tokIdent:
				switch t.text {
				case "true":
					pb.IsConst, pb.Const = true, value.BoolV(true)
				case "false":
					pb.IsConst, pb.Const = true, value.BoolV(false)
				default:
					pb.Var = t.text
				}
			case tokString:
				s, err := strconv.Unquote(t.text)
				if err != nil {
					return id, "", nil, fmt.Errorf("line %d: bad string %s", t.line, t.text)
				}
				pb.IsConst, pb.Const = true, value.Str(s)
			case tokNumber:
				v, err := value.ParseLiteral(t.text)
				if err != nil {
					return id, "", nil, fmt.Errorf("line %d: %v", t.line, err)
				}
				pb.IsConst, pb.Const = true, v
			case tokPunct:
				if t.text == "-" {
					num := p.advance()
					if num.kind != tokNumber {
						return id, "", nil, fmt.Errorf("line %d: expected number after -", num.line)
					}
					v, err := value.ParseLiteral("-" + num.text)
					if err != nil {
						return id, "", nil, fmt.Errorf("line %d: %v", num.line, err)
					}
					pb.IsConst, pb.Const = true, v
					break
				}
				return id, "", nil, fmt.Errorf("line %d: expected property value, got %q", t.line, t.text)
			default:
				return id, "", nil, fmt.Errorf("line %d: expected property value", t.line)
			}
			props = append(props, pb)
			t = p.peek()
			if t.kind == tokPunct && t.text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(closer); err != nil {
		return id, "", nil, err
	}
	return id, label, props, nil
}

// Expression parsing mirrors the Vadalog expression grammar, producing
// vadalog.Expr nodes directly so MTV can reuse them unchanged.

var binaryPrec = map[string]int{
	"or": 1, "and": 2,
	"=": 3, "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5,
}

var aggregateOps = map[string]string{
	"sum": "sum", "count": "count", "min": "min", "max": "max",
	"avg": "avg", "prod": "prod", "pack": "pack",
	"msum": "sum", "mcount": "count", "mmin": "min", "mmax": "max", "mprod": "prod",
}

func (p *parser) parseExpr(minPrec int) (*vadalog.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		if t.kind == tokPunct {
			op = t.text
		} else if t.kind == tokIdent && (t.text == "and" || t.text == "or") {
			op = t.text
		} else {
			return left, nil
		}
		prec, ok := binaryPrec[op]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &vadalog.Expr{Kind: vadalog.ExprBinary, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (*vadalog.Expr, error) {
	t := p.peek()
	if t.kind == tokPunct && t.text == "-" {
		p.advance()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &vadalog.Expr{Kind: vadalog.ExprUnary, Op: "-", Left: operand}, nil
	}
	if t.kind == tokIdent && t.text == "not" {
		p.advance()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &vadalog.Expr{Kind: vadalog.ExprUnary, Op: "not", Left: operand}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*vadalog.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokString:
		p.advance()
		s, err := strconv.Unquote(t.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad string %s", t.line, t.text)
		}
		return &vadalog.Expr{Kind: vadalog.ExprConst, Val: value.Str(s)}, nil
	case t.kind == tokNumber:
		p.advance()
		v, err := value.ParseLiteral(t.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", t.line, err)
		}
		return &vadalog.Expr{Kind: vadalog.ExprConst, Val: v}, nil
	case t.kind == tokIdent:
		switch t.text {
		case "true":
			p.advance()
			return &vadalog.Expr{Kind: vadalog.ExprConst, Val: value.BoolV(true)}, nil
		case "false":
			p.advance()
			return &vadalog.Expr{Kind: vadalog.ExprConst, Val: value.BoolV(false)}, nil
		}
		if p.peekAt(1).kind == tokPunct && p.peekAt(1).text == "(" {
			return p.parseCallOrAggregate()
		}
		p.advance()
		return &vadalog.Expr{Kind: vadalog.ExprVar, Name: t.text}, nil
	default:
		return nil, fmt.Errorf("line %d: expected expression, got %q", t.line, t.text)
	}
}

func (p *parser) parseCallOrAggregate() (*vadalog.Expr, error) {
	name := p.advance()
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	canonical, isAgg := aggregateOps[name.text]
	if isAgg {
		return p.parseAggregate(name, canonical)
	}
	call := &vadalog.Expr{Kind: vadalog.ExprCall, Name: name.text}
	if p.at(")") {
		p.advance()
		return call, nil
	}
	for {
		arg, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		t := p.advance()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == ")" {
			return call, nil
		}
		return nil, fmt.Errorf("line %d: expected , or ) in call", t.line)
	}
}

func (p *parser) parseAggregate(name mtoken, canonical string) (*vadalog.Expr, error) {
	agg := &vadalog.Aggregate{Op: canonical}
	for {
		if p.at(")") {
			p.advance()
			break
		}
		if p.at("<") {
			p.advance()
			for {
				v := p.advance()
				if v.kind != tokIdent {
					return nil, fmt.Errorf("line %d: expected contributor variable", v.line)
				}
				agg.Contributors = append(agg.Contributors, v.text)
				sep := p.advance()
				if sep.kind == tokPunct && sep.text == "," {
					continue
				}
				if sep.kind == tokPunct && sep.text == ">" {
					break
				}
				return nil, fmt.Errorf("line %d: expected , or > in contributor list", sep.line)
			}
			continue
		}
		arg, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if agg.Arg == nil {
			agg.Arg = arg
		} else if agg.Arg2 == nil {
			agg.Arg2 = arg
		} else {
			return nil, fmt.Errorf("line %d: aggregate %s has too many arguments", name.line, name.text)
		}
		if p.at(",") {
			p.advance()
		}
	}
	if strings.HasPrefix(name.text, "m") && name.text != "min" && name.text != "max" && len(agg.Contributors) == 0 {
		return nil, fmt.Errorf("line %d: monotonic aggregate %s requires contributors", name.line, name.text)
	}
	return &vadalog.Expr{Kind: vadalog.ExprAggregate, Agg: agg}, nil
}
