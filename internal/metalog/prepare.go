package metalog

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/pg"
	"repro/internal/plan"
	"repro/internal/vadalog"
)

// Prepared is a compiled query: the pattern parsed, translated and — when
// the statistics catalog admits it — planned once, to be run many times
// against databases extracted under the same catalog. This is the serving
// layer's plan-cache entry: after PrepareQuery returns, a Prepared is
// immutable and safe for concurrent QueryDB calls (the engine never mutates
// the program, and clones the database unless opts.OwnInput is set).
type Prepared struct {
	pattern string
	vars    []string
	cat     *Catalog

	// unplanned is the written-order translation; planned is the cost-based
	// transformation of it, nil when planning fell back entirely (the info
	// plan then names why).
	unplanned *vadalog.Program
	planned   *vadalog.Program
	info      *plan.Plan
	estRows   float64

	stale bool
}

// PlanLayout exports the catalog's column layouts in the planner's terms:
// node relations are (oid, props...), edge relations (oid, from, to,
// props...), properties in catalog order. The maps and slices are copies —
// later catalog growth does not reach a Layout already handed out.
func (c *Catalog) PlanLayout() plan.Layout {
	lay := plan.Layout{
		NodeProps: make(map[string][]string, len(c.NodeProps)),
		EdgeProps: make(map[string][]string, len(c.EdgeProps)),
	}
	for l, ps := range c.NodeProps {
		lay.NodeProps[l] = append([]string(nil), ps...)
	}
	for l, ps := range c.EdgeProps {
		lay.EdgeProps[l] = append([]string(nil), ps...)
	}
	return lay
}

// ComputePlanStats builds the planner's statistics catalog for a graph view
// under its MetaLog catalog — the cheap per-generation pass the serving
// layer runs at snapshot-build time.
func ComputePlanStats(g pg.View, cat *Catalog) *plan.Stats {
	return plan.ComputeStats(g, cat.PlanLayout())
}

// PrepareQuery parses, translates and plans a pattern against cat. The
// catalog is extended with the query-result layout (and any layouts the
// pattern introduces) and must be private to the Prepared — Catalog.Clone a
// shared one. A nil stats catalog skips planning: the Prepared still works,
// reporting an unplanned Plan. Planning never fails a query: any planner
// fault or unsupported shape falls back to the written-order program,
// recorded in Plan().Fallback and the obs fallback counter.
func PrepareQuery(cat *Catalog, pattern string, st *plan.Stats) (*Prepared, error) {
	nodeW := layoutWidths(cat.NodeProps)
	edgeW := layoutWidths(cat.EdgeProps)
	tr, vars, err := buildQueryProgram(pattern, cat)
	if err != nil {
		return nil, err
	}
	p := &Prepared{
		pattern:   pattern,
		vars:      vars,
		cat:       cat,
		unplanned: tr.Program,
		stale:     catalogGrew(cat, nodeW, edgeW),
	}
	planned, info, perr := plan.Compile(tr.Program, st, plan.Options{Demand: true})
	if perr != nil {
		obs.CountPlanFallback()
		p.info = plan.Unplanned("planning failed: " + perr.Error())
		return p, nil
	}
	p.info = info
	if info.Planned {
		p.planned = planned
		p.estRows = info.OutputEst(queryResultLabel)
	} else {
		obs.CountPlanFallback()
	}
	return p, nil
}

// Plan returns the explain output of the prepare-time planning pass.
func (p *Prepared) Plan() *plan.Plan { return p.info }

// Planned reports whether QueryDB executes the cost-based transformation
// (true) or the written-order program (false).
func (p *Prepared) Planned() bool { return p.planned != nil }

// Vars returns the pattern's named variables, sorted — the result columns.
func (p *Prepared) Vars() []string { return p.vars }

// EstimatedRows is the planner's cardinality estimate for the result set;
// 0 when unplanned.
func (p *Prepared) EstimatedRows() float64 { return p.estRows }

// Stale reports that the pattern needs catalog layouts beyond the ones a
// pre-extracted database was built with; QueryDB will fail with
// ErrStaleDatabase and the caller must re-extract (see QueryWithCatalogCtx).
func (p *Prepared) Stale() bool { return p.stale }

// QueryDB evaluates the prepared pattern against a pre-extracted fact
// database (see ExtractFacts), running the planned program when one exists.
// Provenance runs always take the written-order program — proof trees are
// explained against the program as written.
func (p *Prepared) QueryDB(ctx context.Context, db *vadalog.Database, opts vadalog.Options) ([]QueryRow, error) {
	if p.stale {
		return nil, fmt.Errorf("prepared pattern: %w", ErrStaleDatabase)
	}
	prog := p.planned
	planned := prog != nil && !opts.Provenance
	if !planned {
		prog = p.unplanned
	}
	rows, err := runQueryProgram(ctx, prog, p.vars, db, p.cat, opts)
	if err != nil {
		return nil, err
	}
	obs.CountPlanRun(planned, int64(p.estRows), int64(len(rows)))
	return rows, nil
}

// layoutWidths snapshots the arity of every label's layout, for the
// staleness check PrepareQuery shares with QueryDBCtx.
func layoutWidths(m map[string][]string) map[string]int {
	out := make(map[string]int, len(m))
	for l, ps := range m {
		out[l] = len(ps)
	}
	return out
}

// catalogGrew reports whether translation extended cat beyond the recorded
// widths (ignoring the query-result layout, which every query adds).
func catalogGrew(cat *Catalog, nodeW, edgeW map[string]int) bool {
	for l, ps := range cat.NodeProps {
		if l == queryResultLabel {
			continue
		}
		if w, ok := nodeW[l]; !ok || len(ps) != w {
			return true
		}
	}
	for l, ps := range cat.EdgeProps {
		if w, ok := edgeW[l]; !ok || len(ps) != w {
			return true
		}
	}
	return false
}
