package metalog

import (
	"strings"
	"testing"

	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

func TestParseControlRule(t *testing.T) {
	// Example 4.1 of the paper, in the textual syntax.
	src := `
		(x: Business) -> (x) [c: CONTROLS] (x).
		(x: Business) [: CONTROLS] (z: Business) [: OWNS; percentage: w] (y: Business),
			v = sum(w, <z>), v > 0.5
			-> (x) [c: CONTROLS] (y).
	`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("expected 2 rules, got %d", len(prog.Rules))
	}
	r := prog.Rules[1]
	if len(r.Body) != 3 {
		t.Fatalf("rule 2 body: expected 3 conjuncts, got %d: %v", len(r.Body), r)
	}
	if r.Body[0].Kind != BodyChain {
		t.Errorf("first conjunct should be a chain")
	}
	ch := r.Body[0].Chain
	if len(ch.Nodes) != 3 || len(ch.Paths) != 2 {
		t.Fatalf("chain shape: %d nodes, %d paths", len(ch.Nodes), len(ch.Paths))
	}
	if ch.Nodes[0].Label != "Business" || ch.Nodes[0].ID.Var != "x" {
		t.Errorf("first node atom = %v", ch.Nodes[0])
	}
	step, ok := ch.Paths[1].(Step)
	if !ok {
		t.Fatalf("second path should be a single step")
	}
	if step.Edge.Label != "OWNS" || len(step.Edge.Props) != 1 || step.Edge.Props[0].Name != "percentage" {
		t.Errorf("OWNS edge atom = %v", step.Edge)
	}
}

func TestParseDescFrom(t *testing.T) {
	// Example 4.3 of the paper.
	src := `(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])* (y: SM_Node) -> (x) [w: DESCFROM] (y).`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ch := prog.Rules[0].Body[0].Chain
	if len(ch.Paths) != 1 {
		t.Fatalf("expected one path, got %d", len(ch.Paths))
	}
	rep, ok := ch.Paths[0].(Repeat)
	if !ok || rep.Plus {
		t.Fatalf("path should be a zero-or-more repeat, got %v", ch.Paths[0])
	}
	cc, ok := rep.Inner.(Concat)
	if !ok || len(cc.Parts) != 2 {
		t.Fatalf("repeat inner should be a 2-concat, got %v", rep.Inner)
	}
	first, ok := cc.Parts[0].(Step)
	if !ok || !first.Edge.Inverse || first.Edge.Label != "SM_CHILD" {
		t.Errorf("first concat part = %v", cc.Parts[0])
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		`(x: Business) -> (x) [c: CONTROLS] (x).`,
		`(x: A) ([: R]- . [: S])* (y: B) -> (x) [w: D] (y).`,
		`(x: A) ([: R] | [: S]) (y: B) -> (x) [w: D] (y).`,
		`(x: A; name: n), n != "bad" -> (#sk(x): C; name: n).`,
		`(x: A), not (x) [: R] (x) -> (x: Loop2).`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := p1.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, printed, err)
		}
		if p2.String() != printed {
			t.Errorf("round trip mismatch:\n%s\nvs\n%s", printed, p2.String())
		}
	}
}

func buildShareGraph(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.New()
	biz := func(name string) pg.OID {
		n := g.AddNode([]string{"Business"}, pg.Props{"name": value.Str(name)})
		return n.ID
	}
	a, b, c, d := biz("a"), biz("b"), biz("c"), biz("d")
	own := func(x, y pg.OID, w float64) {
		g.MustAddEdge(x, y, "OWNS", pg.Props{"percentage": value.FloatV(w)})
	}
	own(a, b, 0.6)
	own(a, c, 0.3)
	own(b, c, 0.3)
	own(c, d, 0.4)
	return g
}

// TestExample41ControlMetaLog runs the paper's Example 4.1 end to end:
// MetaLog source -> MTV -> Vadalog engine -> materialization into the graph.
func TestExample41ControlMetaLog(t *testing.T) {
	prog := MustParse(`
		(x: Business) -> (x) [c: CONTROLS] (x).
		(x: Business) [: CONTROLS] (z: Business) [: OWNS; percentage: w] (y: Business),
			v = sum(w, <z>), v > 0.5
			-> (x) [c: CONTROLS] (y).
	`)
	g := buildShareGraph(t)
	res, err := Reason(prog, g, vadalog.Options{})
	if err != nil {
		t.Fatalf("reason: %v", err)
	}
	names := map[pg.OID]string{}
	for _, n := range g.NodesByLabel("Business") {
		names[n.ID] = n.Props["name"].S
	}
	got := map[string]bool{}
	for _, e := range g.EdgesByLabel("CONTROLS") {
		got[names[e.From]+"->"+names[e.To]] = true
	}
	for _, want := range []string{"a->a", "b->b", "c->c", "d->d", "a->b", "a->c"} {
		if !got[want] {
			t.Errorf("missing control edge %s (got %v)", want, got)
		}
	}
	if len(got) != 6 {
		t.Errorf("expected 6 control edges, got %d: %v", len(got), got)
	}
	if res.Materialize.EdgesCreated != 6 {
		t.Errorf("EdgesCreated = %d, want 6", res.Materialize.EdgesCreated)
	}
	if res.ReasonDuration <= 0 || res.LoadDuration <= 0 {
		t.Errorf("phase durations should be positive")
	}
}

// TestExample44Translation checks the structure of the Vadalog program MTV
// produces for the DESCFROM rule of Example 4.3, mirroring Example 4.4: the
// inversion, concatenation and Kleene operators become β rules, and @input
// annotations describe the graph extraction.
func TestExample44Translation(t *testing.T) {
	prog := MustParse(`(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])+ (y: SM_Node) -> (x) [w: DESCFROM] (y).`)
	cat := NewCatalog()
	tr, err := Translate(prog, cat)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if len(tr.HelperPreds) != 1 || !strings.HasPrefix(tr.HelperPreds[0], "mtv_closure_") {
		t.Fatalf("expected one closure helper, got %v", tr.HelperPreds)
	}
	beta := tr.HelperPreds[0]
	// Expect: 1 main rule + 2 β rules (base and step), as in Example 4.4.
	if len(tr.Program.Rules) != 3 {
		t.Fatalf("expected 3 Vadalog rules, got %d:\n%s", len(tr.Program.Rules), tr.Program)
	}
	var betaRules int
	for _, r := range tr.Program.Rules {
		for _, h := range r.Head {
			if h.Pred == beta {
				betaRules++
			}
		}
	}
	if betaRules != 2 {
		t.Errorf("expected 2 β rules, got %d", betaRules)
	}
	// The base β rule must traverse SM_CHILD inverted: the closure's source
	// endpoint appears in the child (to) position of SM_CHILD.
	var sawInput bool
	for _, a := range tr.Program.Annotations {
		if a.Name == "input" && a.Args[0] == "SM_CHILD" {
			sawInput = true
		}
	}
	if !sawInput {
		t.Errorf("missing @input annotation for SM_CHILD:\n%s", tr.Program)
	}
	if len(tr.Program.Outputs()) != 1 || tr.Program.Outputs()[0] != "DESCFROM" {
		t.Errorf("outputs = %v", tr.Program.Outputs())
	}
}

// TestExample43DescFrom runs the DESCFROM pattern on a small generalization
// dictionary: Person <- LegalPerson <- Business.
func TestExample43DescFrom(t *testing.T) {
	g := pg.New()
	node := func(name string) pg.OID {
		return g.AddNode([]string{"SM_Node"}, pg.Props{"name": value.Str(name)}).ID
	}
	person, legal, business := node("Person"), node("LegalPerson"), node("Business")
	gen1 := g.AddNode([]string{"SM_Generalization"}, nil).ID
	gen2 := g.AddNode([]string{"SM_Generalization"}, nil).ID
	g.MustAddEdge(gen1, person, "SM_PARENT", nil)
	g.MustAddEdge(gen1, legal, "SM_CHILD", nil)
	g.MustAddEdge(gen2, legal, "SM_PARENT", nil)
	g.MustAddEdge(gen2, business, "SM_CHILD", nil)

	prog := MustParse(`(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])+ (y: SM_Node) -> (x) [w: DESCFROM] (y).`)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatalf("reason: %v", err)
	}
	names := map[pg.OID]string{}
	for _, n := range g.NodesByLabel("SM_Node") {
		names[n.ID] = n.Props["name"].S
	}
	got := map[string]bool{}
	for _, e := range g.EdgesByLabel("DESCFROM") {
		got[names[e.From]+"->"+names[e.To]] = true
	}
	want := []string{"LegalPerson->Person", "Business->LegalPerson", "Business->Person"}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing DESCFROM %s; got %v", w, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("DESCFROM edges = %v", got)
	}
}

func TestZeroOrMoreIncludesSelf(t *testing.T) {
	g := pg.New()
	a := g.AddNode([]string{"N"}, nil).ID
	b := g.AddNode([]string{"N"}, nil).ID
	g.MustAddEdge(a, b, "R", nil)
	prog := MustParse(`(x: N) ([: R])* (y: N) -> (x) [e: REACH] (y).`)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatalf("reason: %v", err)
	}
	got := map[string]bool{}
	for _, e := range g.EdgesByLabel("REACH") {
		got[edgeKey(e)] = true
	}
	// a*->a, b*->b (zero steps) and a->b (one step).
	if len(got) != 3 {
		t.Errorf("expected 3 REACH edges (2 reflexive + 1), got %d: %v", len(got), got)
	}
}

func edgeKey(e *pg.Edge) string {
	return e.Label + ":" + string(rune('0'+int(e.From))) + "->" + string(rune('0'+int(e.To)))
}

func TestAlternation(t *testing.T) {
	g := pg.New()
	a := g.AddNode([]string{"N"}, nil).ID
	b := g.AddNode([]string{"N"}, nil).ID
	c := g.AddNode([]string{"N"}, nil).ID
	g.MustAddEdge(a, b, "R", nil)
	g.MustAddEdge(a, c, "S", nil)
	prog := MustParse(`(x: N) ([: R] | [: S]) (y: N) -> (x) [e: EITHER] (y).`)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatalf("reason: %v", err)
	}
	if n := len(g.EdgesByLabel("EITHER")); n != 2 {
		t.Errorf("expected 2 EITHER edges, got %d", n)
	}
}

func TestInversePattern(t *testing.T) {
	g := pg.New()
	a := g.AddNode([]string{"N"}, nil).ID
	b := g.AddNode([]string{"N"}, nil).ID
	g.MustAddEdge(a, b, "R", nil)
	prog := MustParse(`(x: N) [: R]- (y: N) -> (x) [e: INV] (y).`)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatalf("reason: %v", err)
	}
	edges := g.EdgesByLabel("INV")
	if len(edges) != 1 || edges[0].From != b || edges[0].To != a {
		t.Errorf("INV edges = %+v (want one b->a)", edges)
	}
}

func TestRepeatInRecursiveProgramRejected(t *testing.T) {
	// CONTROLS depends on itself and the rule uses a repetition: the
	// decidability condition of Section 4 forbids this combination.
	prog := MustParse(`
		(x: B) ([: CONTROLS])+ (z: B) [: OWNS] (y: B) -> (x) [c: CONTROLS] (y).
	`)
	if _, err := Translate(prog, NewCatalog()); err == nil {
		t.Fatal("recursive program with repetition must be rejected")
	}
}

func TestGroupVariableBindingRejected(t *testing.T) {
	prog := MustParse(`(x: N) ([e: R])+ (y: N) -> (x) [w: D] (y).`)
	if _, err := Translate(prog, NewCatalog()); err == nil {
		t.Fatal("variable binding inside a repeated group must be rejected")
	}
	prog2 := MustParse(`(x: N) ([: R; weight: w])+ (y: N) -> (x) [w2: D] (y).`)
	if _, err := Translate(prog2, NewCatalog()); err == nil {
		t.Fatal("property variable inside a repeated group must be rejected")
	}
}

func TestLinkerSkolemInHead(t *testing.T) {
	g := pg.New()
	g.AddNode([]string{"A"}, pg.Props{"k": value.Str("v1")})
	g.AddNode([]string{"A"}, pg.Props{"k": value.Str("v2")})
	prog := MustParse(`(x: A; k: n) -> (#skC(n): C; name: n).`)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatalf("reason: %v", err)
	}
	cs := g.NodesByLabel("C")
	if len(cs) != 2 {
		t.Fatalf("expected 2 C nodes, got %d", len(cs))
	}
	if cs[0].Props["name"].S == cs[1].Props["name"].S {
		t.Errorf("skolem nodes should carry distinct names")
	}
}

func TestLinkerSkolemDeduplicates(t *testing.T) {
	// Two A nodes with the same key must map to ONE C node: that is the
	// "controlled OID generation/retrieval" role of linker Skolem functors.
	g := pg.New()
	g.AddNode([]string{"A"}, pg.Props{"k": value.Str("same")})
	g.AddNode([]string{"A"}, pg.Props{"k": value.Str("same")})
	prog := MustParse(`(x: A; k: n) -> (#skC(n): C; name: n).`)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatalf("reason: %v", err)
	}
	if n := len(g.NodesByLabel("C")); n != 1 {
		t.Errorf("expected 1 C node (skolem dedup), got %d", n)
	}
}

func TestIntensionalNodeProperty(t *testing.T) {
	// numberOfStakeholders from Section 3.3: an intensional property on
	// Business nodes.
	g := pg.New()
	p1 := g.AddNode([]string{"Person"}, nil).ID
	p2 := g.AddNode([]string{"Person"}, nil).ID
	biz := g.AddNode([]string{"Business"}, nil).ID
	s1 := g.AddNode([]string{"Share"}, nil).ID
	s2 := g.AddNode([]string{"Share"}, nil).ID
	g.MustAddEdge(p1, s1, "HOLDS", nil)
	g.MustAddEdge(p2, s2, "HOLDS", nil)
	g.MustAddEdge(s1, biz, "BELONGS_TO", nil)
	g.MustAddEdge(s2, biz, "BELONGS_TO", nil)

	prog := MustParse(`
		(p: Person) [: HOLDS] (s: Share) [: BELONGS_TO] (y: Business), c = count()
			-> (y: Business; numberOfStakeholders: c).
	`)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatalf("reason: %v", err)
	}
	n := g.Node(biz)
	if got, ok := n.Props["numberOfStakeholders"]; !ok || got.I != 2 {
		t.Errorf("numberOfStakeholders = %v", got)
	}
}

func TestNegatedEdge(t *testing.T) {
	g := pg.New()
	a := g.AddNode([]string{"N"}, nil).ID
	b := g.AddNode([]string{"N"}, nil).ID
	g.MustAddEdge(a, b, "R", nil)
	prog := MustParse(`(x: N), (y: N), not (x) [: R] (y), x != y -> (x) [e: NOR] (y).`)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatalf("reason: %v", err)
	}
	edges := g.EdgesByLabel("NOR")
	if len(edges) != 1 || edges[0].From != b || edges[0].To != a {
		t.Errorf("NOR edges = %+v", edges)
	}
}

func TestExtractMaterializeRoundTrip(t *testing.T) {
	g := buildShareGraph(t)
	cat := FromGraph(g)
	db, err := ExtractFacts(g, cat)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count("Business") != 4 {
		t.Errorf("Business facts = %d", db.Count("Business"))
	}
	if db.Count("OWNS") != 4 {
		t.Errorf("OWNS facts = %d", db.Count("OWNS"))
	}
	// Edge facts carry (oid, from, to, props...) with catalog layout.
	f := db.Facts("OWNS")[0]
	if len(f) != 4 {
		t.Errorf("OWNS arity = %d, want 4 (oid, from, to, percentage)", len(f))
	}
}

func TestMaterializeIdempotent(t *testing.T) {
	prog := MustParse(`
		(x: Business) -> (x) [c: CONTROLS] (x).
	`)
	g := buildShareGraph(t)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatal(err)
	}
	before := g.NumEdges()
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != before {
		t.Errorf("re-running materialization must not duplicate edges: %d -> %d", before, g.NumEdges())
	}
}

func TestMissingPropertyNeverMatches(t *testing.T) {
	g := pg.New()
	g.AddNode([]string{"P"}, pg.Props{"name": value.Str("x")}) // no "age"
	g.AddNode([]string{"P"}, pg.Props{"name": value.Str("y"), "age": value.IntV(40)})
	prog := MustParse(`(p: P; age: a), a > 0 -> (p: Old).`)
	if _, err := Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatal(err)
	}
	if n := len(g.NodesByLabel("Old")); n != 1 {
		t.Errorf("expected 1 Old node, got %d", n)
	}
}

func TestTranslationIsPiecewiseLinear(t *testing.T) {
	// Per Section 4, a non-recursive MetaLog program with transitive closure
	// reduces to Piecewise Linear Datalog±.
	prog := MustParse(`(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])+ (y: SM_Node) -> (x) [w: DESCFROM] (y).`)
	tr, err := Translate(prog, NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	an, err := vadalog.Analyze(tr.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !an.PiecewiseLinear {
		t.Errorf("translated closure program should be piecewise linear")
	}
	if !an.Warded {
		t.Errorf("translated program should be warded: %v", an.Violations)
	}
}
