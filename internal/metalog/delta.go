package metalog

import (
	"sort"

	"repro/internal/overlay"
	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// ApplyFactsDelta maintains an ExtractFacts database under a graph-level
// mutation batch, given the batch's net effect as an overlay.Diff. It is the
// incremental counterpart of re-running ExtractFacts over the mutated view:
// only the relations named by the diff are touched, and each touched relation
// is rebuilt in ascending-OID order — the exact order ExtractFacts produces,
// because Nodes() and Edges() iterate ascending — so the maintained database
// is indistinguishable (fact-for-fact, position-for-position) from a full
// re-extraction. Position identity matters: engine derivation order, and
// therefore query row order, follows relation insertion order.
//
// The catalog is treated as fixed for the lifetime of a serving lineage. A
// diff that needs columns the catalog lacks — a node or edge label the
// catalog has never seen, or a property key outside the label's layout —
// cannot be folded in without an arity change, so ApplyFactsDelta reports
// ok=false and the caller falls back to a full re-extract under a catalog
// re-inferred from the mutated view. Removals never shrink the catalog:
// an emptied relation is harmless (queries see no matches) and keeping the
// layout stable is what makes the incremental path equivalence-preserving.
//
// The input database is not modified; on ok=true the returned database is a
// fresh clone with the delta folded in (or db itself when the diff is empty).
func ApplyFactsDelta(db *vadalog.Database, cat *Catalog, diff overlay.Diff) (*vadalog.Database, bool) {
	if diff.Empty() {
		return db, true
	}
	for _, n := range diff.AddedNodes {
		if !nodeCovered(cat, n) {
			return nil, false
		}
	}
	for _, c := range diff.ChangedNodes {
		if !nodeCovered(cat, c.After) {
			return nil, false
		}
	}
	for _, e := range diff.AddedEdges {
		if !edgeCovered(cat, e) {
			return nil, false
		}
	}

	// Collect the per-relation effect: OIDs whose facts retract, and the
	// replacement facts to insert. Within one relation an OID identifies at
	// most one fact (a node contributes one fact per label, an edge one fact
	// to its label's relation), so retraction by OID is exact.
	type relDelta struct {
		del map[int64]bool
		add []vadalog.Fact
	}
	changes := map[string]*relDelta{}
	touch := func(pred string) *relDelta {
		rd := changes[pred]
		if rd == nil {
			rd = &relDelta{del: map[int64]bool{}}
			changes[pred] = rd
		}
		return rd
	}
	delNode := func(n *pg.Node) {
		for _, l := range n.Labels {
			if cat.HasNode(l) {
				touch(l).del[int64(n.ID)] = true
			}
		}
	}
	addNode := func(n *pg.Node) {
		for _, l := range n.Labels {
			touch(l).add = append(touch(l).add, nodeFact(cat, l, n))
		}
	}
	for _, n := range diff.RemovedNodes {
		delNode(n)
	}
	for _, n := range diff.AddedNodes {
		addNode(n)
	}
	for _, c := range diff.ChangedNodes {
		delNode(c.Before)
		addNode(c.After)
	}
	for _, e := range diff.RemovedEdges {
		if cat.HasEdge(e.Label) {
			touch(e.Label).del[int64(e.ID)] = true
		}
	}
	for _, e := range diff.AddedEdges {
		touch(e.Label).add = append(touch(e.Label).add, edgeFact(cat, e))
	}

	out := db.Clone()
	preds := make([]string, 0, len(changes))
	for p := range changes {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, pred := range preds {
		rd := changes[pred]
		var arity int
		switch {
		case cat.HasNode(pred):
			arity = cat.NodeArity(pred)
		case cat.HasEdge(pred):
			arity = cat.EdgeArity(pred)
		default:
			return nil, false // unreachable given the coverage checks above
		}
		var facts []vadalog.Fact
		if r := out.Relation(pred); r != nil {
			for _, f := range r.All() {
				if oid, ok := f[0].AsInt(); ok && rd.del[oid] {
					continue
				}
				facts = append(facts, f)
			}
		}
		facts = append(facts, rd.add...)
		sort.Slice(facts, func(i, j int) bool {
			a, _ := facts[i][0].AsInt()
			b, _ := facts[j][0].AsInt()
			return a < b
		})
		if err := out.ReplaceFacts(pred, arity, facts); err != nil {
			return nil, false
		}
	}
	return out, true
}

// nodeCovered reports whether every fact the node would extract to fits the
// catalog's current column layout.
func nodeCovered(cat *Catalog, n *pg.Node) bool {
	for _, l := range n.Labels {
		if !cat.HasNode(l) {
			return false
		}
		layout := cat.NodeProps[l]
		for k := range n.Props {
			if !layoutHas(layout, k) {
				return false
			}
		}
	}
	return true
}

func edgeCovered(cat *Catalog, e *pg.Edge) bool {
	if !cat.HasEdge(e.Label) {
		return false
	}
	layout := cat.EdgeProps[e.Label]
	for k := range e.Props {
		if !layoutHas(layout, k) {
			return false
		}
	}
	return true
}

// layoutHas is a binary search over a catalog layout (kept sorted by ensure).
func layoutHas(layout []string, key string) bool {
	i := sort.SearchStrings(layout, key)
	return i < len(layout) && layout[i] == key
}

// nodeFact builds the label's relational fact for a node, mirroring
// ExtractFacts: oid first, then the catalog's property columns in order,
// Missing where the node does not carry the property.
func nodeFact(cat *Catalog, label string, n *pg.Node) vadalog.Fact {
	props := cat.NodeProps[label]
	f := make(vadalog.Fact, 1+len(props))
	f[0] = value.IntV(int64(n.ID))
	for i, p := range props {
		if v, ok := n.Props[p]; ok {
			f[i+1] = v
		} else {
			f[i+1] = Missing
		}
	}
	return f
}

// edgeFact builds the relational fact for an edge, mirroring ExtractFacts:
// (oid, from, to, property columns...).
func edgeFact(cat *Catalog, e *pg.Edge) vadalog.Fact {
	props := cat.EdgeProps[e.Label]
	f := make(vadalog.Fact, 3+len(props))
	f[0] = value.IntV(int64(e.ID))
	f[1] = value.IntV(int64(e.From))
	f[2] = value.IntV(int64(e.To))
	for i, p := range props {
		if v, ok := e.Props[p]; ok {
			f[i+3] = v
		} else {
			f[i+3] = Missing
		}
	}
	return f
}
