package metalog

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/vadalog"
)

// FuzzParse exercises the MetaLog parser for panics and round-trip
// stability.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`(x: Business) -> (x) [c: CONTROLS] (x).`,
		`(x: A) ([: R]- . [: S])* (y: B), v = sum(w, <z>), v > 0.5 -> (#sk(v): C; p: v).`,
		`(x: A) (([: R] | [: S]))+ (y: B) -> (x) [e: D] (y).`,
		`(x: A), not (x: B) -> (x: C).`,
		`(x: A; p: "str", q: 1.5) -> (x: B).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := prog.String()
		if _, err := Parse(printed); err != nil {
			t.Fatalf("printed form does not reparse: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
	})
}

// FuzzPlanPattern exercises the whole prepare path — parse, translate, plan
// (join ordering + demand) — on arbitrary pattern text. The contract: for any
// input, PrepareQuery either errors or returns a Prepared whose planned
// evaluation matches the written-order evaluation row for row. The planner
// must never panic and never change semantics, whatever shape survives the
// parser. make fuzz-smoke gives this a short budget.
func FuzzPlanPattern(f *testing.F) {
	seeds := []string{
		`(x: Company)`,
		`(x: Company; name: n) [: OWNS] (y: Company), x != y`,
		`(p: Person) [: WORKS_FOR] (c: Company) [: OWNS] (d: Company)`,
		`(x: Company) ([: OWNS])+ (y: Company)`,
		`(x: Company) (([: OWNS] | [: WORKS_FOR]))+ (y: Company)`,
		`(p: Person; age: a), a > 30, (p) [: WORKS_FOR] (c: Company)`,
		`(x: Listed), (x: Company; name: n)`,
		`(x: Company), not (x: Listed)`,
		`(x: Company; cap: k), k > 100, (x) [: OWNS] (y: Company; cap: j), j < k`,
		`(x: Nowhere; ghost: g)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g := diffGraph(rand.New(rand.NewSource(17)))
	frozen := g.Freeze()
	f.Fuzz(func(t *testing.T, pattern string) {
		if len(pattern) > 1<<12 {
			return // bound engine work, not decoder behavior
		}
		cat := FromGraph(frozen)
		st := ComputePlanStats(frozen, cat)
		prep, err := PrepareQuery(cat, pattern, st)
		if err != nil {
			return
		}
		opts := vadalog.Options{Timeout: 2 * time.Second, MaxFacts: 50_000}
		want, werr := Query(frozen, pattern, opts)
		if prep.Stale() {
			return // needs re-extraction; QueryDB refuses by contract
		}
		db, err := ExtractFacts(frozen, cat)
		if err != nil {
			t.Fatalf("extract after successful prepare: %v", err)
		}
		got, gerr := prep.QueryDB(context.Background(), db, opts)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("pattern %q: error mismatch: unplanned=%v planned=%v", pattern, werr, gerr)
		}
		if werr != nil {
			return
		}
		if w, g := renderRows(want), renderRows(got); w != g {
			t.Fatalf("pattern %q diverged:\nunplanned:\n%s\nplanned:\n%s", pattern, w, g)
		}
	})
}
