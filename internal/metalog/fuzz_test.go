package metalog

import "testing"

// FuzzParse exercises the MetaLog parser for panics and round-trip
// stability.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`(x: Business) -> (x) [c: CONTROLS] (x).`,
		`(x: A) ([: R]- . [: S])* (y: B), v = sum(w, <z>), v > 0.5 -> (#sk(v): C; p: v).`,
		`(x: A) (([: R] | [: S]))+ (y: B) -> (x) [e: D] (y).`,
		`(x: A), not (x: B) -> (x: C).`,
		`(x: A; p: "str", q: 1.5) -> (x: B).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := prog.String()
		if _, err := Parse(printed); err != nil {
			t.Fatalf("printed form does not reparse: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
	})
}
