// Package fault is the deterministic fault-injection and crash-containment
// layer of the reasoning pipeline.
//
// The paper's Algorithm 2 deployment at the Bank of Italy is a long-running
// batch (~160 minutes of reasoning bracketed by load and flush phases);
// hardening it requires provoking failures at every pipeline boundary and
// proving the system's invariants hold. This package provides the three
// ingredients:
//
//   - a registry of named injection sites threaded through the pipeline
//     (load / reason / flush boundaries, pg serialization, shard workers).
//     Sites are declared with Site at package init, probed with Hit on the
//     hot path (one atomic load when nothing is armed), and armed by chaos
//     tests or the CLIs' -chaos flag with a Plan: error, panic or delay on
//     the Nth hit. Every trigger is counter-driven, never time-driven, so a
//     chaos run replays identically from its seed and spec.
//
//   - typed panic containment: Guard converts a panic into a *PanicError
//     carrying the recovery site and stack, so a crashing worker goroutine
//     or pipeline phase degrades into an ordinary error return instead of
//     killing the process.
//
//   - a retry policy (retry.go) with capped exponential backoff and
//     seed-deterministic jitter, used by the retryable source wrappers.
//
// The registry is process-global: injection sites are static program
// locations, like expvar counters, and a per-run registry would have to be
// threaded through every package for no testing benefit. Arm/Reset are
// mutex-guarded; the disarmed fast path is a single atomic load.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed site does when its trigger fires.
type Mode uint8

const (
	// ModeError makes Hit return an *InjectedError.
	ModeError Mode = iota
	// ModePanic makes Hit panic (contained by the nearest Guard).
	ModePanic
	// ModeDelay makes Hit sleep for Plan.Delay before returning nil,
	// for exercising timeout and cancellation interplay.
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	}
	return fmt.Sprintf("Mode(%d)", m)
}

// ParseMode parses the textual mode names used by the -chaos CLI flag.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "error":
		return ModeError, nil
	case "panic":
		return ModePanic, nil
	case "delay":
		return ModeDelay, nil
	}
	return 0, fmt.Errorf("fault: unknown mode %q (want error, panic or delay)", s)
}

// ErrInjected is the sentinel every injected error matches through
// errors.Is, letting tests and retry classifiers distinguish injected
// faults from organic ones.
var ErrInjected = errors.New("fault: injected error")

// InjectedError is the error returned by an armed ModeError site.
type InjectedError struct{ Site string }

func (e *InjectedError) Error() string { return "fault: injected error at " + e.Site }

// Is makes errors.Is(err, ErrInjected) match.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// PanicError is a panic recovered by Guard: the typed form in which a
// contained crash — injected or organic — surfaces to callers. Site names
// the containment boundary (e.g. "vadalog/shard", "instance/reason"), not
// the panic origin; the origin is in Stack.
type PanicError struct {
	Site  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("fault: panic contained at %s: %v", e.Site, e.Value)
}

// Guard runs fn and converts a panic into a *PanicError attributed to the
// named site. It is the containment boundary wrapped around worker
// goroutines and pipeline phases: a crash inside fn becomes an ordinary
// error return, leaving the caller's process and state machine intact.
func Guard(site string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Site: site, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Plan describes when and how an armed site fires.
type Plan struct {
	Mode Mode
	// After is the 1-based hit count on which the plan starts firing;
	// 0 means 1 (the first hit).
	After int
	// Times is how many consecutive hits fire; 0 means 1, negative means
	// every hit from After on.
	Times int
	// Err overrides the injected error for ModeError; nil injects an
	// *InjectedError naming the site.
	Err error
	// Delay is the ModeDelay sleep; 0 means 1ms.
	Delay time.Duration
}

// site is one registered injection point.
type site struct {
	name  string
	hits  int64 // hits since the site was last armed
	plan  *Plan // nil when disarmed
	fired int   // times the plan has fired since arming
}

var (
	mu       sync.Mutex
	registry = map[string]*site{}
	// armed is the number of currently armed sites; Hit's fast path is a
	// single atomic load of it.
	armed atomic.Int32
)

// Site declares an injection site and returns its name, so instrumented
// packages can register from a package-level var:
//
//	var siteFlush = fault.Site("instance/flush")
//
// Registration is idempotent.
func Site(name string) string {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := registry[name]; !ok {
		registry[name] = &site{name: name}
	}
	return name
}

// Sites lists every registered injection site, sorted. The chaos harness
// sweeps this list; the CLIs print it for -chaos list.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Arm installs a plan on a registered site, resetting its hit counter so
// Plan.After counts from this call.
func Arm(name string, p Plan) error {
	mu.Lock()
	defer mu.Unlock()
	s, ok := registry[name]
	if !ok {
		return fmt.Errorf("fault: unknown site %q", name)
	}
	if s.plan == nil {
		armed.Add(1)
	}
	if p.After <= 0 {
		p.After = 1
	}
	if p.Times == 0 {
		p.Times = 1
	}
	if p.Delay <= 0 {
		p.Delay = time.Millisecond
	}
	s.plan = &p
	s.hits = 0
	s.fired = 0
	return nil
}

// Disarm removes the plan of one site, keeping its registration.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := registry[name]; ok && s.plan != nil {
		s.plan = nil
		armed.Add(-1)
	}
}

// Reset disarms every site and zeroes all counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, s := range registry {
		if s.plan != nil {
			armed.Add(-1)
		}
		s.plan = nil
		s.hits = 0
		s.fired = 0
	}
}

// Hits reports how often a site was probed since it was last armed.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := registry[name]; ok {
		return s.hits
	}
	return 0
}

// Fired reports how often a site's plan has fired since arming — chaos
// tests use it to tell "the fault triggered and was handled" apart from
// "the fault site was never reached".
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := registry[name]; ok {
		return s.fired
	}
	return 0
}

// Hit probes an injection site. With nothing armed anywhere it is a single
// atomic load; with a due plan it returns the injected error, panics, or
// sleeps according to the plan's mode. Instrumented code treats the
// returned error exactly like an organic failure of the operation the site
// brackets.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return hitSlow(name)
}

func hitSlow(name string) error {
	mu.Lock()
	s, ok := registry[name]
	if !ok || s.plan == nil {
		mu.Unlock()
		return nil
	}
	s.hits++
	p := s.plan
	due := s.hits >= int64(p.After) && (p.Times < 0 || s.hits < int64(p.After+p.Times))
	if !due {
		mu.Unlock()
		return nil
	}
	s.fired++
	mu.Unlock() // release before panicking or sleeping
	switch p.Mode {
	case ModePanic:
		panic(fmt.Sprintf("fault: injected panic at %s", name))
	case ModeDelay:
		time.Sleep(p.Delay)
		return nil
	default:
		if p.Err != nil {
			return p.Err
		}
		return &InjectedError{Site: name}
	}
}

// Step is one entry of a chaos schedule: arm Site with Plan.
type Step struct {
	Site string
	Plan Plan
}

// Schedule derives a deterministic chaos schedule from a seed: every
// registered site appears exactly once, in a seed-dependent order, with a
// mode drawn from modes and a trigger offset in [1,3]. Two runs with the
// same seed and site registrations produce the same schedule, which is what
// makes a chaos run reproducible from its seed alone.
func Schedule(seed int64, modes []Mode) []Step {
	if len(modes) == 0 {
		modes = []Mode{ModeError, ModePanic}
	}
	sites := Sites()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })
	out := make([]Step, len(sites))
	for i, name := range sites {
		out[i] = Step{
			Site: name,
			Plan: Plan{Mode: modes[rng.Intn(len(modes))], After: 1 + rng.Intn(3)},
		}
	}
	return out
}

// ParseSpec parses one -chaos injection spec of the form
// site[:mode[:after]], e.g. "instance/flush:panic" or "pg/read-csv:error:2".
// The mode defaults to error and after to 1.
func ParseSpec(spec string) (string, Plan, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	p := Plan{Mode: ModeError}
	if name == "" {
		return "", p, fmt.Errorf("fault: empty site in spec %q", spec)
	}
	if len(parts) >= 2 && parts[1] != "" {
		m, err := ParseMode(parts[1])
		if err != nil {
			return "", p, err
		}
		p.Mode = m
	}
	if len(parts) >= 3 {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 1 {
			return "", p, fmt.Errorf("fault: bad trigger count %q in spec %q", parts[2], spec)
		}
		p.After = n
	}
	if len(parts) > 3 {
		return "", p, fmt.Errorf("fault: malformed spec %q (want site[:mode[:after]])", spec)
	}
	return name, p, nil
}

// ArmSpecs parses and arms a comma-separated list of -chaos specs.
func ArmSpecs(specs string) error {
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, plan, err := ParseSpec(spec)
		if err != nil {
			return err
		}
		if err := Arm(name, plan); err != nil {
			return err
		}
	}
	return nil
}
