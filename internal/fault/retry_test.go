package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	before := obs.Counters()
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Seed:        1,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := p.Do("test/op", func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Backoff grows and honors the jitter floor of delay/2.
	if slept[0] < 5*time.Millisecond || slept[0] > 10*time.Millisecond {
		t.Errorf("first backoff %v outside [5ms,10ms]", slept[0])
	}
	if slept[1] < 10*time.Millisecond || slept[1] > 20*time.Millisecond {
		t.Errorf("second backoff %v outside [10ms,20ms]", slept[1])
	}
	after := obs.Counters()
	if d := after.Retries - before.Retries; d != 2 {
		t.Errorf("retry counter grew by %d, want 2", d)
	}
	if d := after.RetrySucceeded - before.RetrySucceeded; d != 1 {
		t.Errorf("retry-succeeded counter grew by %d, want 1", d)
	}
}

func TestRetryDeterministicJitter(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		var out []time.Duration
		p := RetryPolicy{MaxAttempts: 6, Seed: seed, Sleep: func(d time.Duration) { out = append(out, d) }}
		_ = p.Do("t", func() error { return errors.New("always") })
		return out
	}
	if !reflect.DeepEqual(delays(42), delays(42)) {
		t.Fatal("same seed produced different backoff sequences")
	}
	if reflect.DeepEqual(delays(42), delays(43)) {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	before := obs.Counters()
	last := errors.New("still broken")
	p := RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do("t", func() error { calls++; return last })
	if err != last || calls != 3 {
		t.Fatalf("err=%v calls=%d, want the last error after 3 attempts", err, calls)
	}
	if d := obs.Counters().RetryExhausted - before.RetryExhausted; d != 1 {
		t.Errorf("retry-exhausted counter grew by %d, want 1", d)
	}
}

func TestRetryBackoffCap(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	_ = p.Do("t", func() error { return errors.New("always") })
	for i, d := range slept {
		if d > 40*time.Millisecond {
			t.Fatalf("backoff %d = %v exceeds the 40ms cap", i, d)
		}
	}
}

func TestRetryZeroValueSingleAttempt(t *testing.T) {
	calls := 0
	err := RetryPolicy{}.Do("t", func() error { calls++; return errors.New("x") })
	if err == nil || calls != 1 {
		t.Fatalf("zero-value policy: calls=%d err=%v, want single failing attempt", calls, err)
	}
}

func TestRetryClassifierStopsEarly(t *testing.T) {
	fatal := errors.New("fatal")
	p := RetryPolicy{
		MaxAttempts: 5,
		Sleep:       func(time.Duration) {},
		Classify:    func(err error) bool { return !errors.Is(err, fatal) },
	}
	calls := 0
	err := p.Do("t", func() error { calls++; return fatal })
	if err != fatal || calls != 1 {
		t.Fatalf("non-retryable error retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryNeverRetriesContainedPanics(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do("t", func() error {
		calls++
		return Guard("t", func() error { panic("crash") })
	})
	var pe *PanicError
	if !errors.As(err, &pe) || calls != 1 {
		t.Fatalf("contained panic was retried: calls=%d err=%v", calls, err)
	}
}
