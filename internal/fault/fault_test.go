package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// Test sites are registered once; the registry is process-global by design.
var (
	tsA = Site("test/a")
	tsB = Site("test/b")
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit(tsA); err != nil {
		t.Fatalf("disarmed Hit = %v", err)
	}
	if err := Hit("never/registered"); err != nil {
		t.Fatalf("unregistered Hit = %v", err)
	}
}

func TestArmErrorAfterAndTimes(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("no/such/site", Plan{}); err == nil {
		t.Fatal("arming an unregistered site must fail")
	}
	if err := Arm(tsA, Plan{Mode: ModeError, After: 2, Times: 2}); err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, Hit(tsA) != nil)
	}
	want := []bool{false, true, true, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fire pattern = %v, want %v", got, want)
	}
	if Hits(tsA) != 5 || Fired(tsA) != 2 {
		t.Fatalf("Hits=%d Fired=%d, want 5 and 2", Hits(tsA), Fired(tsA))
	}
	// The armed site does not leak onto other sites.
	if err := Hit(tsB); err != nil {
		t.Fatalf("unarmed sibling fired: %v", err)
	}
}

func TestInjectedErrorTyping(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm(tsA, Plan{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	err := Hit(tsA)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error does not match ErrInjected: %v", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != tsA {
		t.Fatalf("injected error = %#v, want *InjectedError at %s", err, tsA)
	}
	// A custom error passes through unchanged.
	custom := errors.New("boom")
	if err := Arm(tsA, Plan{Mode: ModeError, Err: custom}); err != nil {
		t.Fatal(err)
	}
	if err := Hit(tsA); err != custom {
		t.Fatalf("custom injected error = %v, want %v", err, custom)
	}
}

func TestPanicModeAndGuard(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm(tsA, Plan{Mode: ModePanic}); err != nil {
		t.Fatal(err)
	}
	err := Guard("test/guard", func() error { return Hit(tsA) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("guarded panic = %v, want *PanicError", err)
	}
	if pe.Site != "test/guard" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {Site: %q, stack %d bytes}", pe.Site, len(pe.Stack))
	}
	// Guard passes ordinary errors and successes through untouched.
	plain := errors.New("plain")
	if err := Guard("g", func() error { return plain }); err != plain {
		t.Fatalf("Guard altered a plain error: %v", err)
	}
	if err := Guard("g", func() error { return nil }); err != nil {
		t.Fatalf("Guard invented an error: %v", err)
	}
}

func TestDelayMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm(tsA, Plan{Mode: ModeDelay, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit(tsA); err != nil {
		t.Fatalf("delay mode returned an error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay mode slept only %v", d)
	}
}

func TestResetAndDisarm(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm(tsA, Plan{Mode: ModeError, Times: -1}); err != nil {
		t.Fatal(err)
	}
	if Hit(tsA) == nil {
		t.Fatal("armed site did not fire")
	}
	Disarm(tsA)
	if err := Hit(tsA); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
	if err := Arm(tsA, Plan{Mode: ModeError, Times: -1}); err != nil {
		t.Fatal(err)
	}
	Reset()
	if err := Hit(tsA); err != nil {
		t.Fatalf("site fired after Reset: %v", err)
	}
}

func TestSitesSortedAndSchedule(t *testing.T) {
	Reset()
	sites := Sites()
	found := 0
	for i, s := range sites {
		if i > 0 && sites[i-1] >= s {
			t.Fatalf("Sites not sorted: %v", sites)
		}
		if s == tsA || s == tsB {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("test sites missing from Sites(): %v", sites)
	}
	// Same seed, same schedule; every site appears exactly once.
	s1 := Schedule(7, nil)
	s2 := Schedule(7, nil)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("Schedule is not deterministic for a fixed seed")
	}
	if len(s1) != len(sites) {
		t.Fatalf("schedule covers %d of %d sites", len(s1), len(sites))
	}
	seen := map[string]bool{}
	for _, st := range s1 {
		if seen[st.Site] {
			t.Fatalf("site %s scheduled twice", st.Site)
		}
		seen[st.Site] = true
		if st.Plan.After < 1 || st.Plan.After > 3 {
			t.Fatalf("schedule offset %d out of range", st.Plan.After)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		site string
		plan Plan
		ok   bool
	}{
		{"instance/flush", "instance/flush", Plan{Mode: ModeError}, true},
		{"instance/flush:panic", "instance/flush", Plan{Mode: ModePanic}, true},
		{"pg/read-csv:error:3", "pg/read-csv", Plan{Mode: ModeError, After: 3}, true},
		{"x:delay:2", "x", Plan{Mode: ModeDelay, After: 2}, true},
		{"", "", Plan{}, false},
		{"x:bogus", "", Plan{}, false},
		{"x:error:0", "", Plan{}, false},
		{"x:error:2:9", "", Plan{}, false},
	}
	for _, c := range cases {
		site, plan, err := ParseSpec(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("ParseSpec(%q) err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if site != c.site || plan.Mode != c.plan.Mode || plan.After != c.plan.After {
			t.Errorf("ParseSpec(%q) = %q %+v", c.spec, site, plan)
		}
	}
}

func TestArmSpecs(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmSpecs(tsA + ":error:2, " + tsB + ":panic"); err != nil {
		t.Fatal(err)
	}
	if err := Hit(tsA); err != nil {
		t.Fatalf("site A fired on hit 1 with after=2: %v", err)
	}
	if err := Hit(tsA); !errors.Is(err, ErrInjected) {
		t.Fatalf("site A hit 2 = %v, want injected", err)
	}
	err := Guard("g", func() error { return Hit(tsB) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("site B = %v, want contained panic", err)
	}
	if err := ArmSpecs("no/such:error"); err == nil {
		t.Fatal("arming an unknown site through specs must fail")
	}
}
