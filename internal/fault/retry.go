package fault

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/obs"
)

// RetryPolicy retries a transient operation with capped exponential backoff
// and deterministic jitter. The zero value performs exactly one attempt; a
// policy with MaxAttempts n tries up to n times. The clock and the jitter
// source are injectable so retry tests run instantly and chaos runs replay
// bit-identically from their seed.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts; values <= 1 disable
	// retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms); each
	// further retry doubles it up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed feeds the jitter generator. The same seed yields the same delay
	// sequence, keeping chaos runs reproducible.
	Seed int64
	// Sleep replaces time.Sleep in tests; nil uses the real clock.
	Sleep func(time.Duration)
	// Classify reports whether an error is worth retrying; nil retries
	// every error except contained panics (*PanicError), which indicate a
	// crash rather than a transient condition.
	Classify func(error) bool
}

// Do runs fn until it succeeds, the attempt budget is exhausted, or an
// error is classified non-retryable. op names the operation in the
// process-wide retry counters (internal/obs). The final error — nil on
// success — is returned unchanged, so injected faults, typed sentinels and
// wrapped causes keep matching through errors.Is/As.
func (p RetryPolicy) Do(op string, fn func() error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var rng *rand.Rand // lazily built: only retrying paths need jitter
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			if attempt > 1 {
				obs.CountRetryOutcome(true)
			}
			return nil
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			return err // a contained crash is not transient
		}
		if p.Classify != nil && !p.Classify(err) {
			return err
		}
		if attempt >= attempts {
			break
		}
		obs.CountRetry(op)
		if rng == nil {
			rng = rand.New(rand.NewSource(p.Seed))
		}
		sleep(p.backoff(attempt, rng))
	}
	if attempts > 1 {
		obs.CountRetryOutcome(false)
	}
	return err
}

// backoff computes the delay before retry number attempt (1-based):
// BaseDelay doubled per attempt, capped at MaxDelay, with a deterministic
// jitter in [delay/2, delay] drawn from the seeded generator (full-jitter
// halves thundering herds without losing reproducibility).
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(rng.Int63n(int64(half)+1))
	}
	return d
}
