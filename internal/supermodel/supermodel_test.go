package supermodel

import (
	"reflect"
	"testing"
)

func TestSchemaBuilderValidation(t *testing.T) {
	s := NewSchema("t", 1)
	if _, err := s.AddNode("A", false, Attr("id", String).ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNode("A", false); err == nil {
		t.Error("duplicate node name must fail")
	}
	if _, err := s.AddNode("B", false, Attr("x", "bogus")); err == nil {
		t.Error("bad data type must fail")
	}
	if _, err := s.AddNode("C", false, Attr("x", String).ID().Opt()); err == nil {
		t.Error("identifying optional attribute must fail")
	}
	if _, err := s.AddEdge("E", false, "A", "Zed", ZeroToMany, ZeroToMany); err == nil {
		t.Error("dangling edge target must fail")
	}
	if _, err := s.AddEdge("E", false, "A", "A", ZeroToMany, ZeroToMany, Attr("k", String).ID()); err == nil {
		t.Error("identifying edge attribute must fail")
	}
	if _, err := s.AddGeneralization("", "A", []string{"A"}, true, true); err == nil {
		t.Error("self-generalization must fail")
	}
}

func TestGeneralizationCycleRejected(t *testing.T) {
	s := NewSchema("t", 1)
	s.MustAddNode("A", false, Attr("id", String).ID())
	s.MustAddNode("B", false)
	s.MustAddGeneralization("", "A", []string{"B"}, true, true)
	s.MustAddGeneralization("", "B", []string{"A"}, true, true)
	if err := s.Validate(); err == nil {
		t.Error("generalization cycle must be rejected")
	}
}

func TestMissingIdentifierRejected(t *testing.T) {
	s := NewSchema("t", 1)
	s.MustAddNode("A", false, Attr("x", String))
	if err := s.Validate(); err == nil {
		t.Error("node without identifier must be rejected")
	}
}

func TestInheritedIdentifierAccepted(t *testing.T) {
	s := NewSchema("t", 1)
	s.MustAddNode("Parent", false, Attr("id", String).ID())
	s.MustAddNode("Child", false, Attr("extra", String))
	s.MustAddGeneralization("", "Parent", []string{"Child"}, false, true)
	if err := s.Validate(); err != nil {
		t.Errorf("child should inherit parent identifier: %v", err)
	}
}

func TestHierarchyQueries(t *testing.T) {
	s := CompanyKG()
	if got := s.Ancestors("PublicListedCompany"); !reflect.DeepEqual(got, []string{"Business", "LegalPerson", "Person"}) {
		t.Errorf("Ancestors(PublicListedCompany) = %v", got)
	}
	if got := s.Descendants("Person"); len(got) != 5 {
		t.Errorf("Descendants(Person) = %v (want 5)", got)
	}
	eff := s.EffectiveAttributes("Business")
	names := map[string]bool{}
	for _, a := range eff {
		names[a.Name] = true
	}
	for _, want := range []string{"shareholdingCapital", "businessName", "legalNature", "fiscalCode"} {
		if !names[want] {
			t.Errorf("Business effective attributes missing %s: %v", want, names)
		}
	}
	ids := s.EffectiveIDAttributes("PublicListedCompany")
	if len(ids) != 1 || ids[0].Name != "fiscalCode" {
		t.Errorf("PublicListedCompany id attrs = %v", ids)
	}
}

// TestFigure4CompanyKG validates the reference schema of Figure 4 and its
// Section 3.3 design decisions.
func TestFigure4CompanyKG(t *testing.T) {
	s := CompanyKG()
	if err := s.Validate(); err != nil {
		t.Fatalf("Company KG must validate: %v", err)
	}
	// The PersonKind generalization is total and disjoint.
	var pk *Generalization
	for _, g := range s.Generalizations {
		if g.Parent == "Person" {
			pk = g
		}
	}
	if pk == nil || !pk.IsTotal || !pk.IsDisjoint {
		t.Errorf("Person generalization must be total and disjoint: %+v", pk)
	}
	// BusinessKind is non-total.
	for _, g := range s.Generalizations {
		if g.Parent == "Business" && g.IsTotal {
			t.Errorf("Business -> PublicListedCompany generalization must not be total")
		}
	}
	// Intensional constructs per the walk-through.
	for _, name := range []string{"OWNS", "CONTROLS", "IS_RELATED_TO", "BELONGS_TO_FAMILY", "FAMILY_OWNS"} {
		e := s.Edge(name)
		if e == nil || !e.IsIntensional {
			t.Errorf("edge %s must exist and be intensional", name)
		}
	}
	if n := s.Node("Family"); n == nil || !n.IsIntensional {
		t.Errorf("Family must be an intensional node")
	}
	if a := s.Node("Business").Attribute("numberOfStakeholders"); a == nil || !a.IsIntensional {
		t.Errorf("numberOfStakeholders must be an intensional attribute")
	}
	// HOLDS/BELONGS_TO decoupling: HOLDS targets Share, BELONGS_TO links
	// Share to Business with each share belonging to exactly one business.
	holds := s.Edge("HOLDS")
	if holds.From != "Person" || holds.To != "Share" {
		t.Errorf("HOLDS endpoints = %s -> %s", holds.From, holds.To)
	}
	bt := s.Edge("BELONGS_TO")
	if bt.From != "Share" || bt.To != "Business" || !bt.FromCard.Max1 || bt.FromCard.Min != 1 {
		t.Errorf("BELONGS_TO must map each share to exactly one business: %+v", bt)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	s := CompanyKG()
	dict := NewDictionary()
	if err := ToDictionary(s, dict); err != nil {
		t.Fatal(err)
	}
	back, err := FromDictionary(dict, CompanyKGOID, "CompanyKG")
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped schema must validate: %v", err)
	}
	if len(back.Nodes) != len(s.Nodes) || len(back.Edges) != len(s.Edges) || len(back.Generalizations) != len(s.Generalizations) {
		t.Fatalf("round trip size mismatch: %s vs %s", back.Stats(), s.Stats())
	}
	for _, n := range s.Nodes {
		bn := back.Node(n.Name)
		if bn == nil {
			t.Fatalf("node %s lost in round trip", n.Name)
		}
		if bn.IsIntensional != n.IsIntensional {
			t.Errorf("node %s intensional flag lost", n.Name)
		}
		if len(bn.Attributes) != len(n.Attributes) {
			t.Errorf("node %s attribute count %d vs %d", n.Name, len(bn.Attributes), len(n.Attributes))
		}
		for _, a := range n.Attributes {
			ba := bn.Attribute(a.Name)
			if ba == nil {
				t.Errorf("attribute %s.%s lost", n.Name, a.Name)
				continue
			}
			if ba.Type != a.Type || ba.IsID != a.IsID || ba.IsOpt != a.IsOpt || ba.IsIntensional != a.IsIntensional {
				t.Errorf("attribute %s.%s flags changed: %+v vs %+v", n.Name, a.Name, ba, a)
			}
			if len(ba.Modifiers) != len(a.Modifiers) {
				t.Errorf("attribute %s.%s modifiers %d vs %d", n.Name, a.Name, len(ba.Modifiers), len(a.Modifiers))
			}
		}
	}
	for _, e := range s.Edges {
		be := back.Edge(e.Name)
		if be == nil {
			t.Fatalf("edge %s lost", e.Name)
		}
		if be.From != e.From || be.To != e.To || be.FromCard != e.FromCard || be.ToCard != e.ToCard || be.IsIntensional != e.IsIntensional {
			t.Errorf("edge %s changed: %+v vs %+v", e.Name, be, e)
		}
	}
}

func TestDictionaryMultipleSchemas(t *testing.T) {
	dict := NewDictionary()
	s1 := NewSchema("one", 1)
	s1.MustAddNode("A", false, Attr("id", String).ID())
	s2 := NewSchema("two", 2)
	s2.MustAddNode("B", false, Attr("id", String).ID())
	if err := ToDictionary(s1, dict); err != nil {
		t.Fatal(err)
	}
	if err := ToDictionary(s2, dict); err != nil {
		t.Fatal(err)
	}
	if err := ToDictionary(s1, dict); err == nil {
		t.Error("duplicate schemaOID must be rejected")
	}
	b1, err := FromDictionary(dict, 1, "one")
	if err != nil {
		t.Fatal(err)
	}
	if b1.Node("A") == nil || b1.Node("B") != nil {
		t.Errorf("schema 1 contents wrong: %s", b1.Stats())
	}
}

// TestFigure2MetaModel checks the meta-model dictionary of Figure 2.
func TestFigure2MetaModel(t *testing.T) {
	g := MetaModelDictionary()
	if g.NumNodes() != 3 {
		t.Fatalf("meta-model has %d nodes, want 3 (MM_Entity, MM_Link, MM_Property)", g.NumNodes())
	}
	for _, label := range []string{"MM_Entity", "MM_Link", "MM_Property"} {
		if len(g.NodesByLabel(label)) != 1 {
			t.Errorf("meta-model missing construct %s", label)
		}
	}
	if len(g.EdgesByLabel("MM_HAS_PROPERTY")) != 2 {
		t.Errorf("meta-model should connect entities and links to properties")
	}
	if len(g.EdgesByLabel("MM_SOURCE")) != 1 || len(g.EdgesByLabel("MM_TARGET")) != 1 {
		t.Errorf("MM_Link must have source and target links to MM_Entity")
	}
}

// TestFigure3SuperModel checks the super-model dictionary of Figure 3:
// every super-construct is present with its meta-kind, attributes and link
// endpoints.
func TestFigure3SuperModel(t *testing.T) {
	specs := SuperModelConstructs()
	byName := map[string]SuperConstructSpec{}
	for _, sc := range specs {
		byName[sc.Name] = sc
	}
	for _, want := range []string{
		"SM_Node", "SM_Edge", "SM_Type", "SM_Attribute", "SM_Generalization",
		"SM_AttributeModifier", "SM_UniqueAttributeModifier",
		"SM_HAS_NODE_TYPE", "SM_HAS_EDGE_TYPE", "SM_HAS_NODE_PROPERTY",
		"SM_HAS_EDGE_PROPERTY", "SM_FROM", "SM_TO", "SM_PARENT", "SM_CHILD",
		"SM_HAS_MODIFIER",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("super-model dictionary missing construct %s", want)
		}
	}
	if got := byName["SM_Edge"].Attributes; len(got) != 5 {
		t.Errorf("SM_Edge attributes = %v, want isIntensional + 4 cardinality flags", got)
	}
	if byName["SM_FROM"].Source != "SM_Edge" || byName["SM_FROM"].Target != "SM_Node" {
		t.Errorf("SM_FROM endpoints wrong: %+v", byName["SM_FROM"])
	}
	if byName["SM_PARENT"].Source != "SM_Generalization" {
		t.Errorf("SM_PARENT source wrong: %+v", byName["SM_PARENT"])
	}

	g := SuperModelDictionary()
	entities := g.NodesByLabel("MM_Entity")
	if len(entities) != 10 {
		t.Errorf("super-model dictionary has %d MM_Entity nodes, want 10", len(entities))
	}
	if n := len(g.EdgesByLabel("MM_Link")); n != 9 {
		t.Errorf("super-model dictionary has %d MM_Link edges, want 9", n)
	}
	if n := len(g.EdgesByLabel("MM_SPECIALIZES")); n != 4 {
		t.Errorf("modifier specializations = %d, want 4", n)
	}
}

func TestCardinalityParsing(t *testing.T) {
	for s, want := range map[string]Cardinality{
		"0..N": ZeroToMany, "0..1": ZeroToOne, "1..N": OneToMany, "1..1": ExactlyOne,
	} {
		got, err := ParseCardinality(s)
		if err != nil || got != want {
			t.Errorf("ParseCardinality(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCardinality("2..3"); err == nil {
		t.Error("arbitrary cardinalities must be rejected")
	}
	if ZeroToMany.String() != "0..N" || ExactlyOne.String() != "1..1" {
		t.Error("cardinality rendering wrong")
	}
}

func TestEdgeShapePredicates(t *testing.T) {
	e := &Edge{FromCard: ZeroToMany, ToCard: ZeroToMany}
	if !e.IsManyToMany() || e.IsOneToMany() || e.IsManyToOne() || e.IsOneToOne() {
		t.Error("N:M classification wrong")
	}
	e = &Edge{FromCard: ZeroToMany, ToCard: ExactlyOne}
	if !e.IsOneToMany() {
		t.Error("1:N classification wrong")
	}
	e = &Edge{FromCard: ZeroToOne, ToCard: ZeroToMany}
	if !e.IsManyToOne() {
		t.Error("N:1 classification wrong")
	}
	e = &Edge{FromCard: ExactlyOne, ToCard: ZeroToOne}
	if !e.IsOneToOne() {
		t.Error("1:1 classification wrong")
	}
}

func TestListSchemas(t *testing.T) {
	dict := NewDictionary()
	if err := ToDictionary(CompanyKG(), dict); err != nil {
		t.Fatal(err)
	}
	mini := NewSchema("mini", 7)
	mini.MustAddNode("A", false, Attr("id", String).ID())
	if err := ToDictionary(mini, dict); err != nil {
		t.Fatal(err)
	}
	infos := ListSchemas(dict)
	if len(infos) != 2 {
		t.Fatalf("schemas = %+v", infos)
	}
	if infos[0].OID != 7 || infos[0].Nodes != 1 {
		t.Errorf("mini info = %+v", infos[0])
	}
	if infos[1].OID != CompanyKGOID || infos[1].Nodes != 11 || infos[1].Edges != 11 || infos[1].Generalizations != 4 {
		t.Errorf("companykg info = %+v", infos[1])
	}
}
