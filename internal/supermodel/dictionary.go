package supermodel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pg"
	"repro/internal/sortedset"
	"repro/internal/value"
)

// Graph dictionaries (Section 2.2): KGModel stores super-schemas and schemas
// into property graphs associated to the super-model and to each model. This
// file implements the super-model dictionary encoding of super-schemas —
// the representation the MetaLog translation mappings of Section 5 operate
// on — together with the fixed meta-model and super-model dictionaries of
// Figures 2 and 3.
//
// Encoding of a super-schema (all constructs carry schemaOID):
//
//	(n:SM_Node            {schemaOID, isIntensional})
//	(t:SM_Type            {schemaOID, name})
//	(a:SM_Attribute       {schemaOID, name, dataType, isOpt, isId})
//	(e:SM_Edge            {schemaOID, isIntensional, isOpt1, isFun1, isOpt2, isFun2})
//	(g:SM_Generalization  {schemaOID, name, isTotal, isDisjoint})
//	(m:<ModifierKind>     {schemaOID, payload})
//
//	SM_HAS_NODE_TYPE      n -> t        SM_HAS_EDGE_TYPE      e -> t
//	SM_HAS_NODE_PROPERTY  n -> a        SM_HAS_EDGE_PROPERTY  e -> a
//	SM_FROM               e -> n        SM_TO                 e -> n
//	SM_PARENT             g -> n        SM_CHILD              g -> n
//	SM_HAS_MODIFIER       a -> m
//
// The isOpt/isFun flags encode cardinalities as in the paper: side 1 is the
// source participation (isFun1 = a source instance has at most one such
// edge), side 2 the target participation.

// Dictionary labels.
const (
	LNode           = "SM_Node"
	LType           = "SM_Type"
	LAttribute      = "SM_Attribute"
	LEdge           = "SM_Edge"
	LGeneralization = "SM_Generalization"

	LHasNodeType = "SM_HAS_NODE_TYPE"
	LHasEdgeType = "SM_HAS_EDGE_TYPE"
	LHasNodeProp = "SM_HAS_NODE_PROPERTY"
	LHasEdgeProp = "SM_HAS_EDGE_PROPERTY"
	LFrom        = "SM_FROM"
	LTo          = "SM_TO"
	LParent      = "SM_PARENT"
	LChild       = "SM_CHILD"
	LHasModifier = "SM_HAS_MODIFIER"
)

// NewDictionary returns an empty graph dictionary.
func NewDictionary() *pg.Graph { return pg.New() }

// ToDictionary appends the super-schema to a graph dictionary, keyed by the
// schema's OID. It returns an error if the dictionary already holds a schema
// with the same OID.
func ToDictionary(s *Schema, g *pg.Graph) error {
	for _, n := range g.NodesByLabel(LType) {
		if so, ok := n.Props["schemaOID"]; ok && so.I == s.OID {
			return fmt.Errorf("supermodel: dictionary already contains schema with OID %d", s.OID)
		}
	}
	soid := value.IntV(s.OID)

	addType := func(name string) pg.OID {
		t := g.AddNode([]string{LType}, pg.Props{"schemaOID": soid, "name": value.Str(name)})
		return t.ID
	}
	addAttr := func(owner pg.OID, propLabel string, a *Attribute) {
		an := g.AddNode([]string{LAttribute}, pg.Props{
			"schemaOID": soid,
			"name":      value.Str(a.Name),
			"dataType":  value.Str(string(a.Type)),
			"isOpt":     value.BoolV(a.IsOpt),
			"isId":      value.BoolV(a.IsID),
		})
		g.MustAddEdge(owner, an.ID, propLabel, pg.Props{"isIntensional": value.BoolV(a.IsIntensional)})
		for _, m := range a.Modifiers {
			mn := g.AddNode([]string{m.Kind()}, pg.Props{
				"schemaOID": soid,
				"payload":   value.Str(m.Describe()),
			})
			g.MustAddEdge(an.ID, mn.ID, LHasModifier, nil)
		}
	}

	nodeOID := map[string]pg.OID{}
	for _, n := range s.Nodes {
		nn := g.AddNode([]string{LNode}, pg.Props{
			"schemaOID":     soid,
			"isIntensional": value.BoolV(n.IsIntensional),
		})
		nodeOID[n.Name] = nn.ID
		g.MustAddEdge(nn.ID, addType(n.Name), LHasNodeType, nil)
		for _, a := range n.Attributes {
			addAttr(nn.ID, LHasNodeProp, a)
		}
	}
	for _, e := range s.Edges {
		en := g.AddNode([]string{LEdge}, pg.Props{
			"schemaOID":     soid,
			"isIntensional": value.BoolV(e.IsIntensional),
			"isOpt1":        value.BoolV(e.FromCard.Min == 0),
			"isFun1":        value.BoolV(e.FromCard.Max1),
			"isOpt2":        value.BoolV(e.ToCard.Min == 0),
			"isFun2":        value.BoolV(e.ToCard.Max1),
		})
		g.MustAddEdge(en.ID, addType(e.Name), LHasEdgeType, nil)
		g.MustAddEdge(en.ID, nodeOID[e.From], LFrom, nil)
		g.MustAddEdge(en.ID, nodeOID[e.To], LTo, nil)
		for _, a := range e.Attributes {
			addAttr(en.ID, LHasEdgeProp, a)
		}
	}
	for _, gen := range s.Generalizations {
		gn := g.AddNode([]string{LGeneralization}, pg.Props{
			"schemaOID":  soid,
			"name":       value.Str(gen.Name),
			"isTotal":    value.BoolV(gen.IsTotal),
			"isDisjoint": value.BoolV(gen.IsDisjoint),
		})
		g.MustAddEdge(gn.ID, nodeOID[gen.Parent], LParent, nil)
		for _, c := range gen.Children {
			g.MustAddEdge(gn.ID, nodeOID[c], LChild, nil)
		}
	}
	return nil
}

// hasSchemaOID reports whether the construct belongs to the given schema.
func hasSchemaOID(n *pg.Node, oid int64) bool {
	so, ok := n.Props["schemaOID"]
	return ok && so.K == value.Int && so.I == oid
}

// FromDictionary reconstructs a super-schema from a graph dictionary.
func FromDictionary(g pg.View, schemaOID int64, name string) (*Schema, error) {
	s := NewSchema(name, schemaOID)

	typeName := func(owner pg.OID, typeEdgeLabel string) (string, error) {
		for _, e := range g.Out(owner) {
			if e.Label == typeEdgeLabel {
				t := g.Node(e.To)
				if nm, ok := t.Props["name"]; ok {
					return nm.S, nil
				}
			}
		}
		return "", fmt.Errorf("supermodel: construct %d has no %s", owner, typeEdgeLabel)
	}
	readAttrs := func(owner pg.OID, propEdgeLabel string) ([]*Attribute, error) {
		var out []*Attribute
		for _, e := range g.Out(owner) {
			if e.Label != propEdgeLabel {
				continue
			}
			an := g.Node(e.To)
			a := &Attribute{
				Name:          an.Props["name"].S,
				Type:          DataType(an.Props["dataType"].S),
				IsOpt:         an.Props["isOpt"].B,
				IsID:          an.Props["isId"].B,
				IsIntensional: e.Props["isIntensional"].B,
			}
			for _, me := range g.Out(an.ID) {
				if me.Label != LHasModifier {
					continue
				}
				mn := g.Node(me.To)
				m, err := parseModifier(mn.Label(), mn.Props["payload"].S)
				if err != nil {
					return nil, err
				}
				a.Modifiers = append(a.Modifiers, m)
			}
			out = append(out, a)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return out, nil
	}

	nodeName := map[pg.OID]string{}
	for _, n := range g.NodesByLabel(LNode) {
		if !hasSchemaOID(n, schemaOID) {
			continue
		}
		tn, err := typeName(n.ID, LHasNodeType)
		if err != nil {
			return nil, err
		}
		nodeName[n.ID] = tn
		attrs, err := readAttrs(n.ID, LHasNodeProp)
		if err != nil {
			return nil, err
		}
		if _, err := s.AddNode(tn, n.Props["isIntensional"].B, attrs...); err != nil {
			return nil, err
		}
	}
	for _, en := range g.NodesByLabel(LEdge) {
		if !hasSchemaOID(en, schemaOID) {
			continue
		}
		tn, err := typeName(en.ID, LHasEdgeType)
		if err != nil {
			return nil, err
		}
		var from, to string
		for _, e := range g.Out(en.ID) {
			switch e.Label {
			case LFrom:
				from = nodeName[e.To]
			case LTo:
				to = nodeName[e.To]
			}
		}
		if from == "" || to == "" {
			return nil, fmt.Errorf("supermodel: edge %s lacks SM_FROM or SM_TO", tn)
		}
		attrs, err := readAttrs(en.ID, LHasEdgeProp)
		if err != nil {
			return nil, err
		}
		fromCard := Cardinality{Min: 1, Max1: en.Props["isFun1"].B}
		if en.Props["isOpt1"].B {
			fromCard.Min = 0
		}
		toCard := Cardinality{Min: 1, Max1: en.Props["isFun2"].B}
		if en.Props["isOpt2"].B {
			toCard.Min = 0
		}
		if _, err := s.AddEdge(tn, en.Props["isIntensional"].B, from, to, fromCard, toCard, attrs...); err != nil {
			return nil, err
		}
	}
	for _, gn := range g.NodesByLabel(LGeneralization) {
		if !hasSchemaOID(gn, schemaOID) {
			continue
		}
		var parent string
		var children []string
		for _, e := range g.Out(gn.ID) {
			switch e.Label {
			case LParent:
				parent = nodeName[e.To]
			case LChild:
				children = append(children, nodeName[e.To])
			}
		}
		sort.Strings(children)
		gname := ""
		if nm, ok := gn.Props["name"]; ok {
			gname = nm.S
		}
		if _, err := s.AddGeneralization(gname, parent, children, gn.Props["isTotal"].B, gn.Props["isDisjoint"].B); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func parseModifier(kind, payload string) (Modifier, error) {
	switch kind {
	case "SM_UniqueAttributeModifier":
		return UniqueModifier{}, nil
	case "SM_EnumAttributeModifier":
		inner := strings.TrimSuffix(strings.TrimPrefix(payload, "enum("), ")")
		var vals []string
		if inner != "" {
			vals = strings.Split(inner, ",")
		}
		return EnumModifier{Values: vals}, nil
	case "SM_RangeAttributeModifier":
		var lo, hi float64
		if _, err := fmt.Sscanf(payload, "range(%g,%g)", &lo, &hi); err != nil {
			return nil, fmt.Errorf("supermodel: bad range modifier payload %q", payload)
		}
		return RangeModifier{Min: lo, Max: hi}, nil
	case "SM_DefaultAttributeModifier":
		inner := strings.TrimSuffix(strings.TrimPrefix(payload, "default("), ")")
		return DefaultModifier{Value: inner}, nil
	default:
		return nil, fmt.Errorf("supermodel: unknown modifier kind %q", kind)
	}
}

// SchemaInfo summarizes one schema stored in a dictionary.
type SchemaInfo struct {
	OID             int64
	Nodes           int
	Edges           int
	Generalizations int
}

// ListSchemas inventories the schemas a dictionary holds, sorted by OID —
// the paper's dictionaries store many schemas side by side, selected by
// schemaOID (Example 5.1).
func ListSchemas(g pg.View) []SchemaInfo {
	byOID := map[int64]*SchemaInfo{}
	get := func(n *pg.Node) *SchemaInfo {
		so, ok := n.Props["schemaOID"]
		if !ok || so.K != value.Int {
			return nil
		}
		info := byOID[so.I]
		if info == nil {
			info = &SchemaInfo{OID: so.I}
			byOID[so.I] = info
		}
		return info
	}
	for _, n := range g.NodesByLabel(LNode) {
		if info := get(n); info != nil {
			info.Nodes++
		}
	}
	for _, n := range g.NodesByLabel(LEdge) {
		if info := get(n); info != nil {
			info.Edges++
		}
	}
	for _, n := range g.NodesByLabel(LGeneralization) {
		if info := get(n); info != nil {
			info.Generalizations++
		}
	}
	oids := make([]int64, 0, len(byOID))
	for oid := range byOID {
		oids = append(oids, oid)
	}
	sortedset.Sort(oids)
	out := make([]SchemaInfo, 0, len(oids))
	for _, oid := range oids {
		out = append(out, *byOID[oid])
	}
	return out
}

// MetaModelDictionary builds the fixed meta-model graph of Figure 2: the
// foundational meta-constructs MM_Entity, MM_Link and MM_Property, with
// their connecting links and cardinalities.
func MetaModelDictionary() *pg.Graph {
	g := pg.New()
	entity := g.AddNode([]string{"MM_Entity"}, pg.Props{
		"name":       value.Str("MM_Entity"),
		"attributes": value.Str("name"),
	})
	link := g.AddNode([]string{"MM_Link"}, pg.Props{
		"name":       value.Str("MM_Link"),
		"attributes": value.Str("name"),
	})
	prop := g.AddNode([]string{"MM_Property"}, pg.Props{
		"name":       value.Str("MM_Property"),
		"attributes": value.Str("name,type"),
	})
	g.MustAddEdge(entity.ID, prop.ID, "MM_HAS_PROPERTY", pg.Props{"card": value.Str("0..N")})
	g.MustAddEdge(link.ID, prop.ID, "MM_HAS_PROPERTY", pg.Props{"card": value.Str("0..N")})
	g.MustAddEdge(link.ID, entity.ID, "MM_SOURCE", pg.Props{"card": value.Str("1..1")})
	g.MustAddEdge(link.ID, entity.ID, "MM_TARGET", pg.Props{"card": value.Str("1..1")})
	return g
}

// SuperConstructSpec describes one super-construct of the super-model
// dictionary (Figure 3).
type SuperConstructSpec struct {
	Name        string
	MetaKind    string // MM_Entity or MM_Link
	Attributes  []string
	Source      string // for links: the source super-construct
	Target      string // for links: the target super-construct
	Specializes string // for modifier specializations
}

// SuperModelConstructs returns the contents of the super-model dictionary of
// Figure 3: every super-construct with its meta-kind, attributes and, for
// link constructs, endpoints.
func SuperModelConstructs() []SuperConstructSpec {
	return []SuperConstructSpec{
		{Name: "SM_Node", MetaKind: "MM_Entity", Attributes: []string{"isIntensional"}},
		{Name: "SM_Edge", MetaKind: "MM_Entity", Attributes: []string{"isIntensional", "isOpt1", "isFun1", "isOpt2", "isFun2"}},
		{Name: "SM_Type", MetaKind: "MM_Entity", Attributes: []string{"name"}},
		{Name: "SM_Attribute", MetaKind: "MM_Entity", Attributes: []string{"name", "dataType", "isOpt", "isId"}},
		{Name: "SM_Generalization", MetaKind: "MM_Entity", Attributes: []string{"isTotal", "isDisjoint"}},
		{Name: "SM_AttributeModifier", MetaKind: "MM_Entity"},
		{Name: "SM_UniqueAttributeModifier", MetaKind: "MM_Entity", Specializes: "SM_AttributeModifier"},
		{Name: "SM_EnumAttributeModifier", MetaKind: "MM_Entity", Attributes: []string{"values"}, Specializes: "SM_AttributeModifier"},
		{Name: "SM_RangeAttributeModifier", MetaKind: "MM_Entity", Attributes: []string{"min", "max"}, Specializes: "SM_AttributeModifier"},
		{Name: "SM_DefaultAttributeModifier", MetaKind: "MM_Entity", Attributes: []string{"value"}, Specializes: "SM_AttributeModifier"},
		{Name: "SM_HAS_NODE_TYPE", MetaKind: "MM_Link", Source: "SM_Node", Target: "SM_Type"},
		{Name: "SM_HAS_EDGE_TYPE", MetaKind: "MM_Link", Source: "SM_Edge", Target: "SM_Type"},
		{Name: "SM_HAS_NODE_PROPERTY", MetaKind: "MM_Link", Source: "SM_Node", Target: "SM_Attribute"},
		{Name: "SM_HAS_EDGE_PROPERTY", MetaKind: "MM_Link", Source: "SM_Edge", Target: "SM_Attribute"},
		{Name: "SM_FROM", MetaKind: "MM_Link", Source: "SM_Edge", Target: "SM_Node"},
		{Name: "SM_TO", MetaKind: "MM_Link", Source: "SM_Edge", Target: "SM_Node"},
		{Name: "SM_PARENT", MetaKind: "MM_Link", Source: "SM_Generalization", Target: "SM_Node"},
		{Name: "SM_CHILD", MetaKind: "MM_Link", Source: "SM_Generalization", Target: "SM_Node"},
		{Name: "SM_HAS_MODIFIER", MetaKind: "MM_Link", Source: "SM_Attribute", Target: "SM_AttributeModifier"},
	}
}

// SuperModelDictionary builds the super-model dictionary of Figure 3 as an
// instance of the meta-model: one MM_Entity node per entity super-construct
// (with MM_Property nodes for its attributes) and one MM_Link edge per link
// super-construct.
func SuperModelDictionary() *pg.Graph {
	g := pg.New()
	byName := map[string]pg.OID{}
	specs := SuperModelConstructs()
	for _, sc := range specs {
		if sc.MetaKind != "MM_Entity" {
			continue
		}
		n := g.AddNode([]string{"MM_Entity"}, pg.Props{"name": value.Str(sc.Name)})
		byName[sc.Name] = n.ID
		for _, a := range sc.Attributes {
			p := g.AddNode([]string{"MM_Property"}, pg.Props{"name": value.Str(a)})
			g.MustAddEdge(n.ID, p.ID, "MM_HAS_PROPERTY", nil)
		}
	}
	for _, sc := range specs {
		switch {
		case sc.MetaKind == "MM_Link":
			g.MustAddEdge(byName[sc.Source], byName[sc.Target], "MM_Link", pg.Props{"name": value.Str(sc.Name)})
		case sc.Specializes != "":
			g.MustAddEdge(byName[sc.Name], byName[sc.Specializes], "MM_SPECIALIZES", nil)
		}
	}
	return g
}
