// Package supermodel implements the meta-level data representation of
// KGModel (Section 3 of the paper): the meta-model, the super-model with its
// super-constructs (SM_Node, SM_Edge, SM_Attribute, SM_Type,
// SM_Generalization, attribute modifiers), and super-schemas — instances of
// the super-model that describe the extensional component of a Knowledge
// Graph in a model-independent way.
//
// Super-schemas exist in two interchangeable forms: a typed Go API (this
// file), convenient for programmatic construction and validation, and a
// property-graph dictionary encoding (dictionary.go) over which the MetaLog
// translation mappings of Section 5 operate.
package supermodel

import (
	"fmt"
	"sort"
	"strings"
)

// DataType is the domain of an SM_Attribute.
type DataType string

// The attribute data types. Date is represented as an ISO-8601 string at the
// instance level.
const (
	String DataType = "string"
	Int    DataType = "int"
	Float  DataType = "float"
	Bool   DataType = "bool"
	Date   DataType = "date"
)

// ValidDataType reports whether t is a known data type.
func ValidDataType(t DataType) bool {
	switch t {
	case String, Int, Float, Bool, Date:
		return true
	}
	return false
}

// Modifier is an SM_AttributeModifier: supplementary information enriching
// an attribute with formatting or domain constraints (Section 3.2). Each
// concrete modifier corresponds to a super-construct of its own.
type Modifier interface {
	// Kind returns the modifier's super-construct name, e.g.
	// "SM_UniqueAttributeModifier".
	Kind() string
	// Describe renders the modifier's payload for dictionaries and
	// diagnostics.
	Describe() string
}

// UniqueModifier prescribes that an attribute has a unique value among the
// nodes with the same SM_Type (the paper's SM_UniqeAttributeModifier).
type UniqueModifier struct{}

// Kind implements Modifier.
func (UniqueModifier) Kind() string { return "SM_UniqueAttributeModifier" }

// Describe implements Modifier.
func (UniqueModifier) Describe() string { return "unique" }

// EnumModifier lists all the values an attribute may take.
type EnumModifier struct{ Values []string }

// Kind implements Modifier.
func (EnumModifier) Kind() string { return "SM_EnumAttributeModifier" }

// Describe implements Modifier.
func (m EnumModifier) Describe() string { return "enum(" + strings.Join(m.Values, ",") + ")" }

// RangeModifier constrains a numeric attribute to [Min, Max].
type RangeModifier struct{ Min, Max float64 }

// Kind implements Modifier.
func (RangeModifier) Kind() string { return "SM_RangeAttributeModifier" }

// Describe implements Modifier.
func (m RangeModifier) Describe() string { return fmt.Sprintf("range(%g,%g)", m.Min, m.Max) }

// DefaultModifier supplies a default value (as its textual form).
type DefaultModifier struct{ Value string }

// Kind implements Modifier.
func (DefaultModifier) Kind() string { return "SM_DefaultAttributeModifier" }

// Describe implements Modifier.
func (m DefaultModifier) Describe() string { return "default(" + m.Value + ")" }

// Attribute is an SM_Attribute: a property of a node or edge that has no
// identity of its own (Section 3.2). Identifying attributes (IsID) form the
// single identifier of their SM_Node.
type Attribute struct {
	Name  string
	Type  DataType
	IsID  bool
	IsOpt bool
	// IsIntensional marks derived properties (the paper's intensional
	// numberOfStakeholders, for instance). Per Figure 3, the flag lives on
	// the SM_HAS_NODE_PROPERTY / SM_HAS_EDGE_PROPERTY link in the
	// dictionary encoding.
	IsIntensional bool
	Modifiers     []Modifier
}

func (a *Attribute) String() string {
	s := a.Name + ": " + string(a.Type)
	if a.IsID {
		s += " @id"
	}
	if a.IsOpt {
		s += " @opt"
	}
	return s
}

// Attr builds an attribute; chain ID/Opt/With for markers and modifiers.
func Attr(name string, t DataType) *Attribute { return &Attribute{Name: name, Type: t} }

// ID marks the attribute as identifying and returns it.
func (a *Attribute) ID() *Attribute { a.IsID = true; return a }

// Opt marks the attribute as optional and returns it.
func (a *Attribute) Opt() *Attribute { a.IsOpt = true; return a }

// With appends a modifier and returns the attribute.
func (a *Attribute) With(m Modifier) *Attribute { a.Modifiers = append(a.Modifiers, m); return a }

// Intensional marks the attribute as derived by reasoning and returns it.
func (a *Attribute) Intensional() *Attribute { a.IsIntensional = true; return a }

// Node is an SM_Node: a relevant domain object with its own identity, type
// and distinguishing properties. Intensional nodes are derived by the
// reasoning process rather than stored in the ground data.
type Node struct {
	Name          string
	IsIntensional bool
	Attributes    []*Attribute
}

// Attribute returns the node's attribute with the given name, or nil.
func (n *Node) Attribute(name string) *Attribute {
	for _, a := range n.Attributes {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// IDAttributes returns the identifying attributes, in declaration order.
func (n *Node) IDAttributes() []*Attribute {
	var out []*Attribute
	for _, a := range n.Attributes {
		if a.IsID {
			out = append(out, a)
		}
	}
	return out
}

// Cardinality is one side of an SM_Edge's participation constraint.
// Min is 0 or 1 (optional vs mandatory participation), Max1 caps the number
// of connections at one. These encode the paper's isOpt/isFun flags.
type Cardinality struct {
	Min  int // 0 or 1
	Max1 bool
}

func (c Cardinality) String() string {
	max := "N"
	if c.Max1 {
		max = "1"
	}
	return fmt.Sprintf("%d..%s", c.Min, max)
}

// Common cardinalities.
var (
	ZeroToMany = Cardinality{Min: 0, Max1: false}
	ZeroToOne  = Cardinality{Min: 0, Max1: true}
	OneToMany  = Cardinality{Min: 1, Max1: false}
	ExactlyOne = Cardinality{Min: 1, Max1: true}
)

// ParseCardinality parses "0..N", "1..1", "0..1" or "1..N".
func ParseCardinality(s string) (Cardinality, error) {
	switch s {
	case "0..N", "0..n", "0..*":
		return ZeroToMany, nil
	case "0..1":
		return ZeroToOne, nil
	case "1..N", "1..n", "1..*":
		return OneToMany, nil
	case "1..1":
		return ExactlyOne, nil
	}
	return Cardinality{}, fmt.Errorf("supermodel: bad cardinality %q (want 0..1, 1..1, 0..N or 1..N)", s)
}

// Edge is an SM_Edge: a binary aggregation of two SM_Nodes. FromCard
// constrains how many edges of this type a single source instance may have,
// ToCard how many a single target instance may have. Super-schemas are
// simple graphs by construction: every SM_Edge has one single SM_Type, so
// edge names are unique.
type Edge struct {
	Name          string
	IsIntensional bool
	From, To      string
	FromCard      Cardinality
	ToCard        Cardinality
	Attributes    []*Attribute
}

// IsManyToMany reports whether neither side is capped at one connection.
func (e *Edge) IsManyToMany() bool { return !e.FromCard.Max1 && !e.ToCard.Max1 }

// IsOneToMany reports whether each target instance has at most one edge
// while sources may have many (a functional dependency target -> source).
func (e *Edge) IsOneToMany() bool { return !e.FromCard.Max1 && e.ToCard.Max1 }

// IsManyToOne reports whether each source instance has at most one edge
// while targets may have many.
func (e *Edge) IsManyToOne() bool { return e.FromCard.Max1 && !e.ToCard.Max1 }

// IsOneToOne reports whether both sides are capped at one.
func (e *Edge) IsOneToOne() bool { return e.FromCard.Max1 && e.ToCard.Max1 }

// Attribute returns the edge's attribute with the given name, or nil.
func (e *Edge) Attribute(name string) *Attribute {
	for _, a := range e.Attributes {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Generalization is an SM_Generalization: the specialization-abstraction
// relationship between a parent node and its children (Section 3.2). Total:
// every parent instance is an instance of some child. Disjoint: parent
// instances belong to at most one child.
type Generalization struct {
	Name       string // optional; defaults to parent name + "Kind"
	Parent     string
	Children   []string
	IsTotal    bool
	IsDisjoint bool
}

// Schema is a super-schema: an instance of the super-model describing a
// domain (Section 3.2). OID is the schemaOID used to select it inside graph
// dictionaries.
type Schema struct {
	Name string
	OID  int64

	Nodes           []*Node
	Edges           []*Edge
	Generalizations []*Generalization

	nodeIndex map[string]*Node
	edgeIndex map[string]*Edge
}

// NewSchema returns an empty super-schema with the given name and schemaOID.
func NewSchema(name string, oid int64) *Schema {
	return &Schema{
		Name:      name,
		OID:       oid,
		nodeIndex: map[string]*Node{},
		edgeIndex: map[string]*Edge{},
	}
}

// Node returns the node with the given type name, or nil.
func (s *Schema) Node(name string) *Node { return s.nodeIndex[name] }

// Edge returns the edge with the given type name, or nil.
func (s *Schema) Edge(name string) *Edge { return s.edgeIndex[name] }

// AddNode adds an SM_Node to the schema.
func (s *Schema) AddNode(name string, intensional bool, attrs ...*Attribute) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("supermodel: node name cannot be empty")
	}
	if s.nodeIndex[name] != nil || s.edgeIndex[name] != nil {
		return nil, fmt.Errorf("supermodel: type name %s already in use", name)
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if !ValidDataType(a.Type) {
			return nil, fmt.Errorf("supermodel: attribute %s.%s has unknown type %q", name, a.Name, a.Type)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("supermodel: duplicate attribute %s.%s", name, a.Name)
		}
		if a.IsID && a.IsOpt {
			return nil, fmt.Errorf("supermodel: attribute %s.%s cannot be both identifying and optional", name, a.Name)
		}
		seen[a.Name] = true
	}
	n := &Node{Name: name, IsIntensional: intensional, Attributes: attrs}
	s.Nodes = append(s.Nodes, n)
	s.nodeIndex[name] = n
	return n, nil
}

// MustAddNode is AddNode that panics on error, for statically known schemas.
func (s *Schema) MustAddNode(name string, intensional bool, attrs ...*Attribute) *Node {
	n, err := s.AddNode(name, intensional, attrs...)
	if err != nil {
		panic(err)
	}
	return n
}

// AddEdge adds an SM_Edge between two declared nodes.
func (s *Schema) AddEdge(name string, intensional bool, from, to string, fromCard, toCard Cardinality, attrs ...*Attribute) (*Edge, error) {
	if name == "" {
		return nil, fmt.Errorf("supermodel: edge name cannot be empty")
	}
	if s.nodeIndex[name] != nil || s.edgeIndex[name] != nil {
		return nil, fmt.Errorf("supermodel: type name %s already in use", name)
	}
	if s.nodeIndex[from] == nil {
		return nil, fmt.Errorf("supermodel: edge %s: unknown source node %s", name, from)
	}
	if s.nodeIndex[to] == nil {
		return nil, fmt.Errorf("supermodel: edge %s: unknown target node %s", name, to)
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if !ValidDataType(a.Type) {
			return nil, fmt.Errorf("supermodel: attribute %s.%s has unknown type %q", name, a.Name, a.Type)
		}
		if a.IsID {
			return nil, fmt.Errorf("supermodel: edge attribute %s.%s cannot be identifying", name, a.Name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("supermodel: duplicate attribute %s.%s", name, a.Name)
		}
		seen[a.Name] = true
	}
	e := &Edge{
		Name: name, IsIntensional: intensional,
		From: from, To: to,
		FromCard: fromCard, ToCard: toCard,
		Attributes: attrs,
	}
	s.Edges = append(s.Edges, e)
	s.edgeIndex[name] = e
	return e, nil
}

// MustAddEdge is AddEdge that panics on error.
func (s *Schema) MustAddEdge(name string, intensional bool, from, to string, fromCard, toCard Cardinality, attrs ...*Attribute) *Edge {
	e, err := s.AddEdge(name, intensional, from, to, fromCard, toCard, attrs...)
	if err != nil {
		panic(err)
	}
	return e
}

// AddGeneralization adds an SM_Generalization.
func (s *Schema) AddGeneralization(name, parent string, children []string, total, disjoint bool) (*Generalization, error) {
	if s.nodeIndex[parent] == nil {
		return nil, fmt.Errorf("supermodel: generalization: unknown parent node %s", parent)
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("supermodel: generalization of %s has no children", parent)
	}
	seen := map[string]bool{}
	for _, c := range children {
		if s.nodeIndex[c] == nil {
			return nil, fmt.Errorf("supermodel: generalization of %s: unknown child node %s", parent, c)
		}
		if c == parent {
			return nil, fmt.Errorf("supermodel: generalization of %s cannot contain itself", parent)
		}
		if seen[c] {
			return nil, fmt.Errorf("supermodel: generalization of %s: duplicate child %s", parent, c)
		}
		seen[c] = true
	}
	if name == "" {
		name = parent + "Kind"
	}
	g := &Generalization{Name: name, Parent: parent, Children: children, IsTotal: total, IsDisjoint: disjoint}
	s.Generalizations = append(s.Generalizations, g)
	return g, nil
}

// MustAddGeneralization is AddGeneralization that panics on error.
func (s *Schema) MustAddGeneralization(name, parent string, children []string, total, disjoint bool) *Generalization {
	g, err := s.AddGeneralization(name, parent, children, total, disjoint)
	if err != nil {
		panic(err)
	}
	return g
}

// Parents returns the direct parents of a node across all generalizations,
// sorted.
func (s *Schema) Parents(node string) []string {
	var out []string
	for _, g := range s.Generalizations {
		for _, c := range g.Children {
			if c == node {
				out = append(out, g.Parent)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Children returns the direct children of a node across all generalizations,
// sorted.
func (s *Schema) Children(node string) []string {
	var out []string
	for _, g := range s.Generalizations {
		if g.Parent == node {
			out = append(out, g.Children...)
		}
	}
	sort.Strings(out)
	return out
}

// Ancestors returns every transitive ancestor of a node, sorted.
func (s *Schema) Ancestors(node string) []string {
	seen := map[string]bool{}
	var visit func(n string)
	visit = func(n string) {
		for _, p := range s.Parents(n) {
			if !seen[p] {
				seen[p] = true
				visit(p)
			}
		}
	}
	visit(node)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Descendants returns every transitive descendant of a node, sorted.
func (s *Schema) Descendants(node string) []string {
	seen := map[string]bool{}
	var visit func(n string)
	visit = func(n string) {
		for _, c := range s.Children(n) {
			if !seen[c] {
				seen[c] = true
				visit(c)
			}
		}
	}
	visit(node)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EffectiveAttributes returns a node's own attributes plus those inherited
// from all its ancestors, own first, each ancestor's in declaration order.
func (s *Schema) EffectiveAttributes(node string) []*Attribute {
	n := s.Node(node)
	if n == nil {
		return nil
	}
	out := append([]*Attribute(nil), n.Attributes...)
	seen := map[string]bool{}
	for _, a := range out {
		seen[a.Name] = true
	}
	for _, anc := range s.Ancestors(node) {
		an := s.Node(anc)
		for _, a := range an.Attributes {
			if !seen[a.Name] {
				seen[a.Name] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// EffectiveIDAttributes returns the identifying attributes of a node,
// searching up the generalization hierarchy when the node does not declare
// its own identifier (children inherit the parent identifier).
func (s *Schema) EffectiveIDAttributes(node string) []*Attribute {
	var out []*Attribute
	for _, a := range s.EffectiveAttributes(node) {
		if a.IsID {
			out = append(out, a)
		}
	}
	return out
}

// Validate checks the structural invariants of the super-schema:
// generalization acyclicity, identifier presence (every extensional node
// must have an identifier, possibly inherited), and referential integrity
// (guaranteed by construction for Add* calls, re-checked for schemas built
// by deserialization).
func (s *Schema) Validate() error {
	// Referential integrity.
	for _, e := range s.Edges {
		if s.Node(e.From) == nil {
			return fmt.Errorf("supermodel: edge %s: unknown source node %s", e.Name, e.From)
		}
		if s.Node(e.To) == nil {
			return fmt.Errorf("supermodel: edge %s: unknown target node %s", e.Name, e.To)
		}
	}
	for _, g := range s.Generalizations {
		if s.Node(g.Parent) == nil {
			return fmt.Errorf("supermodel: generalization %s: unknown parent %s", g.Name, g.Parent)
		}
		for _, c := range g.Children {
			if s.Node(c) == nil {
				return fmt.Errorf("supermodel: generalization %s: unknown child %s", g.Name, c)
			}
		}
	}
	// Generalization acyclicity.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(n string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("supermodel: generalization cycle through %s", n)
		case black:
			return nil
		}
		color[n] = gray
		for _, p := range s.Parents(n) {
			if err := visit(p); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range s.Nodes {
		if err := visit(n.Name); err != nil {
			return err
		}
	}
	// Identifier presence: every extensional node needs an identifier, own
	// or inherited (an SM_Node "always has one single identifier").
	for _, n := range s.Nodes {
		if n.IsIntensional {
			continue
		}
		if len(s.EffectiveIDAttributes(n.Name)) == 0 {
			return fmt.Errorf("supermodel: node %s has no identifying attributes (own or inherited)", n.Name)
		}
	}
	return nil
}

// Stats summarizes the schema for reports.
func (s *Schema) Stats() string {
	intN, intE := 0, 0
	for _, n := range s.Nodes {
		if n.IsIntensional {
			intN++
		}
	}
	for _, e := range s.Edges {
		if e.IsIntensional {
			intE++
		}
	}
	return fmt.Sprintf("%d nodes (%d intensional), %d edges (%d intensional), %d generalizations",
		len(s.Nodes), intN, len(s.Edges), intE, len(s.Generalizations))
}

// rebuildIndexes restores the name indexes after deserialization.
func (s *Schema) rebuildIndexes() {
	s.nodeIndex = map[string]*Node{}
	s.edgeIndex = map[string]*Edge{}
	for _, n := range s.Nodes {
		s.nodeIndex[n.Name] = n
	}
	for _, e := range s.Edges {
		s.edgeIndex[e.Name] = e
	}
}
