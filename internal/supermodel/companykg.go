package supermodel

// CompanyKG builds the reference super-schema of the Bank of Italy Company
// Knowledge Graph (Figure 4), following the design walk-through of
// Section 3.3 step by step:
//
//   - Person generalizes PhysicalPerson and LegalPerson (total, disjoint);
//   - LegalPerson generalizes Business and NonBusiness (total, disjoint);
//   - Business specializes into PublicListedCompany (non-total);
//   - Share specializes into StockShare (non-total);
//   - the HOLDS / BELONGS_TO decoupling allows multiple persons to hold one
//     share, while the intensional OWNS and CONTROLS edges compactly expose
//     property and control for the analysts;
//   - Family, IS_RELATED_TO, BELONGS_TO_FAMILY and FAMILY_OWNS are the
//     intensional family constructs;
//   - BusinessEvent records mergers, acquisitions and splits via
//     PARTICIPATES edges.
//
// CompanyKGOID is the schemaOID the paper's examples use (123).
const CompanyKGOID = 123

// CompanyKG returns the Figure 4 super-schema. The schema validates.
func CompanyKG() *Schema {
	s := NewSchema("CompanyKG", CompanyKGOID)

	// «I will capture the structure by introducing distinct SM_Nodes for
	// persons ... a Person generalizes and collects the common features.»
	s.MustAddNode("Person", false,
		Attr("fiscalCode", String).ID().With(UniqueModifier{}),
	)
	s.MustAddNode("PhysicalPerson", false,
		Attr("name", String),
		Attr("gender", String).With(EnumModifier{Values: []string{"female", "male", "other"}}),
		Attr("birthDate", Date).Opt(),
	)
	s.MustAddNode("LegalPerson", false,
		Attr("businessName", String),
		Attr("legalNature", String),
		Attr("website", String).Opt(),
	)
	s.MustAddGeneralization("PersonKind", "Person",
		[]string{"PhysicalPerson", "LegalPerson"}, true, true)

	// «The address is an autonomous business entity ... I will introduce a
	// Place SM_Node.»
	s.MustAddNode("Place", false,
		Attr("street", String).ID(),
		Attr("streetNumber", String).ID(),
		Attr("city", String).ID(),
		Attr("postalCode", String).ID(),
		Attr("gpsCoordinates", String).Opt(),
	)

	// «I will introduce a further SM_Generalization by specializing the
	// LegalPerson into a Business ... and a NonBusiness.»
	s.MustAddNode("Business", false,
		Attr("shareholdingCapital", Float),
		Attr("numberOfStakeholders", Int).Opt().Intensional(),
	)
	s.MustAddNode("NonBusiness", false,
		Attr("isGovernmental", Bool),
	)
	s.MustAddGeneralization("LegalPersonKind", "LegalPerson",
		[]string{"Business", "NonBusiness"}, true, true)

	// «One more specialization of Business ... PublicListedCompany; as a
	// business can be publicly listed or not, the generalization will not
	// be total.»
	s.MustAddNode("PublicListedCompany", false,
		Attr("stockExchange", String),
		Attr("tickerSymbol", String).Opt(),
	)
	s.MustAddGeneralization("BusinessKind", "Business",
		[]string{"PublicListedCompany"}, false, true)

	// «I will introduce a Share SM_Node (which represents a portion of the
	// business capital) ... stock shares as a specialization of Share.»
	s.MustAddNode("Share", false,
		Attr("shareCode", String).ID(),
		Attr("percentage", Float).With(RangeModifier{Min: 0, Max: 1}),
	)
	s.MustAddNode("StockShare", false,
		Attr("numberOfStocks", Int),
	)
	s.MustAddGeneralization("ShareKind", "Share",
		[]string{"StockShare"}, false, true)

	// «Each business can participate [in business events] through a
	// PARTICIPATES SM_Edge with a specific role.»
	s.MustAddNode("BusinessEvent", false,
		Attr("eventCode", String).ID(),
		Attr("type", String).With(EnumModifier{Values: []string{"merger", "acquisition", "split"}}),
		Attr("date", Date),
	)

	// «Each PhysicalPerson has an intensional BELONGS_TO_FAMILY SM_Edge
	// connecting it to a Family SM_Node.»
	s.MustAddNode("Family", true,
		Attr("familyName", String),
	)

	// Extensional relationships, placed on the topmost nodes of the
	// generalization hierarchy that participate in them (Section 3.3).
	s.MustAddEdge("RESIDES", false, "Person", "Place", ZeroToOne, ZeroToMany,
		Attr("since", Date).Opt(),
	)
	s.MustAddEdge("HOLDS", false, "Person", "Share", ZeroToMany, OneToMany,
		Attr("right", String).With(EnumModifier{Values: []string{"ownership", "bare ownership", "usufruct"}}),
		Attr("percentage", Float),
	)
	s.MustAddEdge("BELONGS_TO", false, "Share", "Business", ExactlyOne, ZeroToMany)
	s.MustAddEdge("HAS_ROLE", false, "Person", "LegalPerson", ZeroToMany, ZeroToMany,
		Attr("role", String),
		Attr("since", Date).Opt(),
	)
	s.MustAddEdge("REPRESENTS", false, "PhysicalPerson", "LegalPerson", ZeroToMany, ZeroToMany)
	s.MustAddEdge("PARTICIPATES", false, "Business", "BusinessEvent", ZeroToMany, OneToMany,
		Attr("role", String),
	)

	// Intensional relationships (dashed graphemes in GSL).
	s.MustAddEdge("OWNS", true, "Person", "Business", ZeroToMany, ZeroToMany,
		Attr("percentage", Float),
	)
	s.MustAddEdge("CONTROLS", true, "Person", "Business", ZeroToMany, ZeroToMany)
	s.MustAddEdge("IS_RELATED_TO", true, "PhysicalPerson", "PhysicalPerson", ZeroToMany, ZeroToMany,
		Attr("kind", String).Opt(),
	)
	s.MustAddEdge("BELONGS_TO_FAMILY", true, "PhysicalPerson", "Family", ZeroToOne, OneToMany)
	s.MustAddEdge("FAMILY_OWNS", true, "Family", "Business", ZeroToMany, ZeroToMany)

	return s
}
