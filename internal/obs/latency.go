package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// LatencyTracker aggregates request latencies per named operation — the
// serving layer uses one per server with the endpoint as the name. It is a
// trace in the same spirit as RunTrace: cheap to record on the hot path
// (one mutex-guarded fold), deterministic to serialize (names sorted,
// wall-clock fields separable from the structural ones).
type LatencyTracker struct {
	mu  sync.Mutex
	ops map[string]*opLatency
}

type opLatency struct {
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// OpLatency is one operation's aggregated latency figures.
type OpLatency struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
}

// NewLatencyTracker returns an empty tracker.
func NewLatencyTracker() *LatencyTracker {
	return &LatencyTracker{ops: map[string]*opLatency{}}
}

// Observe folds one completed operation into the per-name aggregate.
func (t *LatencyTracker) Observe(name string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	op := t.ops[name]
	if op == nil {
		op = &opLatency{min: d}
		t.ops[name] = op
	}
	op.count++
	op.total += d
	if d < op.min {
		op.min = d
	}
	if d > op.max {
		op.max = d
	}
	t.mu.Unlock()
}

// Snapshot returns the aggregates sorted by name.
func (t *LatencyTracker) Snapshot() []OpLatency {
	t.mu.Lock()
	out := make([]OpLatency, 0, len(t.ops))
	for name, op := range t.ops {
		o := OpLatency{Name: name, Count: op.count, Total: op.total, Min: op.min, Max: op.max}
		if op.count > 0 {
			o.Mean = op.total / time.Duration(op.count)
		}
		out = append(out, o)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON serializes the snapshot as an indented JSON array, names sorted.
func (t *LatencyTracker) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}
