package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
	"sync/atomic"
)

// Process-wide engine counters. The engine bumps them on every run
// completion; RegisterExpvar exposes them under the "vadalog" expvar map.
var (
	runsTotal    atomic.Int64
	runsCanceled atomic.Int64
	runsTimedOut atomic.Int64
	runsErrored  atomic.Int64
	roundsTotal  atomic.Int64
	derivedTotal atomic.Int64

	// Retry counters, bumped by fault.RetryPolicy: individual retry
	// attempts, and the outcomes of retry sequences (an operation that
	// eventually succeeded after retrying, or gave up).
	retriesTotal   atomic.Int64
	retrySucceeded atomic.Int64
	retryExhausted atomic.Int64

	registerOnce sync.Once
)

// CountRetry records one retry attempt of the named operation. The name is
// currently informational (the counters are process-global); it keeps the
// call sites self-describing and leaves room for per-op maps.
func CountRetry(string) { retriesTotal.Add(1) }

// CountRetryOutcome records the end of a retry sequence: success after at
// least one retry, or exhaustion of the attempt budget.
func CountRetryOutcome(succeeded bool) {
	if succeeded {
		retrySucceeded.Add(1)
	} else {
		retryExhausted.Add(1)
	}
}

// CountRun folds one finished engine run into the process-wide counters.
// Status follows Outcome.Status: "ok", "canceled", "timeout" or "error".
func CountRun(status string, rounds, derived int) {
	runsTotal.Add(1)
	roundsTotal.Add(int64(rounds))
	derivedTotal.Add(int64(derived))
	switch status {
	case "canceled":
		runsCanceled.Add(1)
	case "timeout":
		runsTimedOut.Add(1)
	case "error":
		runsErrored.Add(1)
	}
}

// CounterSnapshot is a point-in-time copy of the process-wide counters.
type CounterSnapshot struct {
	Runs, Canceled, TimedOut, Errored int64
	Rounds, Derived                   int64

	Retries, RetrySucceeded, RetryExhausted int64
}

// Counters returns the current process-wide counter values.
func Counters() CounterSnapshot {
	return CounterSnapshot{
		Runs:           runsTotal.Load(),
		Canceled:       runsCanceled.Load(),
		TimedOut:       runsTimedOut.Load(),
		Errored:        runsErrored.Load(),
		Rounds:         roundsTotal.Load(),
		Derived:        derivedTotal.Load(),
		Retries:        retriesTotal.Load(),
		RetrySucceeded: retrySucceeded.Load(),
		RetryExhausted: retryExhausted.Load(),
	}
}

// RegisterExpvar publishes the engine counters as the expvar map "vadalog"
// (served at /debug/vars). Safe to call more than once.
func RegisterExpvar() {
	registerOnce.Do(func() {
		m := new(expvar.Map)
		m.Set("runs", expvar.Func(func() any { return runsTotal.Load() }))
		m.Set("runs_canceled", expvar.Func(func() any { return runsCanceled.Load() }))
		m.Set("runs_timed_out", expvar.Func(func() any { return runsTimedOut.Load() }))
		m.Set("runs_errored", expvar.Func(func() any { return runsErrored.Load() }))
		m.Set("rounds", expvar.Func(func() any { return roundsTotal.Load() }))
		m.Set("facts_derived", expvar.Func(func() any { return derivedTotal.Load() }))
		m.Set("retries", expvar.Func(func() any { return retriesTotal.Load() }))
		m.Set("retries_succeeded", expvar.Func(func() any { return retrySucceeded.Load() }))
		m.Set("retries_exhausted", expvar.Func(func() any { return retryExhausted.Load() }))
		expvar.Publish("vadalog", m)
	})
}

// ServeDebug starts an HTTP server on addr exposing /debug/vars (expvar,
// including the engine counters) and /debug/pprof. It returns once the
// listener is bound; the server runs until the process exits. The CLIs wire
// this to their -pprof flag.
func ServeDebug(addr string) error {
	RegisterExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go http.Serve(ln, nil) //nolint:errcheck // best-effort debug endpoint
	return nil
}
