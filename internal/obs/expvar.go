package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
	"sync/atomic"
)

// Process-wide engine counters. The engine bumps them on every run
// completion; RegisterExpvar exposes them under the "vadalog" expvar map.
var (
	runsTotal    atomic.Int64
	runsCanceled atomic.Int64
	runsTimedOut atomic.Int64
	runsErrored  atomic.Int64
	roundsTotal  atomic.Int64
	derivedTotal atomic.Int64

	// Retry counters, bumped by fault.RetryPolicy: individual retry
	// attempts, and the outcomes of retry sequences (an operation that
	// eventually succeeded after retrying, or gave up).
	retriesTotal   atomic.Int64
	retrySucceeded atomic.Int64
	retryExhausted atomic.Int64

	// Planner counters, bumped by the cost-based query path
	// (metalog.Prepared): runs that executed a planned program vs the
	// written-order fallback, prepare-time fallbacks to unplanned, and the
	// running estimated-vs-actual row totals of planned runs — the drift
	// between the two is the cost model's calibration signal.
	plannedRuns    atomic.Int64
	unplannedRuns  atomic.Int64
	planFallbacks  atomic.Int64
	planEstRows    atomic.Int64
	planActualRows atomic.Int64

	registerOnce sync.Once
)

// CountPlanRun records one query evaluation: planned selects which run
// counter grows, and planned runs also accumulate the plan's estimated rows
// against the rows actually returned.
func CountPlanRun(planned bool, estRows, actualRows int64) {
	if planned {
		plannedRuns.Add(1)
		planEstRows.Add(estRows)
		planActualRows.Add(actualRows)
	} else {
		unplannedRuns.Add(1)
	}
}

// CountPlanFallback records one prepare-time fallback to written-order
// evaluation (no statistics, unsupported program shape, or a failed
// planning pass).
func CountPlanFallback() { planFallbacks.Add(1) }

// CountRetry records one retry attempt of the named operation. The name is
// currently informational (the counters are process-global); it keeps the
// call sites self-describing and leaves room for per-op maps.
func CountRetry(string) { retriesTotal.Add(1) }

// CountRetryOutcome records the end of a retry sequence: success after at
// least one retry, or exhaustion of the attempt budget.
func CountRetryOutcome(succeeded bool) {
	if succeeded {
		retrySucceeded.Add(1)
	} else {
		retryExhausted.Add(1)
	}
}

// CountRun folds one finished engine run into the process-wide counters.
// Status follows Outcome.Status: "ok", "canceled", "timeout" or "error".
func CountRun(status string, rounds, derived int) {
	runsTotal.Add(1)
	roundsTotal.Add(int64(rounds))
	derivedTotal.Add(int64(derived))
	switch status {
	case "canceled":
		runsCanceled.Add(1)
	case "timeout":
		runsTimedOut.Add(1)
	case "error":
		runsErrored.Add(1)
	}
}

// CounterSnapshot is a point-in-time copy of the process-wide counters.
type CounterSnapshot struct {
	Runs, Canceled, TimedOut, Errored int64
	Rounds, Derived                   int64

	Retries, RetrySucceeded, RetryExhausted int64

	PlannedRuns, UnplannedRuns, PlanFallbacks int64
	PlanEstRows, PlanActualRows               int64
}

// Counters returns the current process-wide counter values.
func Counters() CounterSnapshot {
	return CounterSnapshot{
		Runs:           runsTotal.Load(),
		Canceled:       runsCanceled.Load(),
		TimedOut:       runsTimedOut.Load(),
		Errored:        runsErrored.Load(),
		Rounds:         roundsTotal.Load(),
		Derived:        derivedTotal.Load(),
		Retries:        retriesTotal.Load(),
		RetrySucceeded: retrySucceeded.Load(),
		RetryExhausted: retryExhausted.Load(),

		PlannedRuns:    plannedRuns.Load(),
		UnplannedRuns:  unplannedRuns.Load(),
		PlanFallbacks:  planFallbacks.Load(),
		PlanEstRows:    planEstRows.Load(),
		PlanActualRows: planActualRows.Load(),
	}
}

// RegisterExpvar publishes the engine counters as the expvar map "vadalog"
// (served at /debug/vars). Safe to call more than once.
func RegisterExpvar() {
	registerOnce.Do(func() {
		m := new(expvar.Map)
		m.Set("runs", expvar.Func(func() any { return runsTotal.Load() }))
		m.Set("runs_canceled", expvar.Func(func() any { return runsCanceled.Load() }))
		m.Set("runs_timed_out", expvar.Func(func() any { return runsTimedOut.Load() }))
		m.Set("runs_errored", expvar.Func(func() any { return runsErrored.Load() }))
		m.Set("rounds", expvar.Func(func() any { return roundsTotal.Load() }))
		m.Set("facts_derived", expvar.Func(func() any { return derivedTotal.Load() }))
		m.Set("retries", expvar.Func(func() any { return retriesTotal.Load() }))
		m.Set("retries_succeeded", expvar.Func(func() any { return retrySucceeded.Load() }))
		m.Set("retries_exhausted", expvar.Func(func() any { return retryExhausted.Load() }))
		m.Set("planned_runs", expvar.Func(func() any { return plannedRuns.Load() }))
		m.Set("unplanned_runs", expvar.Func(func() any { return unplannedRuns.Load() }))
		m.Set("plan_fallbacks", expvar.Func(func() any { return planFallbacks.Load() }))
		m.Set("plan_est_rows", expvar.Func(func() any { return planEstRows.Load() }))
		m.Set("plan_actual_rows", expvar.Func(func() any { return planActualRows.Load() }))
		expvar.Publish("vadalog", m)
	})
}

// ServeDebug starts an HTTP server on addr exposing /debug/vars (expvar,
// including the engine counters) and /debug/pprof. It returns once the
// listener is bound; the server runs until the process exits. The CLIs wire
// this to their -pprof flag.
func ServeDebug(addr string) error {
	RegisterExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go http.Serve(ln, nil) //nolint:errcheck // best-effort debug endpoint
	return nil
}
