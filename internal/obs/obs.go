// Package obs is the observability layer of the reasoning pipeline: per-rule
// evaluation counters, a deterministic JSON run-trace writer, and process-wide
// expvar counters with an optional debug HTTP endpoint (pprof + /debug/vars).
//
// The engine records into a Trace handed to it via vadalog.Options.Trace. One
// Trace can span several engine runs (e.g. the component sequence of a
// kgreason materialization); each run appends a RunTrace in start order.
//
// Determinism. Everything the engine records except wall-clock time is a pure
// function of the program, the input database and the evaluation strategy —
// and the strategy is worker-count-independent by construction (the shard
// plan depends only on window sizes, the merge consumes shards in index
// order; see internal/vadalog/parallel.go). WriteJSON therefore omits the
// timing fields, making the trace of a fixed program byte-identical across
// worker counts; WriteJSONTimings includes them for profiling.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// RuleStats aggregates the evaluation counters of one rule across a run.
type RuleStats struct {
	// Rule is the rule's index in the program; Line and Label (the head
	// predicates) identify it in source terms.
	Rule  int    `json:"rule"`
	Line  int    `json:"line,omitempty"`
	Label string `json:"label,omitempty"`
	// Evals counts rule evaluations (one per window per fixpoint round),
	// Firings complete body matches, Derived newly inserted facts, and
	// Probes candidate facts visited at join steps.
	Evals   int64 `json:"evals"`
	Firings int64 `json:"firings"`
	Derived int64 `json:"derived"`
	Probes  int64 `json:"probes"`
	// WallNanos is cumulative evaluation wall time. It is the one
	// non-deterministic field; WriteJSON omits it.
	WallNanos int64 `json:"wall_ns,omitempty"`
}

// RoundStats records the delta size of one fixpoint round.
type RoundStats struct {
	Stratum int `json:"stratum"`
	Round   int `json:"round"`
	// Delta is the number of facts inserted during the round.
	Delta int `json:"delta"`
}

// Outcome summarizes how a run ended.
type Outcome struct {
	// Status is "ok", "canceled", "timeout" or "error".
	Status  string `json:"status"`
	Rounds  int    `json:"rounds"`
	Derived int    `json:"derived"`
	// DurationNanos is wall time; WriteJSON omits it.
	DurationNanos int64 `json:"duration_ns,omitempty"`
}

// RunTrace is the trace of one engine run. The engine records from its
// coordinating goroutine only (shard counters are summed after the merge
// barrier), so the methods need no locking.
type RunTrace struct {
	Rules   []RuleStats  `json:"rules"`
	Rounds  []RoundStats `json:"rounds"`
	Outcome Outcome      `json:"outcome"`
}

// DeclareRule registers a rule before evaluation so every rule appears in the
// trace even when it never fires. Rules must be declared in index order.
func (rt *RunTrace) DeclareRule(idx, line int, label string) {
	rt.Rules = append(rt.Rules, RuleStats{Rule: idx, Line: line, Label: label})
}

// AddEval folds the counters of one rule evaluation into the rule's stats.
func (rt *RunTrace) AddEval(rule int, firings, derived, probes int64, wall time.Duration) {
	if rule < 0 || rule >= len(rt.Rules) {
		return
	}
	rs := &rt.Rules[rule]
	rs.Evals++
	rs.Firings += firings
	rs.Derived += derived
	rs.Probes += probes
	rs.WallNanos += wall.Nanoseconds()
}

// AddRound records the delta size of one fixpoint round.
func (rt *RunTrace) AddRound(stratum, round, delta int) {
	rt.Rounds = append(rt.Rounds, RoundStats{Stratum: stratum, Round: round, Delta: delta})
}

// Finish records the run outcome. Incremental propagation calls it after
// every Propagate; the last call wins.
func (rt *RunTrace) Finish(status string, rounds, derived int, wall time.Duration) {
	rt.Outcome = Outcome{Status: status, Rounds: rounds, Derived: derived, DurationNanos: wall.Nanoseconds()}
}

// Trace collects the RunTraces of one or more engine runs. StartRun is
// safe for concurrent use; each returned RunTrace belongs to one engine.
type Trace struct {
	mu   sync.Mutex
	runs []*RunTrace
}

// NewTrace returns an empty trace collector.
func NewTrace() *Trace { return &Trace{} }

// StartRun appends and returns a fresh RunTrace.
func (t *Trace) StartRun() *RunTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	rt := &RunTrace{}
	t.runs = append(t.runs, rt)
	return rt
}

// Runs returns the recorded runs in start order.
func (t *Trace) Runs() []*RunTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*RunTrace(nil), t.runs...)
}

// traceJSON is the serialized shape of a Trace.
type traceJSON struct {
	Runs []*RunTrace `json:"runs"`
}

// WriteJSON writes the deterministic trace: all counters, no wall-clock
// fields. For a fixed program and database the output is byte-identical
// across worker counts.
func (t *Trace) WriteJSON(w io.Writer) error { return t.write(w, false) }

// WriteJSONTimings writes the trace including per-rule wall time and run
// duration. Timings vary run to run; use WriteJSON when comparing traces.
func (t *Trace) WriteJSONTimings(w io.Writer) error { return t.write(w, true) }

func (t *Trace) write(w io.Writer, timings bool) error {
	runs := t.Runs()
	if !timings {
		// Strip the non-deterministic fields on copies; omitempty drops the
		// zeroed values from the encoding.
		stripped := make([]*RunTrace, len(runs))
		for i, rt := range runs {
			c := &RunTrace{
				Rules:   append([]RuleStats(nil), rt.Rules...),
				Rounds:  rt.Rounds,
				Outcome: rt.Outcome,
			}
			for j := range c.Rules {
				c.Rules[j].WallNanos = 0
			}
			c.Outcome.DurationNanos = 0
			stripped[i] = c
		}
		runs = stripped
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceJSON{Runs: runs})
}
