package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRunTraceCounters drives the RunTrace recording surface with the event
// sequences the engine produces on its different evaluation paths and checks
// the aggregated counters.
func TestRunTraceCounters(t *testing.T) {
	type eval struct {
		rule                     int
		firings, derived, probes int64
		wall                     time.Duration
	}
	cases := []struct {
		name  string
		rules []string
		evals []eval
		want  []RuleStats
	}{
		{
			// One rule evaluated twice (round 0 + one delta round), as the
			// plain semi-naive path produces.
			name:  "semi-naive rounds accumulate",
			rules: []string{"tc"},
			evals: []eval{
				{rule: 0, firings: 10, derived: 10, probes: 40, wall: time.Millisecond},
				{rule: 0, firings: 4, derived: 0, probes: 12, wall: time.Millisecond},
			},
			want: []RuleStats{{Rule: 0, Label: "tc", Evals: 2, Firings: 14, Derived: 10, Probes: 52}},
		},
		{
			// The provenance fallback evaluates every rule sequentially; the
			// counters must not care which engine produced them.
			name:  "sequential provenance fallback",
			rules: []string{"own", "control"},
			evals: []eval{
				{rule: 0, firings: 7, derived: 7, probes: 7},
				{rule: 1, firings: 3, derived: 2, probes: 21},
				{rule: 1, firings: 1, derived: 0, probes: 9},
			},
			want: []RuleStats{
				{Rule: 0, Label: "own", Evals: 1, Firings: 7, Derived: 7, Probes: 7},
				{Rule: 1, Label: "control", Evals: 2, Firings: 4, Derived: 2, Probes: 30},
			},
		},
		{
			// Monotonic aggregates force the fully sequential engine: a rule
			// can fire often while deriving little (pruned contributors).
			name:  "monotonic aggregate firings exceed derivations",
			rules: []string{"msum"},
			evals: []eval{
				{rule: 0, firings: 100, derived: 5, probes: 100},
			},
			want: []RuleStats{{Rule: 0, Label: "msum", Evals: 1, Firings: 100, Derived: 5, Probes: 100}},
		},
		{
			// A declared rule that never fires still appears with zeros, so
			// traces always cover the whole program.
			name:  "unfired rule present",
			rules: []string{"a", "dead"},
			evals: []eval{{rule: 0, firings: 1, derived: 1, probes: 1}},
			want: []RuleStats{
				{Rule: 0, Label: "a", Evals: 1, Firings: 1, Derived: 1, Probes: 1},
				{Rule: 1, Label: "dead"},
			},
		},
		{
			// Out-of-range rule indices are dropped, not panicking: the
			// engine only reports declared rules.
			name:  "out of range eval ignored",
			rules: []string{"only"},
			evals: []eval{{rule: 5, firings: 9, derived: 9, probes: 9}},
			want:  []RuleStats{{Rule: 0, Label: "only"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := NewTrace().StartRun()
			for i, label := range tc.rules {
				rt.DeclareRule(i, i+1, label)
			}
			for _, ev := range tc.evals {
				rt.AddEval(ev.rule, ev.firings, ev.derived, ev.probes, ev.wall)
			}
			if len(rt.Rules) != len(tc.want) {
				t.Fatalf("got %d rules, want %d", len(rt.Rules), len(tc.want))
			}
			for i, want := range tc.want {
				got := rt.Rules[i]
				got.WallNanos = 0 // timing asserted separately
				want.Line = i + 1
				if got != want {
					t.Errorf("rule %d = %+v, want %+v", i, got, want)
				}
			}
		})
	}
}

func TestRunTraceRoundsAndOutcome(t *testing.T) {
	rt := NewTrace().StartRun()
	rt.AddRound(0, 0, 12)
	rt.AddRound(0, 1, 4)
	rt.AddRound(1, 0, 0)
	rt.Finish("ok", 2, 16, 3*time.Millisecond)
	want := []RoundStats{{0, 0, 12}, {0, 1, 4}, {1, 0, 0}}
	if len(rt.Rounds) != len(want) {
		t.Fatalf("rounds = %+v", rt.Rounds)
	}
	for i := range want {
		if rt.Rounds[i] != want[i] {
			t.Errorf("round %d = %+v, want %+v", i, rt.Rounds[i], want[i])
		}
	}
	if rt.Outcome.Status != "ok" || rt.Outcome.Rounds != 2 || rt.Outcome.Derived != 16 {
		t.Errorf("outcome = %+v", rt.Outcome)
	}
	if rt.Outcome.DurationNanos != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("duration = %d", rt.Outcome.DurationNanos)
	}
}

// TestWriteJSONDeterministic: two traces recording the same counters with
// different wall times serialize byte-identically through WriteJSON — the
// property the engine's worker-count-independence test builds on — while
// WriteJSONTimings exposes the timing difference.
func TestWriteJSONDeterministic(t *testing.T) {
	build := func(wall time.Duration) *Trace {
		tr := NewTrace()
		rt := tr.StartRun()
		rt.DeclareRule(0, 3, "tc")
		rt.AddEval(0, 10, 8, 40, wall)
		rt.AddRound(0, 0, 8)
		rt.Finish("ok", 1, 8, wall*7)
		return tr
	}
	var a, b, at bytes.Buffer
	if err := build(time.Millisecond).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build(time.Hour).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("deterministic traces differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if strings.Contains(a.String(), "wall_ns") || strings.Contains(a.String(), "duration_ns") {
		t.Fatalf("deterministic trace leaks timing fields:\n%s", a.String())
	}
	if err := build(time.Millisecond).WriteJSONTimings(&at); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(at.String(), "wall_ns") || !strings.Contains(at.String(), "duration_ns") {
		t.Fatalf("timing trace misses timing fields:\n%s", at.String())
	}
	// Stripping must not mutate the underlying trace.
	tr := build(time.Millisecond)
	var first bytes.Buffer
	if err := tr.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	if rt := tr.Runs()[0]; rt.Rules[0].WallNanos == 0 || rt.Outcome.DurationNanos == 0 {
		t.Fatal("WriteJSON zeroed the recorded timings")
	}
}

func TestTraceMultipleRuns(t *testing.T) {
	tr := NewTrace()
	r1 := tr.StartRun()
	r1.DeclareRule(0, 1, "first")
	r2 := tr.StartRun()
	r2.DeclareRule(0, 1, "second")
	runs := tr.Runs()
	if len(runs) != 2 || runs[0].Rules[0].Label != "first" || runs[1].Rules[0].Label != "second" {
		t.Fatalf("runs = %+v", runs)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Runs) != 2 {
		t.Fatalf("serialized %d runs, want 2", len(decoded.Runs))
	}
}

func TestCountRunSnapshot(t *testing.T) {
	before := Counters()
	CountRun("ok", 3, 100)
	CountRun("canceled", 1, 5)
	CountRun("timeout", 2, 7)
	CountRun("error", 0, 0)
	after := Counters()
	if d := after.Runs - before.Runs; d != 4 {
		t.Errorf("runs delta = %d", d)
	}
	if d := after.Canceled - before.Canceled; d != 1 {
		t.Errorf("canceled delta = %d", d)
	}
	if d := after.TimedOut - before.TimedOut; d != 1 {
		t.Errorf("timed out delta = %d", d)
	}
	if d := after.Errored - before.Errored; d != 1 {
		t.Errorf("errored delta = %d", d)
	}
	if d := after.Rounds - before.Rounds; d != 6 {
		t.Errorf("rounds delta = %d", d)
	}
	if d := after.Derived - before.Derived; d != 112 {
		t.Errorf("derived delta = %d", d)
	}
}

func TestRegisterExpvarIdempotent(t *testing.T) {
	// Must not panic on double publish.
	RegisterExpvar()
	RegisterExpvar()
}
