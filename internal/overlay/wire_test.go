package overlay

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pg"
	"repro/internal/value"
)

func wireBatch() []Op {
	return []Op{
		{Kind: OpAddNode, Name: "h", Labels: []string{"Company", "Holding"},
			Props: pg.Props{"name": value.Str("Hold Co"), "assets": value.IntV(12)}},
		{Kind: OpAddEdge, From: Ref{ID: 3}, To: Ref{Name: "h"}, Label: "owns",
			Props: pg.Props{"weight": value.FloatV(0.4)}},
		{Kind: OpSetNodeProp, Node: Ref{ID: 3}, Key: "active", Value: value.BoolV(true)},
		{Kind: OpDelNodeProp, Node: Ref{ID: 3}, Key: "stale"},
		{Kind: OpAddLabel, Node: Ref{Name: "h"}, Label: "Bank"},
		{Kind: OpRemoveEdge, Edge: 7},
		{Kind: OpRemoveNode, Node: Ref{ID: 9}},
	}
}

func TestWireRoundTrip(t *testing.T) {
	ops := wireBatch()
	b, err := EncodeOps(ops)
	if err != nil {
		t.Fatalf("EncodeOps: %v", err)
	}
	got, err := DecodeOps(b)
	if err != nil {
		t.Fatalf("DecodeOps: %v", err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip changed batch size: %d != %d", len(got), len(ops))
	}
	// Re-encoding the decoded batch must reproduce the bytes exactly — the
	// WAL's replay differential depends on the encoding being canonical.
	b2, err := EncodeOps(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("encoding is not canonical:\n first=%s\nsecond=%s", b, b2)
	}
}

func TestWireEncodeDeterministic(t *testing.T) {
	ops := wireBatch()
	first, err := EncodeOps(ops)
	if err != nil {
		t.Fatalf("EncodeOps: %v", err)
	}
	for i := 0; i < 16; i++ {
		b, err := EncodeOps(ops)
		if err != nil {
			t.Fatalf("EncodeOps: %v", err)
		}
		if !bytes.Equal(first, b) {
			t.Fatalf("encoding varies across calls:\n%s\n%s", first, b)
		}
	}
}

func TestWireRoundTripApplies(t *testing.T) {
	// A decoded batch must behave identically to the original: apply both to
	// overlays over the same base and compare the compacted results.
	src := pg.New()
	a := src.AddNode([]string{"Company"}, pg.Props{"name": value.Str("A")}).ID
	b := src.AddNode([]string{"Company"}, pg.Props{"name": value.Str("B")}).ID
	src.MustAddEdge(a, b, "owns", nil)
	base := src.Freeze()

	ops := []Op{
		{Kind: OpAddNode, Name: "n", Labels: []string{"Company"},
			Props: pg.Props{"name": value.Str("NewCo")}},
		{Kind: OpAddEdge, From: Ref{ID: a}, To: Ref{Name: "n"}, Label: "owns"},
		{Kind: OpSetNodeProp, Node: Ref{ID: b}, Key: "name", Value: value.Str("renamed")},
	}
	enc, err := EncodeOps(ops)
	if err != nil {
		t.Fatalf("EncodeOps: %v", err)
	}
	decoded, err := DecodeOps(enc)
	if err != nil {
		t.Fatalf("DecodeOps: %v", err)
	}
	ov1, ov2 := New(base), New(base)
	if _, err := ov1.Apply(ops); err != nil {
		t.Fatalf("apply original: %v", err)
	}
	if _, err := ov2.Apply(decoded); err != nil {
		t.Fatalf("apply decoded: %v", err)
	}
	f1, err := ov1.Compact()
	if err != nil {
		t.Fatalf("compact original: %v", err)
	}
	f2, err := ov2.Compact()
	if err != nil {
		t.Fatalf("compact decoded: %v", err)
	}
	if f1.NumNodes() != f2.NumNodes() || f1.NumEdges() != f2.NumEdges() {
		t.Fatalf("decoded batch diverged: %d/%d nodes, %d/%d edges",
			f1.NumNodes(), f2.NumNodes(), f1.NumEdges(), f2.NumEdges())
	}
}

func TestDecodeOpsErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"not json", `{`, "unexpected"},
		{"not array", `{"op":"add_node"}`, "cannot unmarshal"},
		{"unknown field", `[{"op":"add_node","bogus":1}]`, "unknown field"},
		{"trailing data", `[] []`, "trailing data"},
		{"unknown kind", `[{"op":"explode"}]`, `unknown op kind "explode"`},
		{"missing value", `[{"op":"set_node_prop","node":{"id":1},"key":"k"}]`, "needs a value"},
		{"bad prop value", `[{"op":"add_node","name":"x","props":{"p":{"kind":"wat"}}}]`, `prop "p"`},
		{"bad set value", `[{"op":"set_node_prop","node":{"id":1},"key":"k","value":{"kind":"wat"}}]`, "value:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeOps([]byte(tc.in))
			if err == nil {
				t.Fatalf("DecodeOps(%s) succeeded, want error containing %q", tc.in, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeOps(%s) = %v, want error containing %q", tc.in, err, tc.want)
			}
		})
	}
}

func TestWireRefEncoding(t *testing.T) {
	// Zero refs are omitted entirely; OID and handle refs keep their shape.
	b, err := EncodeOps([]Op{{Kind: OpRemoveEdge, Edge: 7}})
	if err != nil {
		t.Fatalf("EncodeOps: %v", err)
	}
	if strings.Contains(string(b), "node") || strings.Contains(string(b), "from") {
		t.Fatalf("zero refs leaked into encoding: %s", b)
	}
	b, err = EncodeOps([]Op{{Kind: OpAddEdge, From: Ref{ID: 3}, To: Ref{Name: "h"}, Label: "owns"}})
	if err != nil {
		t.Fatalf("EncodeOps: %v", err)
	}
	for _, want := range []string{`"from":{"id":3}`, `"to":{"name":"h"}`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("encoding %s missing %s", b, want)
		}
	}
}
