package overlay

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/pg"
	"repro/internal/sortedset"
	"repro/internal/value"
)

// OpKind names a mutation operation. The kinds mirror pg.Graph's mutators
// (plus property deletion, which pg expresses as a direct map write): the
// overlay's write surface is exactly the builder phase's.
type OpKind string

const (
	OpAddNode     OpKind = "add_node"
	OpAddEdge     OpKind = "add_edge"
	OpRemoveNode  OpKind = "remove_node"
	OpRemoveEdge  OpKind = "remove_edge"
	OpSetNodeProp OpKind = "set_node_prop"
	OpDelNodeProp OpKind = "del_node_prop"
	OpAddLabel    OpKind = "add_label"
)

// Ref names a node: either by OID or by the batch-local handle an earlier
// add_node op in the same batch declared. Exactly one of the two is set.
type Ref struct {
	ID   pg.OID
	Name string
}

func (r Ref) String() string {
	if r.Name != "" {
		return "$" + r.Name
	}
	return fmt.Sprint(r.ID)
}

// Op is one mutation. Which fields apply depends on Kind:
//
//	add_node       Name? Labels Props
//	add_edge       From To Label Props
//	remove_node    Node
//	remove_edge    Edge
//	set_node_prop  Node Key Value
//	del_node_prop  Node Key
//	add_label      Node Label
type Op struct {
	Kind   OpKind
	Name   string // add_node: optional batch-local handle for later refs
	Labels []string
	Label  string
	Props  pg.Props
	Node   Ref
	From   Ref
	To     Ref
	Edge   pg.OID
	Key    string
	Value  value.Value
}

// NodeChange pairs the pre- and post-batch state of a mutated node. Both
// pointers are private copies or immutable structs; neither changes later.
type NodeChange struct {
	Before *pg.Node
	After  *pg.Node
}

// Diff reports a batch's net effect, each slice in ascending OID order.
// Removed constructs carry their pre-batch state (labels and properties
// included), which is exactly what incremental fact maintenance needs to
// retract their facts. Constructs both created and destroyed inside one
// batch do not appear at all.
type Diff struct {
	AddedNodes   []*pg.Node
	AddedEdges   []*pg.Edge
	RemovedNodes []*pg.Node
	RemovedEdges []*pg.Edge
	ChangedNodes []NodeChange
	// Handles maps the batch's add_node handles to the OIDs they were
	// assigned, so callers can address the created nodes in later batches.
	// Handles of nodes removed later in the same batch still appear here.
	Handles map[string]pg.OID
}

// Empty reports whether the batch had no net effect.
func (d Diff) Empty() bool {
	return len(d.AddedNodes) == 0 && len(d.AddedEdges) == 0 &&
		len(d.RemovedNodes) == 0 && len(d.RemovedEdges) == 0 && len(d.ChangedNodes) == 0
}

// recorder captures the pre-batch state of every construct a batch touches,
// lazily: the first touch of an OID stores what the overlay showed before
// (nil for then-absent constructs). The stored pointers stay valid because
// overlay mutation is copy-on-write — nothing is ever edited in place.
type recorder struct {
	o       *Overlay
	nodePre map[pg.OID]*pg.Node
	edgePre map[pg.OID]*pg.Edge
	nodeIDs []pg.OID // touch order; sorted at diff time
	edgeIDs []pg.OID
}

func newRecorder(o *Overlay) *recorder {
	return &recorder{o: o, nodePre: map[pg.OID]*pg.Node{}, edgePre: map[pg.OID]*pg.Edge{}}
}

func (r *recorder) touchNode(id pg.OID) {
	if _, ok := r.nodePre[id]; ok {
		return
	}
	r.nodePre[id] = r.o.Node(id)
	r.nodeIDs = append(r.nodeIDs, id)
}

func (r *recorder) touchEdge(id pg.OID) {
	if _, ok := r.edgePre[id]; ok {
		return
	}
	r.edgePre[id] = r.o.Edge(id)
	r.edgeIDs = append(r.edgeIDs, id)
}

func (r *recorder) diff() Diff {
	var d Diff
	sortedset.Sort(r.nodeIDs)
	for _, id := range r.nodeIDs {
		before, after := r.nodePre[id], r.o.Node(id)
		switch {
		case before == nil && after != nil:
			d.AddedNodes = append(d.AddedNodes, after)
		case before != nil && after == nil:
			d.RemovedNodes = append(d.RemovedNodes, before)
		case before != nil && after != nil && !sameNode(before, after):
			d.ChangedNodes = append(d.ChangedNodes, NodeChange{Before: before, After: after})
		}
	}
	sortedset.Sort(r.edgeIDs)
	for _, id := range r.edgeIDs {
		before, after := r.edgePre[id], r.o.Edge(id)
		switch {
		case before == nil && after != nil:
			d.AddedEdges = append(d.AddedEdges, after)
		case before != nil && after == nil:
			d.RemovedEdges = append(d.RemovedEdges, before)
		}
	}
	return d
}

func sameNode(a, b *pg.Node) bool {
	if len(a.Labels) != len(b.Labels) || len(a.Props) != len(b.Props) {
		return false
	}
	for i, l := range a.Labels {
		if b.Labels[i] != l {
			return false
		}
	}
	for k, v := range a.Props {
		bv, ok := b.Props[k]
		if !ok || !sameValue(v, bv) {
			return false
		}
	}
	return true
}

// Apply applies one batch of mutations in order and returns its net Diff.
// Application is NOT atomic: on error the overlay may hold a prefix of the
// batch. Callers needing all-or-nothing semantics (the server's /mutate
// path) apply to a Clone and swap only on success.
func (o *Overlay) Apply(ops []Op) (Diff, error) {
	if err := fault.Hit(siteApply); err != nil {
		return Diff{}, err
	}
	rec := newRecorder(o)
	names := map[string]pg.OID{}
	for i, op := range ops {
		if err := o.applyOp(op, names, rec); err != nil {
			return Diff{}, fmt.Errorf("overlay: op %d (%s): %w", i, op.Kind, err)
		}
	}
	diff := rec.diff()
	if len(names) > 0 {
		diff.Handles = names
	}
	return diff, nil
}

// resolve maps a Ref to the OID of an existing merged node.
func (o *Overlay) resolve(r Ref, names map[string]pg.OID) (pg.OID, error) {
	id := r.ID
	if r.Name != "" {
		bound, ok := names[r.Name]
		if !ok {
			return 0, fmt.Errorf("unknown node handle %q", r.Name)
		}
		id = bound
	}
	if o.Node(id) == nil {
		return 0, fmt.Errorf("no node with OID %d", id)
	}
	return id, nil
}

func (o *Overlay) applyOp(op Op, names map[string]pg.OID, rec *recorder) error {
	switch op.Kind {
	case OpAddNode:
		if op.Name != "" {
			if _, dup := names[op.Name]; dup {
				return fmt.Errorf("duplicate node handle %q", op.Name)
			}
		}
		id := o.next
		o.next++
		rec.touchNode(id)
		n := &pg.Node{ID: id, Labels: normalizeLabels(op.Labels), Props: cloneNodeProps(op.Props)}
		o.addNodes[id] = n
		o.addNodeIDs = append(o.addNodeIDs, id) // ascending by construction
		for _, l := range n.Labels {
			o.addByLabel[l] = sortedset.Insert(o.addByLabel[l], id)
			o.nodeLabelDelta[l]++
		}
		if op.Name != "" {
			names[op.Name] = id
		}
		return nil

	case OpAddEdge:
		from, err := o.resolve(op.From, names)
		if err != nil {
			return fmt.Errorf("edge source: %w", err)
		}
		to, err := o.resolve(op.To, names)
		if err != nil {
			return fmt.Errorf("edge target: %w", err)
		}
		id := o.next
		o.next++
		rec.touchEdge(id)
		e := &pg.Edge{ID: id, Label: op.Label, From: from, To: to, Props: cloneEdgeProps(op.Props)}
		o.addEdges[id] = e
		o.addEdgeIDs = append(o.addEdgeIDs, id)
		o.addEdgeByLabel[op.Label] = sortedset.Insert(o.addEdgeByLabel[op.Label], id)
		o.outAdd[from] = append(o.outAdd[from], id) // fresh OIDs ascend
		o.inAdd[to] = append(o.inAdd[to], id)
		o.edgeLabelDelta[op.Label]++
		return nil

	case OpRemoveEdge:
		return o.removeEdge(op.Edge, rec)

	case OpRemoveNode:
		id, err := o.resolve(op.Node, names)
		if err != nil {
			return err
		}
		// Cascade: drop the incident merged edges first (a self-loop shows
		// up in both directions; the set dedups it).
		incident := map[pg.OID]bool{}
		var order []pg.OID
		for _, e := range o.Out(id) {
			if !incident[e.ID] {
				incident[e.ID] = true
				order = append(order, e.ID)
			}
		}
		for _, e := range o.In(id) {
			if !incident[e.ID] {
				incident[e.ID] = true
				order = append(order, e.ID)
			}
		}
		for _, eid := range order {
			if err := o.removeEdge(eid, rec); err != nil {
				return err
			}
		}
		rec.touchNode(id)
		n := o.Node(id)
		if _, added := o.addNodes[id]; added {
			delete(o.addNodes, id)
			o.addNodeIDs = sortedset.Remove(o.addNodeIDs, id)
			for _, l := range n.Labels {
				o.addByLabel[l] = sortedset.Remove(o.addByLabel[l], id)
				o.nodeLabelDelta[l]--
			}
		} else {
			o.delNodes[id] = true
			delete(o.modNodes, id)
			for _, l := range n.Labels {
				o.gainByLabel[l] = sortedset.Remove(o.gainByLabel[l], id)
				o.nodeLabelDelta[l]--
			}
		}
		delete(o.outAdd, id)
		delete(o.inAdd, id)
		delete(o.outDel, id)
		delete(o.inDel, id)
		return nil

	case OpSetNodeProp:
		id, err := o.resolve(op.Node, names)
		if err != nil {
			return err
		}
		rec.touchNode(id)
		n := copyNode(o.Node(id))
		n.Props[op.Key] = op.Value
		o.storeNode(id, n)
		return nil

	case OpDelNodeProp:
		id, err := o.resolve(op.Node, names)
		if err != nil {
			return err
		}
		cur := o.Node(id)
		if _, has := cur.Props[op.Key]; !has {
			return nil
		}
		rec.touchNode(id)
		n := copyNode(cur)
		delete(n.Props, op.Key)
		o.storeNode(id, n)
		return nil

	case OpAddLabel:
		id, err := o.resolve(op.Node, names)
		if err != nil {
			return err
		}
		cur := o.Node(id)
		if cur.HasLabel(op.Label) {
			return nil
		}
		rec.touchNode(id)
		n := copyNode(cur)
		n.Labels = normalizeLabels(append(n.Labels, op.Label))
		if _, added := o.addNodes[id]; added {
			o.addNodes[id] = n
			o.addByLabel[op.Label] = sortedset.Insert(o.addByLabel[op.Label], id)
		} else {
			o.modNodes[id] = n
			o.gainByLabel[op.Label] = sortedset.Insert(o.gainByLabel[op.Label], id)
		}
		o.nodeLabelDelta[op.Label]++
		return nil

	default:
		return fmt.Errorf("unknown op kind %q", op.Kind)
	}
}

// storeNode installs a copy-on-write replacement for an existing node.
func (o *Overlay) storeNode(id pg.OID, n *pg.Node) {
	if _, added := o.addNodes[id]; added {
		o.addNodes[id] = n
		return
	}
	o.modNodes[id] = n
}

// removeEdge drops one merged edge, maintaining the adjacency delta of the
// surviving endpoints.
func (o *Overlay) removeEdge(id pg.OID, rec *recorder) error {
	e := o.Edge(id)
	if e == nil {
		return fmt.Errorf("no edge with OID %d", id)
	}
	rec.touchEdge(id)
	if _, added := o.addEdges[id]; added {
		delete(o.addEdges, id)
		o.addEdgeIDs = sortedset.Remove(o.addEdgeIDs, id)
		o.addEdgeByLabel[e.Label] = sortedset.Remove(o.addEdgeByLabel[e.Label], id)
		o.outAdd[e.From] = sortedset.Remove(o.outAdd[e.From], id)
		o.inAdd[e.To] = sortedset.Remove(o.inAdd[e.To], id)
	} else {
		o.delEdges[id] = true
		o.outDel[e.From] = sortedset.Insert(o.outDel[e.From], id)
		o.inDel[e.To] = sortedset.Insert(o.inDel[e.To], id)
	}
	o.edgeLabelDelta[e.Label]--
	return nil
}
