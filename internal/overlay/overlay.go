// Package overlay layers a small mutable delta over an immutable pg.Frozen
// snapshot, giving the serving layer a live write path without giving up the
// two-phase storage model: the base stays a lock-free, mmap-friendly CSR
// snapshot, and all churn lives in O(delta) side structures — added nodes and
// edges, deleted base constructs, and copy-on-write replacements for mutated
// base nodes. The combination implements pg.View with the same contract as
// both phases (ascending-OID iteration, sorted label lists), so every
// read-side consumer — MetaLog extraction, query translation, statistics —
// works over a live overlay unchanged.
//
// The design is LSM-flavored: writes accumulate in the overlay (the
// memtable), reads merge base and delta on the fly, and Compact folds the
// delta into the next frozen generation (the flush). Fresh OIDs are
// allocated strictly above every base OID — exactly where Thaw's allocator
// resumes — so compacting an overlay and replaying the same mutations on a
// thawed copy of the base produce identical graphs, OIDs included; the
// property tests pin the two byte-identical through the snapshot encoder.
//
// Base *pg.Node values are never mutated: a property write or label gain
// replaces the node with a private copy (modNodes). Base nodes only ever
// gain labels (there is no label-removal operation, matching pg.Graph), an
// invariant the label indexes exploit: NodesByLabel merges the base label
// scan with the sorted list of base nodes that gained the label, and no base
// membership ever has to be suppressed except by whole-node deletion.
//
// An Overlay is not safe for concurrent mutation. The server mutates a
// Clone and swaps it in atomically, so concurrent readers keep a consistent
// view; Clone is O(delta) and shares the immutable node/edge structs.
package overlay

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/pg"
	"repro/internal/value"
)

// The package's fault sites: batch application and compaction. Chaos tests
// arm them to prove a failed mutation leaves the served view bit-identical
// and a failed compaction keeps the overlay generation serving.
var (
	siteApply   = fault.Site("overlay/apply")
	siteCompact = fault.Site("overlay/compact")
)

// Overlay is a mutable delta over a frozen base graph. The zero value is
// not usable; construct overlays with New.
type Overlay struct {
	base *pg.Frozen
	next pg.OID // next fresh OID, strictly above every base OID

	// Additions. addNodeIDs/addEdgeIDs stay sorted for free: fresh OIDs are
	// allocated in ascending order, so appends preserve the order and only
	// removals need a sorted delete.
	addNodes   map[pg.OID]*pg.Node
	addEdges   map[pg.OID]*pg.Edge
	addNodeIDs []pg.OID
	addEdgeIDs []pg.OID

	// Deletions of base constructs (added constructs are deleted by
	// dropping them from the addition maps).
	delNodes map[pg.OID]bool
	delEdges map[pg.OID]bool

	// Copy-on-write replacements for mutated base nodes.
	modNodes map[pg.OID]*pg.Node

	// Label indexes over the delta, each slice ascending:
	//   addByLabel      label -> added-node OIDs carrying it
	//   gainByLabel     label -> base-node OIDs that gained it here
	//   addEdgeByLabel  label -> added-edge OIDs carrying it
	addByLabel     map[string][]pg.OID
	gainByLabel    map[string][]pg.OID
	addEdgeByLabel map[string][]pg.OID

	// Adjacency delta, each slice ascending: added incident edges and
	// deleted base incident edges per node.
	outAdd map[pg.OID][]pg.OID
	inAdd  map[pg.OID][]pg.OID
	outDel map[pg.OID][]pg.OID
	inDel  map[pg.OID][]pg.OID

	// Net change in the number of constructs carrying each label, for the
	// inhabitation checks behind NodeLabels/EdgeLabels.
	nodeLabelDelta map[string]int
	edgeLabelDelta map[string]int
}

// New returns an empty overlay over the given base snapshot.
func New(base *pg.Frozen) *Overlay {
	return &Overlay{
		base:           base,
		next:           base.MaxOID() + 1,
		addNodes:       map[pg.OID]*pg.Node{},
		addEdges:       map[pg.OID]*pg.Edge{},
		delNodes:       map[pg.OID]bool{},
		delEdges:       map[pg.OID]bool{},
		modNodes:       map[pg.OID]*pg.Node{},
		addByLabel:     map[string][]pg.OID{},
		gainByLabel:    map[string][]pg.OID{},
		addEdgeByLabel: map[string][]pg.OID{},
		outAdd:         map[pg.OID][]pg.OID{},
		inAdd:          map[pg.OID][]pg.OID{},
		outDel:         map[pg.OID][]pg.OID{},
		inDel:          map[pg.OID][]pg.OID{},
		nodeLabelDelta: map[string]int{},
		edgeLabelDelta: map[string]int{},
	}
}

// Base returns the frozen snapshot under the overlay.
func (o *Overlay) Base() *pg.Frozen { return o.base }

// DeltaSize counts the pending changes: added and deleted constructs plus
// modified base nodes. Compaction policies trigger on it.
func (o *Overlay) DeltaSize() int {
	return len(o.addNodes) + len(o.addEdges) + len(o.delNodes) + len(o.delEdges) + len(o.modNodes)
}

// Clone returns an independent copy of the overlay in O(delta). The base and
// the node/edge structs are shared — both are immutable by the copy-on-write
// discipline — but every map and index slice is copied, so mutating the
// clone never disturbs the original (sortedset.Insert writes into shared
// backing arrays otherwise).
func (o *Overlay) Clone() *Overlay {
	c := &Overlay{
		base:           o.base,
		next:           o.next,
		addNodes:       make(map[pg.OID]*pg.Node, len(o.addNodes)),
		addEdges:       make(map[pg.OID]*pg.Edge, len(o.addEdges)),
		addNodeIDs:     append([]pg.OID(nil), o.addNodeIDs...),
		addEdgeIDs:     append([]pg.OID(nil), o.addEdgeIDs...),
		delNodes:       make(map[pg.OID]bool, len(o.delNodes)),
		delEdges:       make(map[pg.OID]bool, len(o.delEdges)),
		modNodes:       make(map[pg.OID]*pg.Node, len(o.modNodes)),
		addByLabel:     cloneIndex(o.addByLabel),
		gainByLabel:    cloneIndex(o.gainByLabel),
		addEdgeByLabel: cloneIndex(o.addEdgeByLabel),
		outAdd:         cloneAdj(o.outAdd),
		inAdd:          cloneAdj(o.inAdd),
		outDel:         cloneAdj(o.outDel),
		inDel:          cloneAdj(o.inDel),
		nodeLabelDelta: make(map[string]int, len(o.nodeLabelDelta)),
		edgeLabelDelta: make(map[string]int, len(o.edgeLabelDelta)),
	}
	for id, n := range o.addNodes {
		c.addNodes[id] = n
	}
	for id, e := range o.addEdges {
		c.addEdges[id] = e
	}
	for id := range o.delNodes {
		c.delNodes[id] = true
	}
	for id := range o.delEdges {
		c.delEdges[id] = true
	}
	for id, n := range o.modNodes {
		c.modNodes[id] = n
	}
	for l, d := range o.nodeLabelDelta {
		c.nodeLabelDelta[l] = d
	}
	for l, d := range o.edgeLabelDelta {
		c.edgeLabelDelta[l] = d
	}
	return c
}

func cloneIndex(m map[string][]pg.OID) map[string][]pg.OID {
	out := make(map[string][]pg.OID, len(m))
	for k, v := range m {
		out[k] = append([]pg.OID(nil), v...)
	}
	return out
}

func cloneAdj(m map[pg.OID][]pg.OID) map[pg.OID][]pg.OID {
	out := make(map[pg.OID][]pg.OID, len(m))
	for k, v := range m {
		out[k] = append([]pg.OID(nil), v...)
	}
	return out
}

// Compact folds the overlay into a fresh frozen snapshot: the next
// generation of the two-phase lifecycle. The output is exactly what
// freezing the equivalently-mutated graph would produce — Freeze interns
// labels and keys from content in one canonical order — so snapshots of
// compacted overlays stay byte-identical under the snapfile encoder.
func (o *Overlay) Compact() (*pg.Frozen, error) {
	if err := fault.Hit(siteCompact); err != nil {
		return nil, err
	}
	g := pg.New()
	for _, n := range o.Nodes() {
		if _, err := g.AddNodeWithID(n.ID, n.Labels, n.Props); err != nil {
			return nil, fmt.Errorf("overlay: compacting: %w", err)
		}
	}
	for _, e := range o.Edges() {
		if _, err := g.AddEdgeWithID(e.ID, e.From, e.To, e.Label, e.Props); err != nil {
			return nil, fmt.Errorf("overlay: compacting: %w", err)
		}
	}
	return g.Freeze(), nil
}

// ---- pg.View ----

var _ pg.View = (*Overlay)(nil)

// NumNodes returns the merged node count.
func (o *Overlay) NumNodes() int { return o.base.NumNodes() - len(o.delNodes) + len(o.addNodes) }

// NumEdges returns the merged edge count.
func (o *Overlay) NumEdges() int { return o.base.NumEdges() - len(o.delEdges) + len(o.addEdges) }

// Node resolves an OID against the merged view.
func (o *Overlay) Node(id pg.OID) *pg.Node {
	if o.delNodes[id] {
		return nil
	}
	if n, ok := o.addNodes[id]; ok {
		return n
	}
	if n, ok := o.modNodes[id]; ok {
		return n
	}
	return o.base.Node(id)
}

// Edge resolves an OID against the merged view.
func (o *Overlay) Edge(id pg.OID) *pg.Edge {
	if o.delEdges[id] {
		return nil
	}
	if e, ok := o.addEdges[id]; ok {
		return e
	}
	return o.base.Edge(id)
}

// Nodes lists the merged nodes in ascending OID order: surviving base nodes
// (modified ones substituted) followed by the added nodes, whose OIDs are
// all larger.
func (o *Overlay) Nodes() []*pg.Node {
	base := o.base.Nodes()
	out := make([]*pg.Node, 0, len(base)-len(o.delNodes)+len(o.addNodeIDs))
	for _, n := range base {
		if o.delNodes[n.ID] {
			continue
		}
		if m, ok := o.modNodes[n.ID]; ok {
			out = append(out, m)
			continue
		}
		out = append(out, n)
	}
	for _, id := range o.addNodeIDs {
		out = append(out, o.addNodes[id])
	}
	return out
}

// Edges lists the merged edges in ascending OID order.
func (o *Overlay) Edges() []*pg.Edge {
	base := o.base.Edges()
	out := make([]*pg.Edge, 0, len(base)-len(o.delEdges)+len(o.addEdgeIDs))
	for _, e := range base {
		if o.delEdges[e.ID] {
			continue
		}
		out = append(out, e)
	}
	for _, id := range o.addEdgeIDs {
		out = append(out, o.addEdges[id])
	}
	return out
}

// NodesByLabel lists the merged nodes carrying a label in ascending OID
// order: a two-pointer merge of the base label scan with the base nodes
// that gained the label here, then the added nodes (largest OIDs last).
func (o *Overlay) NodesByLabel(label string) []*pg.Node {
	base := o.base.NodesByLabel(label)
	gained := o.gainByLabel[label]
	added := o.addByLabel[label]
	out := make([]*pg.Node, 0, len(base)+len(gained)+len(added))
	gi := 0
	for _, n := range base {
		for gi < len(gained) && gained[gi] < n.ID {
			out = append(out, o.modNodes[gained[gi]])
			gi++
		}
		if o.delNodes[n.ID] {
			continue
		}
		if m, ok := o.modNodes[n.ID]; ok {
			out = append(out, m)
			continue
		}
		out = append(out, n)
	}
	for ; gi < len(gained); gi++ {
		out = append(out, o.modNodes[gained[gi]])
	}
	for _, id := range added {
		out = append(out, o.addNodes[id])
	}
	return out
}

// EdgesByLabel lists the merged edges carrying a label in ascending OID
// order.
func (o *Overlay) EdgesByLabel(label string) []*pg.Edge {
	base := o.base.EdgesByLabel(label)
	added := o.addEdgeByLabel[label]
	out := make([]*pg.Edge, 0, len(base)+len(added))
	for _, e := range base {
		if o.delEdges[e.ID] {
			continue
		}
		out = append(out, e)
	}
	for _, id := range added {
		out = append(out, o.addEdges[id])
	}
	return out
}

// Out lists a node's merged outgoing edges in ascending edge-OID order.
func (o *Overlay) Out(id pg.OID) []*pg.Edge {
	if o.delNodes[id] {
		return nil
	}
	var out []*pg.Edge
	if _, added := o.addNodes[id]; !added {
		for _, e := range o.base.Out(id) {
			if !o.delEdges[e.ID] {
				out = append(out, e)
			}
		}
	}
	for _, eid := range o.outAdd[id] {
		out = append(out, o.addEdges[eid])
	}
	return out
}

// In lists a node's merged incoming edges in ascending edge-OID order.
func (o *Overlay) In(id pg.OID) []*pg.Edge {
	if o.delNodes[id] {
		return nil
	}
	var out []*pg.Edge
	if _, added := o.addNodes[id]; !added {
		for _, e := range o.base.In(id) {
			if !o.delEdges[e.ID] {
				out = append(out, e)
			}
		}
	}
	for _, eid := range o.inAdd[id] {
		out = append(out, o.addEdges[eid])
	}
	return out
}

// OutDegree counts a node's merged outgoing edges without materializing
// them (column arithmetic on the base plus delta list lengths).
func (o *Overlay) OutDegree(id pg.OID) int {
	if o.delNodes[id] {
		return 0
	}
	return o.base.OutDegree(id) - len(o.outDel[id]) + len(o.outAdd[id])
}

// InDegree counts a node's merged incoming edges.
func (o *Overlay) InDegree(id pg.OID) int {
	if o.delNodes[id] {
		return 0
	}
	return o.base.InDegree(id) - len(o.inDel[id]) + len(o.inAdd[id])
}

// NodeLabels lists the labels carried by at least one merged node, sorted.
func (o *Overlay) NodeLabels() []string {
	base := o.base.NodeLabels()
	if len(o.nodeLabelDelta) == 0 {
		return base
	}
	return mergedLabels(base, o.nodeLabelDelta, func(l string) int {
		return len(o.base.NodesByLabel(l))
	})
}

// EdgeLabels lists the labels carried by at least one merged edge, sorted.
func (o *Overlay) EdgeLabels() []string {
	base := o.base.EdgeLabels()
	if len(o.edgeLabelDelta) == 0 {
		return base
	}
	return mergedLabels(base, o.edgeLabelDelta, func(l string) int {
		return len(o.base.EdgesByLabel(l))
	})
}

func mergedLabels(base []string, delta map[string]int, baseCount func(string) int) []string {
	seen := make(map[string]bool, len(base)+len(delta))
	out := make([]string, 0, len(base)+len(delta))
	for _, l := range base {
		seen[l] = true
		if baseCount(l)+delta[l] > 0 {
			out = append(out, l)
		}
	}
	for l, d := range delta {
		if !seen[l] && d > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// ---- shared helpers ----

// normalizeLabels mirrors pg's label normalization: sorted, unique, nil when
// empty.
func normalizeLabels(labels []string) []string {
	if len(labels) == 0 {
		return nil
	}
	out := append([]string(nil), labels...)
	sort.Strings(out)
	j := 0
	for i, l := range out {
		if i == 0 || l != out[i-1] {
			out[j] = l
			j++
		}
	}
	return out[:j]
}

// cloneNodeProps mirrors pg's node convention: nodes always carry a non-nil
// property map.
func cloneNodeProps(p pg.Props) pg.Props {
	out := make(pg.Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// cloneEdgeProps mirrors pg's edge convention: empty maps stay nil.
func cloneEdgeProps(p pg.Props) pg.Props {
	if len(p) == 0 {
		return nil
	}
	out := make(pg.Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// copyNode returns a private deep copy for copy-on-write mutation.
func copyNode(n *pg.Node) *pg.Node {
	out := &pg.Node{ID: n.ID, Props: cloneNodeProps(n.Props)}
	if len(n.Labels) > 0 {
		out.Labels = append([]string(nil), n.Labels...)
	}
	return out
}

// sameValue is strict value identity: kind-sensitive, NaN-safe. Numeric
// cross-kind equality (value.Equal's Int 1 == Float 1.0) must NOT collapse
// a kind change — downstream fact extraction is kind-sensitive.
func sameValue(a, b value.Value) bool {
	return a.K == b.K && a.Canonical() == b.Canonical()
}
