package overlay

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/pg"
)

// The JSON wire format of mutation batches — the op encoding of the serving
// layer's POST /mutate payload and, byte for byte, the record payload of the
// write-ahead log (internal/wal). Keeping the codec here, next to the Op type
// it serializes, gives both consumers one canonical form: EncodeOps is
// deterministic (struct fields in declaration order, map keys sorted by
// encoding/json), so logging a decoded batch and re-encoding it is stable
// across processes, and a WAL record can be replayed — or POSTed — anywhere.
//
// One op per kind:
//
//	{"op":"add_node","name":"h","labels":["Company"],"props":{...}}
//	{"op":"add_edge","from":{"id":3},"to":{"name":"h"},"label":"owns","props":{...}}
//	{"op":"remove_node","node":{"id":3}}
//	{"op":"remove_edge","edge":7}
//	{"op":"set_node_prop","node":{"id":3},"key":"name","value":{"kind":"string","str":"x"}}
//	{"op":"del_node_prop","node":{"id":3},"key":"name"}
//	{"op":"add_label","node":{"id":3},"label":"Bank"}
//
// Property values use the same kind-tagged encoding as the graph JSON files
// (pg.JSONValue).

// jsonRef names a node either by OID or by the in-batch handle of an
// add_node op.
type jsonRef struct {
	ID   int64  `json:"id,omitempty"`
	Name string `json:"name,omitempty"`
}

func (j *jsonRef) toRef() Ref {
	if j == nil {
		return Ref{}
	}
	return Ref{ID: pg.OID(j.ID), Name: j.Name}
}

func fromRef(r Ref) *jsonRef {
	if r.ID == 0 && r.Name == "" {
		return nil
	}
	return &jsonRef{ID: int64(r.ID), Name: r.Name}
}

// jsonOp is one mutation on the wire. Fields are per-kind (see the package
// comment above).
type jsonOp struct {
	Op     string                  `json:"op"`
	Name   string                  `json:"name,omitempty"`
	Labels []string                `json:"labels,omitempty"`
	Label  string                  `json:"label,omitempty"`
	Props  map[string]pg.JSONValue `json:"props,omitempty"`
	Node   *jsonRef                `json:"node,omitempty"`
	From   *jsonRef                `json:"from,omitempty"`
	To     *jsonRef                `json:"to,omitempty"`
	Edge   int64                   `json:"edge,omitempty"`
	Key    string                  `json:"key,omitempty"`
	Value  *pg.JSONValue           `json:"value,omitempty"`
}

func (j *jsonOp) toOp() (Op, error) {
	op := Op{
		Kind:  OpKind(j.Op),
		Name:  j.Name,
		Label: j.Label,
		Node:  j.Node.toRef(),
		From:  j.From.toRef(),
		To:    j.To.toRef(),
		Edge:  pg.OID(j.Edge),
		Key:   j.Key,
	}
	switch op.Kind {
	case OpAddNode, OpAddEdge, OpRemoveNode,
		OpRemoveEdge, OpDelNodeProp, OpAddLabel:
	case OpSetNodeProp:
		if j.Value == nil {
			return Op{}, errors.New("set_node_prop needs a value")
		}
	default:
		return Op{}, fmt.Errorf("unknown op kind %q", j.Op)
	}
	op.Labels = append([]string(nil), j.Labels...)
	if len(j.Props) > 0 {
		op.Props = make(pg.Props, len(j.Props))
		for k, jv := range j.Props {
			v, err := pg.DecodeValue(jv)
			if err != nil {
				return Op{}, fmt.Errorf("prop %q: %w", k, err)
			}
			op.Props[k] = v
		}
	}
	if j.Value != nil {
		v, err := pg.DecodeValue(*j.Value)
		if err != nil {
			return Op{}, fmt.Errorf("value: %w", err)
		}
		op.Value = v
	}
	return op, nil
}

func fromOp(op Op) jsonOp {
	j := jsonOp{
		Op:     string(op.Kind),
		Name:   op.Name,
		Labels: op.Labels,
		Label:  op.Label,
		Node:   fromRef(op.Node),
		From:   fromRef(op.From),
		To:     fromRef(op.To),
		Edge:   int64(op.Edge),
		Key:    op.Key,
	}
	if len(op.Props) > 0 {
		j.Props = make(map[string]pg.JSONValue, len(op.Props))
		for k, v := range op.Props {
			j.Props[k] = pg.EncodeValue(v)
		}
	}
	if op.Kind == OpSetNodeProp {
		jv := pg.EncodeValue(op.Value)
		j.Value = &jv
	}
	return j
}

// EncodeOps serializes a batch as a JSON array of wire ops. The encoding is
// canonical — a pure function of the batch (map keys sorted, no timestamps)
// — so equal batches produce byte-identical payloads wherever they are
// encoded, which the WAL's replay differential relies on.
func EncodeOps(ops []Op) ([]byte, error) {
	out := make([]jsonOp, len(ops))
	for i, op := range ops {
		out[i] = fromOp(op)
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("overlay: encoding ops: %w", err)
	}
	return b, nil
}

// DecodeOps parses a JSON array of wire ops strictly: unknown fields,
// trailing data and malformed per-kind shapes are errors, never panics.
// Deep validation (ref resolution, duplicate handles) stays in Apply,
// against live state.
func DecodeOps(data []byte) ([]Op, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var raw []jsonOp
	if err := dec.Decode(&raw); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, errors.New("trailing data after ops array")
	}
	ops := make([]Op, len(raw))
	for i := range raw {
		op, err := raw[i].toOp()
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		ops[i] = op
	}
	return ops, nil
}
