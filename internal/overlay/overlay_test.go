package overlay_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/overlay"
	"repro/internal/pg"
	"repro/internal/snapfile"
	"repro/internal/sortedset"
	"repro/internal/value"
)

var (
	nodeLabelPool = []string{"Company", "Person", "Account", "Branch"}
	edgeLabelPool = []string{"owns", "controls", "holds"}
	propKeyPool   = []string{"name", "share", "active"}
)

func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(4) {
	case 0:
		return value.Str(fmt.Sprintf("s%d", rng.Intn(50)))
	case 1:
		return value.IntV(int64(rng.Intn(100)))
	case 2:
		return value.FloatV(float64(rng.Intn(100)) / 4)
	default:
		return value.BoolV(rng.Intn(2) == 0)
	}
}

func randLabels(rng *rand.Rand) []string {
	var out []string
	for _, l := range nodeLabelPool {
		if rng.Intn(3) == 0 {
			out = append(out, l)
		}
	}
	return out
}

func randProps(rng *rand.Rand) pg.Props {
	p := pg.Props{}
	for _, k := range propKeyPool {
		if rng.Intn(2) == 0 {
			p[k] = randValue(rng)
		}
	}
	return p
}

// randBase builds a random source graph.
func randBase(rng *rand.Rand) *pg.Graph {
	g := pg.New()
	n := 5 + rng.Intn(20)
	var ids []pg.OID
	for i := 0; i < n; i++ {
		ids = append(ids, g.AddNode(randLabels(rng), randProps(rng)).ID)
	}
	for i := 0; i < 2*n; i++ {
		from, to := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		g.MustAddEdge(from, to, edgeLabelPool[rng.Intn(len(edgeLabelPool))], randProps(rng))
	}
	return g
}

// randOps generates one valid mutation batch against the current reference
// graph (the ops are then applied to both representations).
func randOps(rng *rand.Rand, ref *pg.Graph) []overlay.Op {
	var ops []overlay.Op
	// Track nodes/edges that exist as the batch unfolds; start from ref.
	live := map[pg.OID]bool{}
	for _, n := range ref.Nodes() {
		live[n.ID] = true
	}
	liveEdges := map[pg.OID]bool{}
	for _, e := range ref.Edges() {
		liveEdges[e.ID] = true
	}
	pick := func(m map[pg.OID]bool) (pg.OID, bool) {
		var ids []pg.OID
		for id := range m {
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return 0, false
		}
		sortedset.Sort(ids)
		return ids[rng.Intn(len(ids))], true
	}
	names := 0
	handles := map[string]bool{}
	k := 1 + rng.Intn(8)
	for i := 0; i < k; i++ {
		switch rng.Intn(10) {
		case 0, 1: // add node, sometimes with a handle
			op := overlay.Op{Kind: overlay.OpAddNode, Labels: randLabels(rng), Props: randProps(rng)}
			if rng.Intn(2) == 0 {
				op.Name = fmt.Sprintf("h%d", names)
				handles[op.Name] = true
				names++
			}
			ops = append(ops, op)
		case 2, 3: // add edge between existing nodes or fresh handles
			var from, to overlay.Ref
			if id, ok := pick(live); ok && rng.Intn(3) > 0 {
				from = overlay.Ref{ID: id}
			} else if len(handles) > 0 {
				for h := range handles {
					from = overlay.Ref{Name: h}
					break
				}
			} else {
				continue
			}
			if id, ok := pick(live); ok {
				to = overlay.Ref{ID: id}
			} else {
				continue
			}
			ops = append(ops, overlay.Op{Kind: overlay.OpAddEdge, From: from, To: to,
				Label: edgeLabelPool[rng.Intn(len(edgeLabelPool))], Props: randProps(rng)})
		case 4: // remove node (cascades onto its ref-known incident edges)
			if id, ok := pick(live); ok {
				delete(live, id)
				for _, e := range ref.Out(id) {
					delete(liveEdges, e.ID)
				}
				for _, e := range ref.In(id) {
					delete(liveEdges, e.ID)
				}
				ops = append(ops, overlay.Op{Kind: overlay.OpRemoveNode, Node: overlay.Ref{ID: id}})
			}
		case 5: // remove edge
			if id, ok := pick(liveEdges); ok {
				delete(liveEdges, id)
				ops = append(ops, overlay.Op{Kind: overlay.OpRemoveEdge, Edge: id})
			}
		case 6, 7: // set prop
			if id, ok := pick(live); ok {
				ops = append(ops, overlay.Op{Kind: overlay.OpSetNodeProp, Node: overlay.Ref{ID: id},
					Key: propKeyPool[rng.Intn(len(propKeyPool))], Value: randValue(rng)})
			}
		case 8: // delete prop
			if id, ok := pick(live); ok {
				ops = append(ops, overlay.Op{Kind: overlay.OpDelNodeProp, Node: overlay.Ref{ID: id},
					Key: propKeyPool[rng.Intn(len(propKeyPool))]})
			}
		case 9: // add label
			if id, ok := pick(live); ok {
				ops = append(ops, overlay.Op{Kind: overlay.OpAddLabel, Node: overlay.Ref{ID: id},
					Label: nodeLabelPool[rng.Intn(len(nodeLabelPool))]})
			}
		}
	}
	return ops
}

// applyToGraph replays a batch on a mutable pg.Graph, the reference
// semantics the overlay must match (including OID allocation).
func applyToGraph(g *pg.Graph, ops []overlay.Op) error {
	names := map[string]pg.OID{}
	resolve := func(r overlay.Ref) pg.OID {
		if r.Name != "" {
			return names[r.Name]
		}
		return r.ID
	}
	for _, op := range ops {
		switch op.Kind {
		case overlay.OpAddNode:
			n := g.AddNode(op.Labels, op.Props)
			if op.Name != "" {
				names[op.Name] = n.ID
			}
		case overlay.OpAddEdge:
			if _, err := g.AddEdge(resolve(op.From), resolve(op.To), op.Label, op.Props); err != nil {
				return err
			}
		case overlay.OpRemoveNode:
			if err := g.RemoveNode(resolve(op.Node)); err != nil {
				return err
			}
		case overlay.OpRemoveEdge:
			if err := g.RemoveEdge(op.Edge); err != nil {
				return err
			}
		case overlay.OpSetNodeProp:
			if err := g.SetNodeProp(resolve(op.Node), op.Key, op.Value); err != nil {
				return err
			}
		case overlay.OpDelNodeProp:
			delete(g.Node(resolve(op.Node)).Props, op.Key)
		case overlay.OpAddLabel:
			if err := g.AddLabel(resolve(op.Node), op.Label); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown kind %q", op.Kind)
		}
	}
	return nil
}

func nodeEqual(a, b *pg.Node) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.ID != b.ID || len(a.Labels) != len(b.Labels) || len(a.Props) != len(b.Props) {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	for k, v := range a.Props {
		bv, ok := b.Props[k]
		if !ok || v.K != bv.K || v.Canonical() != bv.Canonical() {
			return false
		}
	}
	return true
}

func edgeEqual(a, b *pg.Edge) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.ID != b.ID || a.Label != b.Label || a.From != b.From || a.To != b.To || len(a.Props) != len(b.Props) {
		return false
	}
	for k, v := range a.Props {
		bv, ok := b.Props[k]
		if !ok || v.K != bv.K || v.Canonical() != bv.Canonical() {
			return false
		}
	}
	return true
}

func edgeListEqual(a, b []*pg.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !edgeEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareViews checks every pg.View method of got against want — the same
// invariant set the frozen-vs-mutable differential sweep relies on.
func compareViews(t *testing.T, got, want pg.View) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("sizes: got %d/%d want %d/%d", got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	gn, wn := got.Nodes(), want.Nodes()
	if len(gn) != len(wn) {
		t.Fatalf("Nodes len: %d vs %d", len(gn), len(wn))
	}
	for i := range gn {
		if !nodeEqual(gn[i], wn[i]) {
			t.Fatalf("Nodes[%d]: %+v vs %+v", i, gn[i], wn[i])
		}
		if !nodeEqual(got.Node(wn[i].ID), wn[i]) {
			t.Fatalf("Node(%d) mismatch", wn[i].ID)
		}
	}
	ge, we := got.Edges(), want.Edges()
	if !edgeListEqual(ge, we) {
		t.Fatalf("Edges: %v vs %v", ge, we)
	}
	for _, e := range we {
		if !edgeEqual(got.Edge(e.ID), e) {
			t.Fatalf("Edge(%d) mismatch", e.ID)
		}
	}
	if !stringsEqual(got.NodeLabels(), want.NodeLabels()) {
		t.Fatalf("NodeLabels: %v vs %v", got.NodeLabels(), want.NodeLabels())
	}
	if !stringsEqual(got.EdgeLabels(), want.EdgeLabels()) {
		t.Fatalf("EdgeLabels: %v vs %v", got.EdgeLabels(), want.EdgeLabels())
	}
	for _, l := range append(append([]string{}, nodeLabelPool...), "absent-label") {
		g, w := got.NodesByLabel(l), want.NodesByLabel(l)
		if len(g) != len(w) {
			t.Fatalf("NodesByLabel(%s) len: %d vs %d", l, len(g), len(w))
		}
		for i := range g {
			if !nodeEqual(g[i], w[i]) {
				t.Fatalf("NodesByLabel(%s)[%d]: %+v vs %+v", l, i, g[i], w[i])
			}
		}
	}
	for _, l := range append(append([]string{}, edgeLabelPool...), "absent-label") {
		if !edgeListEqual(got.EdgesByLabel(l), want.EdgesByLabel(l)) {
			t.Fatalf("EdgesByLabel(%s) mismatch", l)
		}
	}
	for _, n := range wn {
		if !edgeListEqual(got.Out(n.ID), want.Out(n.ID)) {
			t.Fatalf("Out(%d): %v vs %v", n.ID, got.Out(n.ID), want.Out(n.ID))
		}
		if !edgeListEqual(got.In(n.ID), want.In(n.ID)) {
			t.Fatalf("In(%d) mismatch", n.ID)
		}
		if got.OutDegree(n.ID) != want.OutDegree(n.ID) || got.InDegree(n.ID) != want.InDegree(n.ID) {
			t.Fatalf("degrees of %d: %d/%d vs %d/%d", n.ID,
				got.OutDegree(n.ID), got.InDegree(n.ID), want.OutDegree(n.ID), want.InDegree(n.ID))
		}
	}
	// Absent OIDs resolve to nothing on both sides.
	const absent = pg.OID(1 << 40)
	if got.Node(absent) != nil || got.Edge(absent) != nil || got.OutDegree(absent) != 0 || len(got.Out(absent)) != 0 {
		t.Fatal("absent OID must resolve to nothing")
	}
}

// TestOverlayPropertySweep: 25 seeds of randomized mutation batches applied
// to an overlay and to the equivalent mutable graph; every pg.View read and
// the compaction output must agree, with Compact() byte-identical under the
// snapshot encoder.
func TestOverlayPropertySweep(t *testing.T) {
	info := snapfile.BuildInfo{Tool: "overlay-test", Source: "prop", CreatedUnix: 1}
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			src := randBase(rng)
			base := src.Freeze()
			ov := overlay.New(base)
			ref := src.Clone()
			batches := 3 + rng.Intn(4)
			for b := 0; b < batches; b++ {
				ops := randOps(rng, ref)
				if _, err := ov.Apply(ops); err != nil {
					t.Fatalf("batch %d: %v", b, err)
				}
				if err := applyToGraph(ref, ops); err != nil {
					t.Fatalf("batch %d (reference): %v", b, err)
				}
				compareViews(t, ov, ref)
			}

			// Compact folds the delta into a snapshot byte-identical to
			// freezing the equivalently-mutated graph.
			compacted, err := ov.Compact()
			if err != nil {
				t.Fatal(err)
			}
			compareViews(t, compacted, ref)
			gotBytes, err := snapfile.Encode(compacted, info)
			if err != nil {
				t.Fatal(err)
			}
			wantBytes, err := snapfile.Encode(ref.Freeze(), info)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotBytes, wantBytes) {
				t.Fatalf("Compact() encoding diverges from direct freeze (%d vs %d bytes)", len(gotBytes), len(wantBytes))
			}

			// A second overlay generation over the compacted base keeps the
			// equivalence (the LSM lifecycle composes). The reference resets
			// to a thawed copy: compaction, like Thaw, restarts the OID
			// allocator just above the surviving maximum, deliberately
			// forgetting allocator history of removed constructs.
			ov2 := overlay.New(compacted)
			ref = compacted.Thaw()
			ops := randOps(rng, ref)
			if _, err := ov2.Apply(ops); err != nil {
				t.Fatal(err)
			}
			if err := applyToGraph(ref, ops); err != nil {
				t.Fatal(err)
			}
			compareViews(t, ov2, ref)
		})
	}
}

// TestOverlayCloneIsolation: mutating an overlay never disturbs a clone
// taken earlier (the server's swap discipline depends on it).
func TestOverlayCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := randBase(rng)
	base := src.Freeze()
	ov := overlay.New(base)
	ref := src.Clone()
	ops := randOps(rng, ref)
	if _, err := ov.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if err := applyToGraph(ref, ops); err != nil {
		t.Fatal(err)
	}

	snap := ov.Clone()
	refAtClone := ref.Clone()
	for i := 0; i < 5; i++ {
		more := randOps(rng, ref)
		if _, err := ov.Apply(more); err != nil {
			t.Fatal(err)
		}
		if err := applyToGraph(ref, more); err != nil {
			t.Fatal(err)
		}
	}
	compareViews(t, ov, ref)
	compareViews(t, snap, refAtClone) // the clone still shows the old state
}

// TestOverlayDiff pins the net-effect reporting a maintenance layer
// consumes.
func TestOverlayDiff(t *testing.T) {
	src := pg.New()
	a := src.AddNode([]string{"A"}, pg.Props{"name": value.Str("a")})
	b := src.AddNode([]string{"B"}, nil)
	e := src.MustAddEdge(a.ID, b.ID, "owns", nil)
	base := src.Freeze()
	ov := overlay.New(base)

	diff, err := ov.Apply([]overlay.Op{
		{Kind: overlay.OpAddNode, Name: "n", Labels: []string{"C"}},
		{Kind: overlay.OpAddEdge, From: overlay.Ref{ID: a.ID}, To: overlay.Ref{Name: "n"}, Label: "holds"},
		{Kind: overlay.OpSetNodeProp, Node: overlay.Ref{ID: a.ID}, Key: "name", Value: value.Str("a2")},
		{Kind: overlay.OpRemoveEdge, Edge: e.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.AddedNodes) != 1 || diff.AddedNodes[0].Label() != "C" {
		t.Fatalf("AddedNodes = %v", diff.AddedNodes)
	}
	if len(diff.AddedEdges) != 1 || diff.AddedEdges[0].Label != "holds" {
		t.Fatalf("AddedEdges = %v", diff.AddedEdges)
	}
	if len(diff.RemovedEdges) != 1 || diff.RemovedEdges[0].ID != e.ID {
		t.Fatalf("RemovedEdges = %v", diff.RemovedEdges)
	}
	if len(diff.ChangedNodes) != 1 ||
		diff.ChangedNodes[0].Before.Props["name"].S != "a" ||
		diff.ChangedNodes[0].After.Props["name"].S != "a2" {
		t.Fatalf("ChangedNodes = %+v", diff.ChangedNodes)
	}

	// A construct created and destroyed in one batch nets out to nothing,
	// and a node modified then removed reports only the removal with its
	// pre-batch state.
	diff, err = ov.Apply([]overlay.Op{
		{Kind: overlay.OpAddNode, Name: "tmp", Labels: []string{"D"}},
		{Kind: overlay.OpRemoveNode, Node: overlay.Ref{Name: "tmp"}},
		{Kind: overlay.OpSetNodeProp, Node: overlay.Ref{ID: b.ID}, Key: "k", Value: value.IntV(1)},
		{Kind: overlay.OpRemoveNode, Node: overlay.Ref{ID: b.ID}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.AddedNodes) != 0 || len(diff.ChangedNodes) != 0 {
		t.Fatalf("net-out failed: %+v", diff)
	}
	if len(diff.RemovedNodes) != 1 || diff.RemovedNodes[0].ID != b.ID || len(diff.RemovedNodes[0].Props) != 0 {
		t.Fatalf("RemovedNodes = %+v", diff.RemovedNodes)
	}

	// Setting a property to its current value is not a change.
	diff, err = ov.Apply([]overlay.Op{
		{Kind: overlay.OpSetNodeProp, Node: overlay.Ref{ID: a.ID}, Key: "name", Value: value.Str("a2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Empty() {
		t.Fatalf("no-op set must be empty, got %+v", diff)
	}
}

// TestOverlayErrors: invalid operations fail with the overlay still usable.
func TestOverlayErrors(t *testing.T) {
	src := pg.New()
	a := src.AddNode([]string{"A"}, nil)
	ov := overlay.New(src.Freeze())
	cases := [][]overlay.Op{
		{{Kind: overlay.OpAddEdge, From: overlay.Ref{ID: a.ID}, To: overlay.Ref{ID: 999}, Label: "x"}},
		{{Kind: overlay.OpAddEdge, From: overlay.Ref{Name: "ghost"}, To: overlay.Ref{ID: a.ID}, Label: "x"}},
		{{Kind: overlay.OpRemoveNode, Node: overlay.Ref{ID: 999}}},
		{{Kind: overlay.OpRemoveEdge, Edge: 999}},
		{{Kind: overlay.OpSetNodeProp, Node: overlay.Ref{ID: 999}, Key: "k"}},
		{{Kind: overlay.OpAddLabel, Node: overlay.Ref{ID: 999}, Label: "L"}},
		{{Kind: "nonsense"}},
		{{Kind: overlay.OpAddNode, Name: "h"}, {Kind: overlay.OpAddNode, Name: "h"}},
	}
	// Apply is non-atomic on error, so each failing batch goes to a clone —
	// the server's own discipline — and the original must stay pristine.
	for i, ops := range cases {
		if _, err := ov.Clone().Apply(ops); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if ov.DeltaSize() != 0 || ov.NumNodes() != 1 {
		t.Fatalf("original overlay disturbed: delta %d, nodes %d", ov.DeltaSize(), ov.NumNodes())
	}
	// Removing a node twice fails the second time.
	if _, err := ov.Apply([]overlay.Op{{Kind: overlay.OpRemoveNode, Node: overlay.Ref{ID: a.ID}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Apply([]overlay.Op{{Kind: overlay.OpRemoveNode, Node: overlay.Ref{ID: a.ID}}}); err == nil {
		t.Error("double remove must fail")
	}
	if ov.NumNodes() != 0 || ov.DeltaSize() != 1 {
		t.Fatalf("overlay state after removals: %d nodes, delta %d", ov.NumNodes(), ov.DeltaSize())
	}
}
