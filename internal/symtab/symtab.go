// Package symtab implements a deterministic string interner for the names
// that recur throughout a knowledge graph: node and edge labels, property
// keys, and predicate names. The paper's graph dictionaries (§2.2) carry
// the same few dozen construct names across millions of instances, so the
// storage layer maps each distinct string to a small dense Sym once and
// stores the Sym everywhere else.
//
// Determinism contract: a Table assigns Syms in first-Intern order, so two
// tables fed the same strings in the same order are identical. The frozen
// snapshot builder (pg.Freeze) feeds names in sorted order, making the
// symbol assignment a pure function of the graph's content.
//
// A Table is not safe for concurrent mutation. A table that will no longer
// be mutated (the frozen phase) is safe for concurrent readers.
package symtab

import "fmt"

// Sym is an interned symbol: a dense index into its Table. The zero Sym is
// never assigned to a string — it is reserved as "no symbol" so Sym fields
// have a usable zero value.
type Sym uint32

// None is the zero Sym, assigned to no string.
const None Sym = 0

// Table maps strings to dense symbols and back.
//
// The zero value is not usable; construct tables with New.
type Table struct {
	byName map[string]Sym
	names  []string // names[sym] = string; names[0] is the unused None slot
}

// New returns an empty table.
func New() *Table {
	return &Table{
		byName: make(map[string]Sym),
		names:  make([]string, 1), // reserve Sym 0 = None
	}
}

// FromNames rebuilds a table from a Names() listing: names[i] is assigned
// Sym(i+1), exactly inverting Names. It is the deserialization entry point
// of the on-disk snapshot format (internal/snapfile), which persists the
// table as its name list. Duplicate names are an error — a table never
// assigns two symbols to one string.
func FromNames(names []string) (*Table, error) {
	t := &Table{
		byName: make(map[string]Sym, len(names)),
		names:  make([]string, 1, len(names)+1),
	}
	for _, s := range names {
		if _, dup := t.byName[s]; dup {
			return nil, fmt.Errorf("symtab: duplicate name %q in table listing", s)
		}
		t.byName[s] = Sym(len(t.names))
		t.names = append(t.names, s)
	}
	return t, nil
}

// Intern returns the symbol for s, assigning the next free Sym on first
// use. Interning the same string always returns the same symbol.
func (t *Table) Intern(s string) Sym {
	if sym, ok := t.byName[s]; ok {
		return sym
	}
	sym := Sym(len(t.names))
	t.names = append(t.names, s)
	t.byName[s] = sym
	return sym
}

// Lookup returns the symbol for s if it has been interned. It never
// mutates the table, so it is safe to call concurrently on a frozen table.
func (t *Table) Lookup(s string) (Sym, bool) {
	sym, ok := t.byName[s]
	return sym, ok
}

// Name returns the string a symbol was assigned to. It panics on None or
// an out-of-range symbol: those indicate a symbol from a different table,
// which is a programming error.
func (t *Table) Name(sym Sym) string {
	if sym == None || int(sym) >= len(t.names) {
		panic("symtab: symbol not in table")
	}
	return t.names[sym]
}

// Len returns the number of interned strings.
func (t *Table) Len() int { return len(t.names) - 1 }

// Names returns the interned strings in symbol order (ascending Sym). The
// returned slice is shared with the table and must not be modified.
func (t *Table) Names() []string { return t.names[1:] }
