package symtab

import (
	"fmt"
	"slices"
	"sync"
	"testing"
)

func TestInternDeterministic(t *testing.T) {
	words := []string{"Company", "Person", "Owns", "Company", "name", "Owns"}
	a, b := New(), New()
	for _, w := range words {
		sa, sb := a.Intern(w), b.Intern(w)
		if sa != sb {
			t.Fatalf("Intern(%q): %d vs %d across identical tables", w, sa, sb)
		}
		if sa == None {
			t.Fatalf("Intern(%q) returned None", w)
		}
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	if want := []string{"Company", "Person", "Owns", "name"}; !slices.Equal(a.Names(), want) {
		t.Fatalf("Names = %v, want %v", a.Names(), want)
	}
}

func TestRoundTrip(t *testing.T) {
	tab := New()
	syms := map[string]Sym{}
	for _, w := range []string{"", "a", "b", "a b", "ä"} {
		syms[w] = tab.Intern(w)
	}
	for w, s := range syms {
		if got := tab.Name(s); got != w {
			t.Fatalf("Name(Intern(%q)) = %q", w, got)
		}
		if got, ok := tab.Lookup(w); !ok || got != s {
			t.Fatalf("Lookup(%q) = %d,%v want %d,true", w, got, ok, s)
		}
	}
	if _, ok := tab.Lookup("absent"); ok {
		t.Fatal("Lookup(absent) = true")
	}
}

// TestConcurrentFrozenReaders exercises the package contract that a table no
// longer being mutated is safe for concurrent readers. Run under -race (make
// test-race) this proves Lookup / Name / Names perform no hidden mutation.
func TestConcurrentFrozenReaders(t *testing.T) {
	tab := New()
	words := make([]string, 64)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
		tab.Intern(words[i])
	}
	// The mutable phase ends here; from now on the table is only read.
	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				for i, word := range words {
					sym, ok := tab.Lookup(word)
					if !ok || tab.Name(sym) != word {
						errs <- fmt.Errorf("reader %d: lookup of %q failed", w, word)
						return
					}
					if tab.Names()[i] != word {
						errs <- fmt.Errorf("reader %d: Names()[%d] != %q", w, i, word)
						return
					}
				}
				if _, ok := tab.Lookup("absent"); ok {
					errs <- fmt.Errorf("reader %d: phantom symbol", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNamePanicsOnForeignSym(t *testing.T) {
	tab := New()
	tab.Intern("x")
	for _, sym := range []Sym{None, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Name(%d) did not panic", sym)
				}
			}()
			tab.Name(sym)
		}()
	}
}
