package symtab

import "sort"

// Set is an unordered staging dictionary: the per-shard half of parallel
// symbol interning. Bulk ingest workers each collect the distinct names
// their shard of batches mentions into a private Set — no locking, no
// symbol assignment — and the shards are then merged and sorted into one
// Table whose final symbol order is a pure function of the name population,
// independent of how the work was sharded (the same discipline as the
// worker-pool shard merge of the parallel reasoner).
//
// A Set is not safe for concurrent use; use one per worker.
type Set struct {
	m map[string]struct{}
}

// NewSet returns an empty set.
func NewSet() *Set {
	return &Set{m: make(map[string]struct{})}
}

// Add inserts a name; duplicates are no-ops.
func (s *Set) Add(name string) {
	s.m[name] = struct{}{}
}

// Has reports whether the name is present.
func (s *Set) Has(name string) bool {
	_, ok := s.m[name]
	return ok
}

// Len returns the number of distinct names.
func (s *Set) Len() int { return len(s.m) }

// SortedNames returns the names in ascending order.
func (s *Set) SortedNames() []string {
	out := make([]string, 0, len(s.m))
	for n := range s.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MergeSorted unions any number of shard sets into one ascending name list.
// The result depends only on the union of the inputs — the deterministic
// merge step that makes sharded interning order-independent.
func MergeSorted(sets ...*Set) []string {
	total := 0
	for _, s := range sets {
		total += s.Len()
	}
	u := make(map[string]struct{}, total)
	for _, s := range sets {
		for n := range s.m {
			u[n] = struct{}{}
		}
	}
	out := make([]string, 0, len(u))
	for n := range u {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
