// Package value defines the scalar value domain shared by the property-graph
// store and the Vadalog/MetaLog reasoning engine.
//
// The domain follows the paper's relational foundations (Section 4): constants
// C, labeled nulls N, and the Skolem identifier set I (disjoint from C and N)
// used by linker Skolem functors. Values are comparable Go structs so they can
// be used directly as map keys in join indexes and deduplication tables.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the value domain a Value belongs to.
type Kind uint8

// The kinds of values. String, Int, Float and Bool are the constant domain C.
// Null is the labeled-null domain N produced by existential quantification.
// ID is the Skolem identifier domain I produced by linker Skolem functors,
// which the paper requires to be disjoint from C and N.
const (
	Invalid Kind = iota
	String
	Int
	Float
	Bool
	Null
	ID
)

func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Null:
		return "null"
	case ID:
		return "id"
	default:
		return "invalid"
	}
}

// Value is a scalar in C ∪ N ∪ I. The zero Value has Kind Invalid.
//
// Value is comparable: two Values are equal under == exactly when they denote
// the same domain element. Labeled nulls compare by their label (N field);
// Skolem identifiers compare by their canonical string form (S field).
type Value struct {
	K Kind
	S string  // String payload, or canonical Skolem term for ID
	I int64   // Int payload, or null label for Null
	F float64 // Float payload
	B bool    // Bool payload
}

// Str returns a string constant.
func Str(s string) Value { return Value{K: String, S: s} }

// IntV returns an integer constant.
func IntV(i int64) Value { return Value{K: Int, I: i} }

// FloatV returns a floating-point constant.
func FloatV(f float64) Value { return Value{K: Float, F: f} }

// BoolV returns a boolean constant.
func BoolV(b bool) Value { return Value{K: Bool, B: b} }

// NullV returns the labeled null with the given label.
func NullV(label int64) Value { return Value{K: Null, I: label} }

// IDV returns a Skolem identifier with the given canonical term string.
func IDV(term string) Value { return Value{K: ID, S: term} }

// Skolem builds an identifier in I by applying the named functor to the given
// argument values. Functors are injective and deterministic: equal functor
// names and argument tuples always yield the same identifier, and distinct
// functors have disjoint ranges (the functor name is part of the canonical
// term).
func Skolem(functor string, args ...Value) Value {
	var b strings.Builder
	b.WriteString(functor)
	b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Canonical())
	}
	b.WriteByte(')')
	return Value{K: ID, S: b.String()}
}

// IsZero reports whether v is the zero (Invalid) Value.
func (v Value) IsZero() bool { return v.K == Invalid }

// IsConst reports whether v belongs to the constant domain C.
func (v Value) IsConst() bool {
	return v.K == String || v.K == Int || v.K == Float || v.K == Bool
}

// AppendCanonical appends the canonical form of v to buf, avoiding the
// intermediate string of Canonical. It is the hot path of the reasoning
// engine's join keys.
func (v Value) AppendCanonical(buf []byte) []byte {
	switch v.K {
	case String:
		return strconv.AppendQuote(buf, v.S)
	case Int:
		return strconv.AppendInt(buf, v.I, 10)
	case Float:
		buf = append(buf, 'f')
		return strconv.AppendFloat(buf, v.F, 'g', -1, 64)
	case Bool:
		if v.B {
			return append(buf, "true"...)
		}
		return append(buf, "false"...)
	case Null:
		buf = append(buf, "_:n"...)
		return strconv.AppendInt(buf, v.I, 10)
	case ID:
		buf = append(buf, '#')
		return append(buf, v.S...)
	default:
		return append(buf, "<invalid>"...)
	}
}

// Canonical returns an unambiguous textual form of v, suitable for use inside
// Skolem terms and hash keys. Distinct values always have distinct canonical
// forms across kinds.
func (v Value) Canonical() string {
	switch v.K {
	case String:
		return strconv.Quote(v.S)
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	case Null:
		return "_:n" + strconv.FormatInt(v.I, 10)
	case ID:
		return "#" + v.S
	default:
		return "<invalid>"
	}
}

// String renders v for human consumption (error messages, rendered tables).
func (v Value) String() string {
	switch v.K {
	case String:
		return v.S
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Bool:
		return strconv.FormatBool(v.B)
	case Null:
		return "_:n" + strconv.FormatInt(v.I, 10)
	case ID:
		return "#" + v.S
	default:
		return "<invalid>"
	}
}

// AsFloat converts numeric values to float64. It reports false for
// non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case Int:
		return float64(v.I), true
	case Float:
		return v.F, true
	default:
		return 0, false
	}
}

// AsInt converts v to an int64 if it is an Int, or a Float with an integral
// value. It reports false otherwise.
func (v Value) AsInt() (int64, bool) {
	switch v.K {
	case Int:
		return v.I, true
	case Float:
		if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) {
			return int64(v.F), true
		}
	}
	return 0, false
}

// Truthy reports whether v is the boolean true.
func (v Value) Truthy() bool { return v.K == Bool && v.B }

// Compare orders two values. Values of different kinds are ordered by kind,
// except that Int and Float compare numerically with each other. Within a
// kind the natural order applies. Compare returns -1, 0 or +1.
func Compare(a, b Value) int {
	if af, ok := a.AsFloat(); ok {
		if bf, ok := b.AsFloat(); ok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case String:
		return strings.Compare(a.S, b.S)
	case Bool:
		switch {
		case a.B == b.B:
			return 0
		case b.B:
			return -1
		default:
			return 1
		}
	case Null:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	case ID:
		return strings.Compare(a.S, b.S)
	default:
		return 0
	}
}

// Equal reports whether a and b denote the same domain element. Int and Float
// values that are numerically equal are considered equal, mirroring the
// comparison semantics of MetaLog conditions.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Add returns a+b for numeric values and string concatenation for strings.
func Add(a, b Value) (Value, error) {
	if a.K == String && b.K == String {
		return Str(a.S + b.S), nil
	}
	if a.K == Int && b.K == Int {
		return IntV(a.I + b.I), nil
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		return FloatV(af + bf), nil
	}
	return Value{}, fmt.Errorf("value: cannot add %s and %s", a.K, b.K)
}

// Sub returns a-b for numeric values.
func Sub(a, b Value) (Value, error) {
	if a.K == Int && b.K == Int {
		return IntV(a.I - b.I), nil
	}
	return arith(a, b, "subtract", func(x, y float64) float64 { return x - y })
}

// Mul returns a*b for numeric values.
func Mul(a, b Value) (Value, error) {
	if a.K == Int && b.K == Int {
		return IntV(a.I * b.I), nil
	}
	return arith(a, b, "multiply", func(x, y float64) float64 { return x * y })
}

// Div returns a/b for numeric values; integer division truncates. Division by
// zero is an error.
func Div(a, b Value) (Value, error) {
	if bf, ok := b.AsFloat(); ok && bf == 0 {
		return Value{}, fmt.Errorf("value: division by zero")
	}
	if a.K == Int && b.K == Int {
		return IntV(a.I / b.I), nil
	}
	return arith(a, b, "divide", func(x, y float64) float64 { return x / y })
}

func arith(a, b Value, verb string, f func(x, y float64) float64) (Value, error) {
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return Value{}, fmt.Errorf("value: cannot %s %s and %s", verb, a.K, b.K)
	}
	return FloatV(f(af, bf)), nil
}

// ParseLiteral parses a textual literal: a quoted string, integer, float, or
// boolean. It is used by the Vadalog and MetaLog parsers and the CSV loader.
func ParseLiteral(s string) (Value, error) {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad string literal %s: %w", s, err)
		}
		return Str(u), nil
	}
	switch s {
	case "true":
		return BoolV(true), nil
	case "false":
		return BoolV(false), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return IntV(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return FloatV(f), nil
	}
	return Value{}, fmt.Errorf("value: unrecognized literal %q", s)
}
