package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Str("hi"), String, "hi"},
		{IntV(-3), Int, "-3"},
		{FloatV(2.5), Float, "2.5"},
		{BoolV(true), Bool, "true"},
		{NullV(7), Null, "_:n7"},
		{IDV("f(1)"), ID, "#f(1)"},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.K, c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v String() = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	if !(Value{}).IsZero() {
		t.Error("zero value must report IsZero")
	}
	if Str("x").IsZero() {
		t.Error("non-zero value reports IsZero")
	}
	if !Str("x").IsConst() || NullV(1).IsConst() || IDV("x").IsConst() {
		t.Error("IsConst misclassifies")
	}
}

// TestCanonicalInjective is a property-based test: distinct values have
// distinct canonical forms (canonical encoding drives hash joins and Skolem
// terms, so collisions would corrupt reasoning results).
func TestCanonicalInjective(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		vs := []Value{IntV(a), IntV(b), Str(s1), Str(s2), FloatV(float64(a) / 2), BoolV(a%2 == 0), NullV(a), IDV(s1)}
		for i := range vs {
			for j := range vs {
				eq := Equal(vs[i], vs[j])
				ceq := vs[i].Canonical() == vs[j].Canonical()
				// Equal values must share canonical form; distinct canonical
				// forms must mean unequal values. (Int/Float numeric equality
				// is the one legitimate case of equal values with distinct
				// canonical forms, checked separately below.)
				if ceq && !eq {
					return false
				}
				if eq && !ceq && vs[i].K == vs[j].K {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCompareIsOrdering checks the ordering axioms by property: antisymmetry
// and transitivity over randomly generated values.
func TestCompareIsOrdering(t *testing.T) {
	gen := func(seed int64) Value {
		switch seed % 5 {
		case 0:
			return IntV(seed / 5)
		case 1:
			return FloatV(float64(seed) / 3)
		case 2:
			return Str(string(rune('a' + seed%26)))
		case 3:
			return BoolV(seed%2 == 0)
		default:
			return NullV(seed % 17)
		}
	}
	f := func(a, b, c int64) bool {
		x, y, z := gen(a), gen(b), gen(c)
		if Compare(x, y) != -Compare(y, x) {
			return false
		}
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 && Compare(x, z) > 0 {
			return false
		}
		return Compare(x, x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNumericCrossKindEquality(t *testing.T) {
	if !Equal(IntV(3), FloatV(3.0)) {
		t.Error("3 and 3.0 must be equal")
	}
	if Equal(IntV(3), FloatV(3.5)) {
		t.Error("3 and 3.5 must differ")
	}
	if Compare(IntV(2), FloatV(2.5)) >= 0 {
		t.Error("2 < 2.5")
	}
}

func TestSkolemProperties(t *testing.T) {
	a := Skolem("f", Str("x"), IntV(1))
	b := Skolem("f", Str("x"), IntV(1))
	if !Equal(a, b) {
		t.Error("Skolem must be deterministic")
	}
	c := Skolem("f", Str("x"), IntV(2))
	if Equal(a, c) {
		t.Error("Skolem must be injective in its arguments")
	}
	d := Skolem("g", Str("x"), IntV(1))
	if Equal(a, d) {
		t.Error("distinct functors must have disjoint ranges")
	}
	// Nested Skolems stay injective.
	n1 := Skolem("h", a)
	n2 := Skolem("h", c)
	if Equal(n1, n2) {
		t.Error("nested Skolem collision")
	}
}

// TestSkolemNoConcatCollision guards the canonical encoding against
// concatenation ambiguity: f("ab","c") must differ from f("a","bc").
func TestSkolemNoConcatCollision(t *testing.T) {
	if Equal(Skolem("f", Str("ab"), Str("c")), Skolem("f", Str("a"), Str("bc"))) {
		t.Fatal("argument concatenation collision")
	}
	if Equal(Skolem("f", Str("1")), Skolem("f", IntV(1))) {
		t.Fatal("string/int collision in skolem args")
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(Add(IntV(2), IntV(3))); got.I != 5 || got.K != Int {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Add(IntV(2), FloatV(0.5))); got.F != 2.5 {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(Add(Str("a"), Str("b"))); got.S != "ab" {
		t.Errorf("a+b = %v", got)
	}
	if got := mustV(Mul(FloatV(0.5), FloatV(0.5))); got.F != 0.25 {
		t.Errorf("0.5*0.5 = %v", got)
	}
	if got := mustV(Sub(IntV(2), IntV(5))); got.I != -3 {
		t.Errorf("2-5 = %v", got)
	}
	if got := mustV(Div(IntV(7), IntV(2))); got.I != 3 {
		t.Errorf("7/2 = %v (integer division)", got)
	}
	if _, err := Div(IntV(1), IntV(0)); err == nil {
		t.Error("division by zero must fail")
	}
	if _, err := Add(BoolV(true), IntV(1)); err == nil {
		t.Error("bool arithmetic must fail")
	}
}

func TestAsIntAsFloat(t *testing.T) {
	if v, ok := FloatV(4.0).AsInt(); !ok || v != 4 {
		t.Error("4.0 should convert to int 4")
	}
	if _, ok := FloatV(4.5).AsInt(); ok {
		t.Error("4.5 is not integral")
	}
	if _, ok := FloatV(math.Inf(1)).AsInt(); ok {
		t.Error("infinity is not integral")
	}
	if _, ok := Str("4").AsFloat(); ok {
		t.Error("strings are not numeric")
	}
}

func TestParseLiteral(t *testing.T) {
	cases := map[string]Value{
		`"hi"`:  Str("hi"),
		"42":    IntV(42),
		"-1":    IntV(-1),
		"0.5":   FloatV(0.5),
		"true":  BoolV(true),
		"false": BoolV(false),
	}
	for in, want := range cases {
		got, err := ParseLiteral(in)
		if err != nil || !Equal(got, want) {
			t.Errorf("ParseLiteral(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLiteral("not a literal"); err == nil {
		t.Error("garbage must not parse")
	}
}
