//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race detector.
const RaceEnabled = true
