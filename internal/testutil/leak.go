// Package testutil holds helpers shared by the test suites of several
// packages. Production code must not import it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutineLeak snapshots the goroutine count and returns a function
// that fails the test if the count has not settled back to that level. Use
// it around any code that starts worker pools:
//
//	check := testutil.CheckGoroutineLeak(t)
//	... run the code under test ...
//	check()
//
// The check retries with a grace period rather than comparing instantly:
// pool teardown is asynchronous, and the runtime keeps a few background
// goroutines of its own whose scheduling this must not race with.
func CheckGoroutineLeak(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			now := runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutines leaked: %d before, %d after", before, now)
				return
			}
			runtime.Gosched()
			time.Sleep(5 * time.Millisecond)
		}
	}
}
