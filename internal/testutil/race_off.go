//go:build !race

package testutil

// RaceEnabled reports whether the binary was built with the race detector.
// Large-scale smoke tests consult it: the detector's ~10× memory multiplier
// turns a bounded 10M-edge load into an OOM, so those legs skip under -race
// and run their concurrency coverage at reduced scale instead.
const RaceEnabled = false
