// Command ssst is the Super-Schema to Schema Translator (Algorithm 1): it
// casts a super-schema into a target model by running the Eliminate/Copy
// MetaLog mappings over the graph dictionary, and emits the enforceable
// schema artifacts — the Figure 6 / Figure 8 outputs.
//
// Usage:
//
//	ssst -companykg -target relational              # Figure 8 + DDL
//	ssst -companykg -target pg -strategy multi-label # Figure 6 + constraints
//	ssst -in design.gsl -target pg -strategy child-edges
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gsl"
	"repro/internal/models"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
)

func main() {
	in := flag.String("in", "", "GSL design file")
	companyKG := flag.Bool("companykg", false, "use the built-in Company KG design of Figure 4")
	target := flag.String("target", "pg", "target model: pg or relational")
	strategy := flag.String("strategy", "", "implementation strategy (pg: multi-label, child-edges)")
	emit := flag.Bool("emit", true, "emit the enforceable artifact (DDL / constraints)")
	dot := flag.Bool("dot", false, "render the translated schema as Graphviz DOT (the Figure 6 / Figure 8 diagrams) instead of the artifact")
	stats := flag.Bool("stats", false, "print translation statistics")
	flag.Parse()

	var schema *supermodel.Schema
	switch {
	case *companyKG:
		schema = supermodel.CompanyKG()
	case *in != "":
		src, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		schema, err = gsl.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "ssst: need -in <design.gsl> or -companykg")
		os.Exit(2)
	}

	dict := supermodel.NewDictionary()
	if err := supermodel.ToDictionary(schema, dict); err != nil {
		fatal(err)
	}
	m, err := models.SelectMapping(schema.OID, schema.OID+1, schema.OID+2, *target, *strategy)
	if err != nil {
		fatal(err)
	}
	res, err := models.Translate(dict, m, vadalog.Options{})
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "ssst: eliminate derived %d facts in %v; copy derived %d facts in %v\n",
			res.EliminateRun.FactsDerived, res.EliminateRun.Duration,
			res.CopyRun.FactsDerived, res.CopyRun.Duration)
	}

	switch *target {
	case "pg":
		view, err := models.ReadPGSchema(res.Dict, m.TargetOID)
		if err != nil {
			fatal(err)
		}
		if *dot {
			fmt.Print(models.RenderPGViewDOT(view))
			return
		}
		fmt.Printf("// %d node types, %d relationship types (strategy %s)\n", len(view.Nodes), len(view.Rels), m.Strategy)
		for _, n := range view.Nodes {
			props := make([]string, len(n.Properties))
			for i, p := range n.Properties {
				props[i] = p.Name
			}
			fmt.Printf("// (:%s) {%s}\n", strings.Join(n.Labels, ":"), strings.Join(props, ", "))
		}
		if *emit {
			fmt.Print(models.EmitPGConstraints(view))
		}
	case "relational":
		view, err := models.ReadRelationalSchema(res.Dict, m.TargetOID)
		if err != nil {
			fatal(err)
		}
		if *dot {
			fmt.Print(models.RenderRelationalViewDOT(view))
			return
		}
		fmt.Printf("-- %d relations (strategy %s)\n", len(view.Relations), m.Strategy)
		if *emit {
			fmt.Print(models.EmitSQL(view))
		}
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssst:", err)
	os.Exit(1)
}
