// Command kgbench regenerates the paper's evaluation artifacts from one
// binary: the Section 2.1 statistics table, the Figure 6 / Figure 8
// translation outputs, the company-control reasoning sweep (Examples
// 4.1/4.2), the Algorithm 2 phase breakdown of Section 6, and the ablation
// tables of DESIGN.md. See EXPERIMENTS.md for the experiment index.
//
// Usage:
//
//	kgbench -experiment stats   -scales 1000,10000,50000
//	kgbench -experiment control -scales 1000,5000,20000
//	kgbench -experiment phases  -scales 500,2000,8000
//	kgbench -experiment figures
//	kgbench -experiment ablation -scales 1000,5000
//	kgbench -experiment closelinks -scales 500,2000
//	kgbench -experiment scaling -scales 2000,8000 -workers 8
//	kgbench -experiment all
//
// -workers sets the parallelism of the reasoning fixpoint and of the
// statistics computation (default: all CPUs; see the "Parallel evaluation"
// sections of DESIGN.md and EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/finance"
	"repro/internal/fingraph"
	"repro/internal/graphstats"
	"repro/internal/instance"
	"repro/internal/metalog"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// engTimeout, engTrace, and engOnFault hold the -timeout / -trace /
// -on-fault settings; engineOpts threads them into every reasoning run an
// experiment performs.
var (
	engTimeout time.Duration
	engTrace   *obs.Trace
	engOnFault vadalog.FaultPolicy
)

// engineOpts builds the vadalog options for one reasoning run under the
// global observability/cancellation/robustness flags.
func engineOpts(workers int) vadalog.Options {
	return vadalog.Options{Workers: workers, Timeout: engTimeout, Trace: engTrace, OnFault: engOnFault}
}

func main() {
	experiment := flag.String("experiment", "all", "stats, control, phases, figures, ablation, closelinks, groups, scaling, or all")
	scales := flag.String("scales", "1000,5000,20000", "comma-separated company counts")
	seed := flag.Int64("seed", 42, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(), "goroutines for reasoning and statistics (1 = sequential)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound per reasoning run (0 = none)")
	traceFile := flag.String("trace", "", "write the JSON run trace of every reasoning run to this file")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	// kgbench generates its data in memory, so there is nothing for
	// -retries to retry; it gets only -on-fault and the hidden -chaos.
	ff := cli.RegisterFaultFlags(flag.CommandLine, false)
	flag.Parse()
	onFault, done, err := ff.Apply(os.Stdout)
	if err != nil {
		fatal(err)
	}
	if done {
		return
	}
	engOnFault = onFault
	engTimeout = *timeout
	if *traceFile != "" {
		engTrace = obs.NewTrace()
		defer func() {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kgbench:", err)
				return
			}
			defer f.Close()
			if err := engTrace.WriteJSONTimings(f); err != nil {
				fmt.Fprintln(os.Stderr, "kgbench:", err)
			}
		}()
	}
	if *pprofAddr != "" {
		if err := obs.ServeDebug(*pprofAddr); err != nil {
			fatal(err)
		}
	}

	var ns []int
	for _, s := range strings.Split(*scales, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		ns = append(ns, n)
	}

	run := map[string]func([]int, int64, int){
		"stats":      runStats,
		"control":    runControl,
		"phases":     runPhases,
		"figures":    func([]int, int64, int) { runFigures() },
		"ablation":   runAblation,
		"closelinks": runCloseLinks,
		"groups":     runGroups,
		"scaling":    runScaling,
	}
	if *experiment == "all" {
		for _, name := range []string{"stats", "control", "phases", "figures", "ablation", "closelinks", "groups", "scaling"} {
			fmt.Printf("==== %s ====\n", name)
			run[name](ns, *seed, *workers)
			fmt.Println()
		}
		return
	}
	f, ok := run[*experiment]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *experiment))
	}
	f(ns, *seed, *workers)
}

// runStats is experiment E1: the Section 2.1 statistics table across scales.
func runStats(scales []int, seed int64, workers int) {
	fmt.Println("E1 — Section 2.1 graph statistics (synthetic shareholding graph)")
	fmt.Println("paper (11.97M nodes): 11.96M SCCs (avg 1, max 1.9k); >1.3M WCCs (avg 9, max >6M);")
	fmt.Println("avg in-deg 3.12, out-deg 1.78; max in-deg 16.9k, out-deg 5.1k; clustering 0.0086")
	for _, n := range scales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, seed))
		g := topo.Shareholding()
		start := time.Now()
		s := graphstats.ComputeWorkers(g, workers)
		fmt.Printf("\n-- companies=%d (computed in %v)\n%s", n, time.Since(start).Round(time.Millisecond), s.Table())
	}
}

// runControl is experiment E10: the control sweep — MetaLog pipeline
// (Example 4.1), plain Vadalog (Example 4.2) and the native baseline.
func runControl(scales []int, seed int64, workers int) {
	fmt.Println("E10 — company control (Examples 4.1/4.2): MetaLog pipeline vs Vadalog vs native")
	fmt.Printf("%-10s %-8s %-8s %-14s %-14s %-14s %-8s\n",
		"companies", "nodes", "edges", "metalog", "vadalog", "native", "pairs")
	for _, n := range scales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, seed))
		g := topo.Shareholding()
		own := finance.BuildOwnership(topo)

		// MetaLog end to end (translation + load + reason + flush).
		mlStart := time.Now()
		prog, err := metalog.Parse(finance.ControlEntityProgram())
		if err != nil {
			fatal(err)
		}
		mlRes, err := metalog.Reason(prog, g, engineOpts(workers))
		if err != nil {
			fatal(err)
		}
		mlDur := time.Since(mlStart)
		_ = mlRes

		// Plain Vadalog over extracted relations (Example 4.2 layout).
		db := vadalog.NewDatabase()
		for _, e := range own.Entities {
			db.MustAddFact("company", value.IntV(int64(e)))
		}
		for owner, stakes := range own.Out {
			for _, st := range stakes {
				db.MustAddFact("owns", value.IntV(int64(owner)), value.IntV(int64(st.Company)), value.FloatV(st.Pct))
			}
		}
		vStart := time.Now()
		vprog := vadalog.MustParse(finance.ControlVadalog())
		if _, err := vadalog.RunInPlace(vprog, db, engineOpts(workers)); err != nil {
			fatal(err)
		}
		vDur := time.Since(vStart)

		nStart := time.Now()
		pairs := finance.NativeControl(own, false)
		nDur := time.Since(nStart)

		fmt.Printf("%-10d %-8d %-8d %-14v %-14v %-14v %-8d\n",
			n, g.NumNodes(), g.NumEdges(),
			mlDur.Round(time.Microsecond), vDur.Round(time.Microsecond), nDur.Round(time.Microsecond), len(pairs))
	}
}

// runPhases is experiment E14: the Algorithm 2 load / reason / flush
// breakdown of Section 6 (the paper reports ~160 min reasoning vs ~15 min
// loading+flushing on the production KG).
func runPhases(scales []int, seed int64, workers int) {
	fmt.Println("E14 — Algorithm 2 phase breakdown (Section 6): reasoning should dominate load+flush")
	fmt.Printf("%-10s %-10s %-14s %-14s %-14s %-10s\n", "companies", "entities", "load", "reason", "flush", "reason/IO")
	sigma := metalog.MustParse(`
		(p: Person) [: HOLDS; right: "ownership", percentage: hp] (s: Share; percentage: sp)
			[: BELONGS_TO] (y: Business),
			q = hp * sp, w = sum(q)
			-> (p) [o: OWNS; percentage: w] (y).
		(x: Business) -> (x) [c: CONTROLS] (x).
		(x: Business) [: CONTROLS] (z: Business) [: OWNS; percentage: w] (y: Business),
			v = sum(w, <z>), v > 0.5
			-> (x) [c: CONTROLS] (y).
	`)
	for _, n := range scales {
		// Corporate pyramids (deep majority chains) are what make the
		// production control component expensive; without them the derived
		// relation is small and loading dominates.
		cfg := fingraph.DefaultConfig(n, seed)
		cfg.PyramidFraction = 0.4
		cfg.PyramidDepth = 25
		topo := fingraph.GenerateTopology(cfg)
		data := topo.CompanyKG()
		d, err := instance.NewDictionary(supermodel.CompanyKG())
		if err != nil {
			fatal(err)
		}
		res, err := instance.Materialize(d, instance.PGSource{Data: data}, sigma, 1, engineOpts(workers))
		if err != nil {
			fatal(err)
		}
		io := res.LoadDuration + res.FlushDuration
		ratio := float64(res.ReasonDuration) / float64(io)
		fmt.Printf("%-10d %-10d %-14v %-14v %-14v %-10.2f\n",
			n, len(res.Loaded.Entities),
			res.LoadDuration.Round(time.Microsecond),
			res.ReasonDuration.Round(time.Microsecond),
			res.FlushDuration.Round(time.Microsecond), ratio)
	}
}

// runFigures regenerates Figures 6 and 8 via SSST and prints summaries.
func runFigures() {
	fmt.Println("E6/E8 — SSST translations of the Figure 4 Company KG")
	schema := supermodel.CompanyKG()

	for _, target := range []string{"pg", "relational"} {
		dict := supermodel.NewDictionary()
		if err := supermodel.ToDictionary(schema, dict); err != nil {
			fatal(err)
		}
		m, err := models.SelectMapping(schema.OID, schema.OID+1, schema.OID+2, target, "")
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		res, err := models.Translate(dict, m, engineOpts(0))
		if err != nil {
			fatal(err)
		}
		dur := time.Since(start)
		switch target {
		case "pg":
			view, err := models.ReadPGSchema(res.Dict, m.TargetOID)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\nFigure 6 (PG model, %s strategy, %v): %d node types, %d relationship types\n",
				m.Strategy, dur.Round(time.Millisecond), len(view.Nodes), len(view.Rels))
			for _, nv := range view.Nodes {
				fmt.Printf("  (:%s) %d properties\n", strings.Join(nv.Labels, ":"), len(nv.Properties))
			}
		case "relational":
			view, err := models.ReadRelationalSchema(res.Dict, m.TargetOID)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\nFigure 8 (relational model, %s strategy, %v): %d relations\n",
				m.Strategy, dur.Round(time.Millisecond), len(view.Relations))
			for _, rv := range view.Relations {
				fmt.Printf("  %s(%d fields, %d FKs)\n", rv.Name, len(rv.Fields), len(rv.ForeignKeys))
			}
		}
	}
}

// runAblation covers A1-A3: monotonic vs naive evaluation for control, and
// MetaLog vs native schema translation under both PG strategies.
func runAblation(scales []int, seed int64, workers int) {
	fmt.Println("A2 — semi-naive vs naive fixpoint (control program, Example 4.2 layout)")
	fmt.Printf("%-10s %-14s %-14s %-8s\n", "companies", "semi-naive", "naive", "speedup")
	for _, n := range scales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, seed))
		own := finance.BuildOwnership(topo)
		db := vadalog.NewDatabase()
		for _, e := range own.Entities {
			db.MustAddFact("company", value.IntV(int64(e)))
		}
		for owner, stakes := range own.Out {
			for _, st := range stakes {
				db.MustAddFact("owns", value.IntV(int64(owner)), value.IntV(int64(st.Company)), value.FloatV(st.Pct))
			}
		}
		prog := vadalog.MustParse(finance.ControlVadalog())
		t0 := time.Now()
		if _, err := vadalog.Run(prog, db, engineOpts(0)); err != nil {
			fatal(err)
		}
		semi := time.Since(t0)
		t1 := time.Now()
		naiveOpts := engineOpts(0)
		naiveOpts.Naive = true
		// The naive pass is the last user of db: hand it over instead of
		// cloning (the semi-naive pass above must keep the defensive copy).
		naiveOpts.OwnInput = true
		if _, err := vadalog.Run(prog, db, naiveOpts); err != nil {
			fatal(err)
		}
		naive := time.Since(t1)
		fmt.Printf("%-10d %-14v %-14v %-8.2fx\n", n,
			semi.Round(time.Microsecond), naive.Round(time.Microsecond),
			float64(naive)/float64(semi))
	}

	fmt.Println("\nA3 — SSST strategies and MetaLog vs native translation (Figure 4 schema)")
	fmt.Printf("%-28s %-14s %-14s\n", "mapping", "metalog", "native")
	schema := supermodel.CompanyKG()
	for _, cfg := range []struct{ model, strategy string }{
		{"pg", "multi-label"}, {"pg", "child-edges"}, {"relational", "table-per-class"},
	} {
		dict := supermodel.NewDictionary()
		if err := supermodel.ToDictionary(schema, dict); err != nil {
			fatal(err)
		}
		m, err := models.SelectMapping(schema.OID, schema.OID+1, schema.OID+2, cfg.model, cfg.strategy)
		if err != nil {
			fatal(err)
		}
		t0 := time.Now()
		if _, err := models.Translate(dict, m, engineOpts(workers)); err != nil {
			fatal(err)
		}
		mlDur := time.Since(t0)
		t1 := time.Now()
		if cfg.model == "pg" {
			if _, err := models.NativeToPG(schema, cfg.strategy); err != nil {
				fatal(err)
			}
		} else {
			models.NativeToRelational(schema)
		}
		natDur := time.Since(t1)
		fmt.Printf("%-28s %-14v %-14v\n", cfg.model+"/"+cfg.strategy,
			mlDur.Round(time.Microsecond), natDur.Round(time.Microsecond))
	}
}

// runCloseLinks sweeps the close-links computation (integrated ownership).
func runCloseLinks(scales []int, seed int64, _ int) {
	fmt.Println("Close links over integrated ownership (ECB threshold 20%)")
	fmt.Printf("%-10s %-10s %-14s %-8s\n", "companies", "entities", "time", "links")
	for _, n := range scales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, seed))
		own := finance.BuildOwnership(topo)
		t0 := time.Now()
		links := finance.CloseLinks(own, own.Entities, 0.2, 1e-9, 100)
		dur := time.Since(t0)
		fmt.Printf("%-10d %-10d %-14v %-8d\n", n, len(own.Entities), dur.Round(time.Microsecond), len(links))
	}
}

// runGroups sweeps company-group derivation from the control relation.
func runGroups(scales []int, seed int64, _ int) {
	fmt.Println("Company groups (ultimate controllers over the control relation)")
	fmt.Printf("%-10s %-8s %-8s %-10s\n", "companies", "pairs", "groups", "largest")
	for _, n := range scales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, seed))
		own := finance.BuildOwnership(topo)
		pairs := finance.NativeControl(own, false)
		groups := finance.Groups(pairs)
		largest := 0
		for _, g := range groups {
			if len(g.Controlled) > largest {
				largest = len(g.Controlled)
			}
		}
		fmt.Printf("%-10d %-8d %-8d %-10d\n", n, len(pairs), len(groups), largest)
	}
}

// runScaling is experiment E16: worker-count scaling of the parallel
// fixpoint on a transitive-closure workload (the descendant relation over
// ownership edges). Unlike the control programs, it has no monotonic
// aggregate, so the sharded engine engages; the derived relations are
// checked to be identical across worker counts.
func runScaling(scales []int, seed int64, workers int) {
	fmt.Println("E16 — parallel fixpoint scaling (ownership reachability, no monotonic aggregates)")
	fmt.Printf("%-10s %-8s %-10s %-14s %-14s %-8s\n",
		"companies", "edges", "reachable", "workers=1", fmt.Sprintf("workers=%d", workers), "speedup")
	prog := vadalog.MustParse(`
		reach(X,Y) :- owns(X,Y,P).
		reach(X,Z) :- reach(X,Y), owns(Y,Z,P).
	`)
	for _, n := range scales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, seed))
		own := finance.BuildOwnership(topo)
		db := vadalog.NewDatabase()
		edges := 0
		for owner, stakes := range own.Out {
			for _, st := range stakes {
				db.MustAddFact("owns", value.IntV(int64(owner)), value.IntV(int64(st.Company)), value.FloatV(st.Pct))
				edges++
			}
		}
		t0 := time.Now()
		seq, err := vadalog.Run(prog, db, engineOpts(1))
		if err != nil {
			fatal(err)
		}
		seqDur := time.Since(t0)
		t1 := time.Now()
		// Last user of db: transfer ownership, skipping the input clone.
		parOpts := engineOpts(workers)
		parOpts.OwnInput = true
		par, err := vadalog.Run(prog, db, parOpts)
		if err != nil {
			fatal(err)
		}
		parDur := time.Since(t1)
		if seq.DB.Count("reach") != par.DB.Count("reach") {
			fatal(fmt.Errorf("worker counts disagree: %d vs %d reach facts",
				seq.DB.Count("reach"), par.DB.Count("reach")))
		}
		fmt.Printf("%-10d %-8d %-10d %-14v %-14v %-8.2fx\n",
			n, edges, par.DB.Count("reach"),
			seqDur.Round(time.Microsecond), parDur.Round(time.Microsecond),
			float64(seqDur)/float64(parDur))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kgbench:", err)
	os.Exit(1)
}
