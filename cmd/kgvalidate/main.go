// Command kgvalidate enforces a translated schema against a property-graph
// data instance — the "ad-hoc methodology" for schema validation on
// schema-less graph systems that Section 5 of the paper refers to.
//
// Usage:
//
//	kgvalidate -in data.json -companykg
//	kgvalidate -in data.json -schema design.gsl [-strategy child-edges]
//
// Exit status 1 when violations are found.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gsl"
	"repro/internal/models"
	"repro/internal/pg"
	"repro/internal/supermodel"
)

func main() {
	in := flag.String("in", "", "property-graph data instance (JSON)")
	schemaFile := flag.String("schema", "", "GSL design file")
	companyKG := flag.Bool("companykg", false, "validate against the built-in Company KG design")
	strategy := flag.String("strategy", "multi-label", "PG translation strategy")
	max := flag.Int("max", 25, "maximum violations to print (0 = all)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "kgvalidate: need -in <data.json>")
		os.Exit(2)
	}
	var schema *supermodel.Schema
	switch {
	case *companyKG:
		schema = supermodel.CompanyKG()
	case *schemaFile != "":
		src, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		schema, err = gsl.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "kgvalidate: need -schema <design.gsl> or -companykg")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := pg.ReadJSON(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	view, err := models.NativeToPG(schema, *strategy)
	if err != nil {
		fatal(err)
	}
	// Validation is read-only; both passes share one frozen snapshot.
	fz := g.Freeze()
	violations := models.ValidateInstance(fz, view)
	violations = append(violations, models.ValidateModifiers(fz, schema)...)
	if len(violations) == 0 {
		fmt.Printf("kgvalidate: %d nodes, %d edges — instance conforms to schema %s\n",
			fz.NumNodes(), fz.NumEdges(), schema.Name)
		return
	}
	fmt.Printf("kgvalidate: %d violations\n", len(violations))
	for i, v := range violations {
		if *max > 0 && i >= *max {
			fmt.Printf("  ... and %d more\n", len(violations)-i)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kgvalidate:", err)
	os.Exit(1)
}
