// Command kgse is the Knowledge Graph Schema Environment (Section 2.2): it
// parses, validates and renders GSL designs, and stores them into graph
// dictionaries.
//
// Usage:
//
//	kgse -in design.gsl -render text|dot|gsl|rdfs|csv
//	kgse -render metamodel            # the Figure 2 dictionary
//	kgse -companykg -render dot       # the built-in Figure 4 design
//	kgse -in design.gsl -dict dictionary.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gsl"
	"repro/internal/models"
	"repro/internal/pg"
	"repro/internal/supermodel"
)

func main() {
	in := flag.String("in", "", "GSL design file to load")
	render := flag.String("render", "text", "output: text, dot, gsl, rdfs, csv, metamodel, supermodel")
	companyKG := flag.Bool("companykg", false, "use the built-in Company KG design of Figure 4")
	dict := flag.String("dict", "", "store the design into this graph dictionary (JSON)")
	list := flag.String("list", "", "list the schemas stored in this graph dictionary (JSON) and exit")
	flag.Parse()

	if *list != "" {
		f, err := os.Open(*list)
		if err != nil {
			fatal(err)
		}
		g, err := pg.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		for _, info := range supermodel.ListSchemas(g) {
			fmt.Printf("schemaOID=%d: %d nodes, %d edges, %d generalizations\n",
				info.OID, info.Nodes, info.Edges, info.Generalizations)
		}
		return
	}

	switch *render {
	case "metamodel":
		g := supermodel.MetaModelDictionary()
		if err := g.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	case "supermodel":
		g := supermodel.SuperModelDictionary()
		if err := g.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	var schema *supermodel.Schema
	switch {
	case *companyKG:
		schema = supermodel.CompanyKG()
	case *in != "":
		src, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		schema, err = gsl.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "kgse: need -in <design.gsl> or -companykg")
		flag.Usage()
		os.Exit(2)
	}
	if err := schema.Validate(); err != nil {
		fatal(err)
	}

	if *dict != "" {
		g := supermodel.NewDictionary()
		if err := supermodel.ToDictionary(schema, g); err != nil {
			fatal(err)
		}
		f, err := os.Create(*dict)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := g.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kgse: stored %s into %s\n", schema.Stats(), *dict)
	}

	switch *render {
	case "text":
		fmt.Print(gsl.RenderText(schema))
	case "dot":
		fmt.Print(gsl.RenderDOT(schema))
	case "gsl":
		fmt.Print(gsl.Serialize(schema))
	case "rdfs":
		fmt.Print(models.EmitRDFS(schema))
	case "csv":
		fmt.Print(models.EmitCSVLayout(schema))
	default:
		fatal(fmt.Errorf("unknown -render %q", *render))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kgse:", err)
	os.Exit(1)
}
