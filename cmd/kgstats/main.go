// Command kgstats computes the Section 2.1 graph statistics for a property
// graph: component structure, degree statistics, clustering coefficient and
// the power-law fit.
//
// Usage:
//
//	kgstats -in graph.json
//	kggen -companies 10000 | kgstats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/graphstats"
	"repro/internal/pg"
)

func main() {
	in := flag.String("in", "", "property graph JSON (default: stdin)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	g, err := pg.ReadJSON(r)
	if err != nil {
		fatal(err)
	}
	// The statistics tasks fan out across workers; a frozen snapshot gives
	// them CSR adjacency and lock-free concurrent reads.
	fmt.Print(graphstats.Compute(g.Freeze()).Table())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kgstats:", err)
	os.Exit(1)
}
