// Command kggen generates synthetic financial knowledge graphs (the
// Section 2.1 substrate substitute). It can emit either the full Company KG
// instance conforming to the Figure 4 schema, or the simple shareholding
// projection used for graph statistics and control reasoning.
//
// Usage:
//
//	kggen -companies 10000 -seed 42 -mode shareholding -out graph.json
//	kggen -companies 1000 -mode kg -out kg.json
//	kggen -companies 1000 -mode shareholding -csv-prefix out/   # nodes/edges CSV
//	kggen -companies 1000 -snap kg.snap   # binary snapshot for kgserve -snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fingraph"
	"repro/internal/pg"
	"repro/internal/snapfile"
)

func main() {
	companies := flag.Int("companies", 1000, "number of companies")
	seed := flag.Int64("seed", 42, "random seed")
	mode := flag.String("mode", "shareholding", "shareholding (simple OWNS graph) or kg (full Figure 4 instance)")
	out := flag.String("out", "", "write the graph as JSON to this file (default stdout)")
	snap := flag.String("snap", "", "write the frozen graph as a binary snapshot to this file (see internal/snapfile)")
	csvPrefix := flag.String("csv-prefix", "", "also write <prefix>nodes.csv and <prefix>edges.csv")
	flag.Parse()

	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(*companies, *seed))
	var g *pg.Graph
	switch *mode {
	case "shareholding":
		g = topo.Shareholding()
	case "kg":
		g = topo.CompanyKG()
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
	fmt.Fprintf(os.Stderr, "kggen: %d nodes, %d edges (%d companies, %d persons, %d stakes)\n",
		g.NumNodes(), g.NumEdges(), topo.Companies, topo.Persons, len(topo.Stakes))

	if *snap != "" {
		info := snapfile.BuildInfo{
			Tool:        "kggen",
			Source:      "fingraph/" + *mode,
			CreatedUnix: time.Now().Unix(),
			Params: map[string]string{
				"companies": fmt.Sprint(*companies),
				"seed":      fmt.Sprint(*seed),
				"mode":      *mode,
			},
		}
		size, err := snapfile.WriteFile(*snap, g.Freeze(), info)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kggen: wrote snapshot %s (%d bytes)\n", *snap, size)
	}

	// JSON goes to stdout by default, but not when only a snapshot was
	// requested.
	if *out != "" || *snap == "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := g.WriteJSON(w); err != nil {
			fatal(err)
		}
	}

	if *csvPrefix != "" {
		if dir := filepath.Dir(*csvPrefix + "x"); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		nf, err := os.Create(*csvPrefix + "nodes.csv")
		if err != nil {
			fatal(err)
		}
		defer nf.Close()
		if err := g.WriteNodeCSV(nf); err != nil {
			fatal(err)
		}
		ef, err := os.Create(*csvPrefix + "edges.csv")
		if err != nil {
			fatal(err)
		}
		defer ef.Close()
		if err := g.WriteEdgeCSV(ef); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kggen:", err)
	os.Exit(1)
}
