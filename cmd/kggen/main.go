// Command kggen generates synthetic financial knowledge graphs (the
// Section 2.1 substrate substitute). It can emit either the full Company KG
// instance conforming to the Figure 4 schema, or the simple shareholding
// projection used for graph statistics and control reasoning.
//
// Usage:
//
//	kggen -companies 10000 -seed 42 -mode shareholding -out graph.json
//	kggen -companies 1000 -mode kg -out kg.json
//	kggen -companies 1000 -mode shareholding -csv-prefix out/   # nodes/edges CSV
//	kggen -companies 1000 -snap kg.snap   # binary snapshot for kgserve -snapshot
//	kggen -stream -companies 30000000 -workers 8 -snap big.snap   # 100M-edge scale
//
// -stream generates the shareholding graph as a batch stream through the
// parallel bulk loader, straight into a frozen snapshot — the mutable graph
// is never built, so memory stays bounded by the columnar result instead of
// the per-construct maps. Stream output is byte-identical to the
// materialized pipeline for the same seed and size.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fingraph"
	"repro/internal/pg"
	"repro/internal/snapfile"
)

func main() {
	companies := flag.Int("companies", 1000, "number of companies")
	seed := flag.Int64("seed", 42, "random seed")
	mode := flag.String("mode", "shareholding", "shareholding (simple OWNS graph) or kg (full Figure 4 instance)")
	out := flag.String("out", "", "write the graph as JSON to this file (default stdout)")
	snap := flag.String("snap", "", "write the frozen graph as a binary snapshot to this file (see internal/snapfile)")
	csvPrefix := flag.String("csv-prefix", "", "also write <prefix>nodes.csv and <prefix>edges.csv")
	stream := flag.Bool("stream", false, "stream generation through the bulk loader directly into -snap (shareholding mode only; never materializes the mutable graph)")
	workers := flag.Int("workers", 0, "bulk-loader worker count for -stream (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 0, "rows per streamed batch (0 = 65536)")
	codeFormat := flag.Int("code-format", fingraph.FormatLegacy, "fiscal-code format version: 1 = 8-digit codes, 2 = 10-digit (required past 1e8 entities)")
	flag.Parse()

	if *stream {
		runStream(*companies, *seed, *mode, *snap, *workers, *batch, *codeFormat)
		return
	}
	cfg := fingraph.DefaultConfig(*companies, *seed)
	cfg.FormatVersion = *codeFormat
	topo := fingraph.GenerateTopology(cfg)
	var g *pg.Graph
	switch *mode {
	case "shareholding":
		g = topo.Shareholding()
	case "kg":
		g = topo.CompanyKG()
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
	fmt.Fprintf(os.Stderr, "kggen: %d nodes, %d edges (%d companies, %d persons, %d stakes)\n",
		g.NumNodes(), g.NumEdges(), topo.Companies, topo.Persons, len(topo.Stakes))

	if *snap != "" {
		info := snapfile.BuildInfo{
			Tool:        "kggen",
			Source:      "fingraph/" + *mode,
			CreatedUnix: time.Now().Unix(),
			Params: map[string]string{
				"companies": fmt.Sprint(*companies),
				"seed":      fmt.Sprint(*seed),
				"mode":      *mode,
			},
		}
		size, err := snapfile.WriteFile(*snap, g.Freeze(), info)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kggen: wrote snapshot %s (%d bytes)\n", *snap, size)
	}

	// JSON goes to stdout by default, but not when only a snapshot was
	// requested.
	if *out != "" || *snap == "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := g.WriteJSON(w); err != nil {
			fatal(err)
		}
	}

	if *csvPrefix != "" {
		if dir := filepath.Dir(*csvPrefix + "x"); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		nf, err := os.Create(*csvPrefix + "nodes.csv")
		if err != nil {
			fatal(err)
		}
		defer nf.Close()
		if err := g.WriteNodeCSV(nf); err != nil {
			fatal(err)
		}
		ef, err := os.Create(*csvPrefix + "edges.csv")
		if err != nil {
			fatal(err)
		}
		defer ef.Close()
		if err := g.WriteEdgeCSV(ef); err != nil {
			fatal(err)
		}
	}
}

// runStream is the kggen -stream pipeline: two-pass generation → sharded
// bulk load → frozen snapshot → snapfile, with the mutable graph never in
// memory.
func runStream(companies int, seed int64, mode, snap string, workers, batch, codeFormat int) {
	if mode != "shareholding" {
		fatal(fmt.Errorf("-stream supports -mode shareholding only (got %q)", mode))
	}
	if snap == "" {
		fatal(fmt.Errorf("-stream requires -snap: the streamed graph exists only as a frozen snapshot"))
	}
	cfg := fingraph.DefaultConfig(companies, seed)
	cfg.FormatVersion = codeFormat

	start := time.Now()
	ld := pg.NewBulkLoader(workers)
	stats, err := fingraph.StreamTopology(cfg, fingraph.StreamOptions{BatchSize: batch}, ld)
	if err != nil {
		fatal(err)
	}
	frozen, err := ld.Finish()
	if err != nil {
		fatal(err)
	}
	loadDur := time.Since(start)
	fmt.Fprintf(os.Stderr, "kggen: streamed %d nodes, %d edges (%d companies, %d persons) in %s (%.0f edges/sec)\n",
		frozen.NumNodes(), frozen.NumEdges(), stats.Companies, stats.Persons,
		loadDur.Round(time.Millisecond), float64(stats.Edges)/loadDur.Seconds())

	info := snapfile.BuildInfo{
		Tool:        "kggen",
		Source:      "fingraph/stream",
		CreatedUnix: time.Now().Unix(),
		Params: map[string]string{
			"companies":  fmt.Sprint(companies),
			"seed":       fmt.Sprint(seed),
			"mode":       mode,
			"stream":     "true",
			"codeFormat": fmt.Sprint(codeFormat),
		},
	}
	size, err := snapfile.WriteFile(snap, frozen, info)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "kggen: wrote snapshot %s (%d bytes)\n", snap, size)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kggen:", err)
	os.Exit(1)
}
