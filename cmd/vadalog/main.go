// Command vadalog runs Vadalog programs: the standalone face of the
// reasoning engine the framework embeds. Programs declare their inputs with
// @input("pred", "csv", "file.csv") annotations and mark results with
// @output; results print to stdout or export as CSV.
//
// Usage:
//
//	vadalog -in control.vlog -data ./data
//	vadalog -in control.vlog -data ./data -export ./out
//	echo 'p(1). q(X) :- p(X). @output("q").' | vadalog
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/vadalog"
)

func main() {
	in := flag.String("in", "", "Vadalog program (default: stdin)")
	data := flag.String("data", ".", "base directory for @input csv paths")
	export := flag.String("export", "", "export @output relations as CSV into this directory")
	analyze := flag.Bool("analyze", false, "print static analysis before running")
	maxFacts := flag.Int("max-facts", 0, "derived-fact safety valve (0 = unlimited)")
	explain := flag.Bool("explain", false, "record provenance and print a proof tree for each @output fact (best with small results)")
	explainDepth := flag.Int("explain-depth", 0, "proof tree depth cap (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the run (0 = none); an exceeded bound exits with the partial stats reported")
	traceFile := flag.String("trace", "", "write the JSON run trace (per-rule counters, round deltas) to this file")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	ff := cli.RegisterFaultFlags(flag.CommandLine, true)
	flag.Parse()

	onFault, done, err := ff.Apply(os.Stdout)
	if err != nil {
		fatal(err)
	}
	if done {
		return
	}
	if *pprofAddr != "" {
		if err := obs.ServeDebug(*pprofAddr); err != nil {
			fatal(err)
		}
	}

	var src []byte
	if *in != "" {
		src, err = os.ReadFile(*in)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	prog, err := vadalog.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	if *analyze {
		an, err := vadalog.Analyze(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vadalog: %d rules, %d strata, warded=%v, piecewise-linear=%v\n",
			len(prog.Rules), len(an.Strata), an.Warded, an.PiecewiseLinear)
	}

	opts := vadalog.Options{MaxFacts: *maxFacts, Provenance: *explain, Timeout: *timeout, OnFault: onFault}
	var trace *obs.Trace
	if *traceFile != "" {
		trace = obs.NewTrace()
		opts.Trace = trace
	}
	bindings := vadalog.Bindings{BaseDir: *data, Retry: ff.RetryPolicy()}
	res, outputs, err := vadalog.RunWithBindings(prog, bindings, opts)
	if trace != nil {
		// The trace captures whatever ran, including interrupted runs.
		if werr := writeTrace(trace, *traceFile); werr != nil {
			fmt.Fprintln(os.Stderr, "vadalog:", werr)
		}
	}
	salvaged := false
	if err != nil {
		// A best-effort *PartialError still carries outputs: the completed
		// strata are a sound (if incomplete) prefix, so export them and exit
		// nonzero. Interruptions report the partial stats and stop.
		var pe *vadalog.PartialError
		if errors.As(err, &pe) && res != nil {
			fmt.Fprintf(os.Stderr, "vadalog: %v — exporting the salvaged prefix\n", err)
			salvaged = true
		} else if errors.Is(err, vadalog.ErrTimeout) || errors.Is(err, vadalog.ErrCanceled) {
			fmt.Fprintf(os.Stderr, "vadalog: %v (partial run recorded)\n", err)
			os.Exit(1)
		} else {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "vadalog: derived %d facts in %v (%d fixpoint rounds)\n",
		res.Stats.FactsDerived, res.Stats.Duration, res.Stats.Rounds)

	if *export != "" {
		if err := os.MkdirAll(*export, 0o755); err != nil {
			fatal(err)
		}
		if err := vadalog.ExportOutputs(prog, res.DB, *export); err != nil {
			fatal(err)
		}
	} else {
		for _, pred := range prog.Outputs() {
			for _, f := range outputs[pred] {
				if *explain {
					proof, err := res.Explain(pred, f, *explainDepth)
					if err != nil {
						fatal(err)
					}
					fmt.Print(proof.String())
					continue
				}
				fmt.Printf("%s%s\n", pred, f)
			}
		}
	}
	if salvaged {
		os.Exit(1)
	}
}

func writeTrace(trace *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteJSONTimings(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vadalog:", err)
	os.Exit(1)
}
