// Command mtv is the MetaLog-to-Vadalog translator (Section 2.2): it
// compiles MetaLog programs into the Vadalog programs the reasoner executes,
// printing them in the style of Example 4.4.
//
// Usage:
//
//	mtv -in program.metalog [-graph instance.json] [-analyze]
//	echo '(x: B) -> (x) [c: C] (x).' | mtv -analyze
//
// Without -graph, the catalog (label → property layout) is inferred from
// the program itself; with it, from the graph instance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/vadalog"
)

func main() {
	in := flag.String("in", "", "MetaLog program (default: stdin)")
	graph := flag.String("graph", "", "property-graph instance (JSON) to derive the catalog from")
	analyze := flag.Bool("analyze", false, "print the static analysis of the translated program")
	flag.Parse()

	var src []byte
	var err error
	if *in != "" {
		src, err = os.ReadFile(*in)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	prog, err := metalog.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	cat := metalog.NewCatalog()
	if *graph != "" {
		f, err := os.Open(*graph)
		if err != nil {
			fatal(err)
		}
		g, err := pg.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		cat = metalog.FromGraph(g)
	}
	tr, err := metalog.Translate(prog, cat)
	if err != nil {
		fatal(err)
	}
	fmt.Print(tr.Program.String())

	if *analyze {
		an, err := vadalog.Analyze(tr.Program)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "\n%% analysis: strata=%d warded=%v piecewise-linear=%v\n",
			len(an.Strata), an.Warded, an.PiecewiseLinear)
		if len(an.AffectedPositions) > 0 {
			fmt.Fprintf(os.Stderr, "%% affected positions: %v\n", an.AffectedPositions)
		}
		for _, v := range an.Violations {
			fmt.Fprintf(os.Stderr, "%% wardedness violation: %s\n", v)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtv:", err)
	os.Exit(1)
}
