// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark results on stdout, one object per benchmark line with
// the run count, ns/op, and (when -benchmem is on) B/op and allocs/op.
// make bench-storage uses it to capture the storage microbenchmarks into
// BENCH_storage.json, the machine-readable baseline committed with the repo.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra collects custom b.ReportMetric units (e.g. the p50-ns/op and
	// p99-ns/op latency percentiles of make bench-wal), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// stripProcs removes the trailing "-<digits>" GOMAXPROCS suffix go test
// appends to benchmark names (BenchmarkLoadStream1M-8 → BenchmarkLoadStream1M)
// so gate tests can look results up by stable name across machines.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func main() {
	noProcs := flag.Bool("strip-procs", false, "strip the trailing -<GOMAXPROCS> suffix from benchmark names")
	flag.Parse()
	var out []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if *noProcs {
			name = stripProcs(name)
		}
		r := result{Name: name, Runs: runs}
		// The remainder is value/unit pairs: 12345 ns/op  678 B/op  9 allocs/op.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[fields[i+1]] = v
			}
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
