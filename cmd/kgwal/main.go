// Command kgwal inspects, verifies and dumps write-ahead log directories
// (the internal/wal format): the durability log kgserve appends every
// acknowledged /mutate batch to before a crash can lose it.
//
// Usage:
//
//	kgwal -info wal/      # checkpoint + per-segment summary as JSON
//	kgwal -verify wal/    # exit 0 iff the log replays cleanly
//	kgwal -dump wal/      # print every replayable batch, decoded
//
// -info reports without judging: segment chain, generations, sequence
// bounds, torn tails and any corruption findings. -verify turns the findings
// into an exit code — 0 for a healthy log (a torn tail in the highest
// segment is expected crash damage and only warned about), 1 when sealed
// data is damaged or acknowledged batches are missing. -dump decodes each
// post-checkpoint record's payload through the /mutate wire codec and prints
// one line per batch, for replaying or auditing what the log holds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/overlay"
	"repro/internal/wal"
)

func main() {
	info := flag.String("info", "", "print a WAL directory's checkpoint and segment summary as JSON")
	verify := flag.String("verify", "", "validate a WAL directory; exit 0 iff it replays cleanly")
	dump := flag.String("dump", "", "print every replayable batch of a WAL directory, decoded")
	flag.Parse()

	switch {
	case *info != "":
		if err := printInfo(*info); err != nil {
			fatal(err)
		}
	case *verify != "":
		if err := verifyDir(*verify); err != nil {
			fatal(err)
		}
	case *dump != "":
		if err := dumpDir(*dump); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "kgwal: need -info <dir>, -verify <dir>, or -dump <dir>")
		os.Exit(2)
	}
}

// printInfo reports the directory's state as JSON on stdout, corruption
// findings included — it never exits non-zero for a damaged log, only for a
// directory it cannot read at all.
func printInfo(dir string) error {
	report, err := wal.Inspect(dir)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// verifyDir is the exit-code view of Inspect: problems (sealed-segment
// damage, sequence gaps, a malformed checkpoint) fail the check; a torn tail
// in the highest segment is expected crash damage and only warned about.
func verifyDir(dir string) error {
	report, err := wal.Inspect(dir)
	if err != nil {
		return err
	}
	if len(report.Problems) > 0 {
		for _, p := range report.Problems {
			fmt.Fprintf(os.Stderr, "kgwal: %s: %s\n", dir, p)
		}
		os.Exit(1)
	}
	if report.TornBytes > 0 {
		fmt.Fprintf(os.Stderr, "kgwal: warning: %d torn tail byte(s) — the next recovery will cut them\n",
			report.TornBytes)
	}
	fmt.Fprintf(os.Stderr, "kgwal: %s OK (%d replayable batch(es), generation %d)\n",
		dir, report.Records, generation(report))
	return nil
}

func generation(report *wal.Info) uint64 {
	gen := uint64(1)
	if report.Checkpoint != nil {
		gen = report.Checkpoint.Generation
	}
	for _, s := range report.Segments {
		if !s.Stale && s.Generation > gen {
			gen = s.Generation
		}
	}
	return gen
}

// dumpDir prints one line per replayable batch: the sequence number, the op
// count and the decoded ops as canonical wire JSON. Payloads that fail to
// decode are reported inline (the log stores them verbatim; the codec rules
// on them only here and at replay).
func dumpDir(dir string) error {
	// Replay (not Open) shows exactly what a recovery would replay — stale
	// generations filtered, torn tail excluded — without repairing the
	// directory: dumping is read-only.
	rec, err := wal.Replay(dir)
	if err != nil {
		return err
	}
	if cp := rec.Checkpoint; cp != nil {
		fmt.Printf("checkpoint: generation %d, seq %d, base %q\n", cp.Generation, cp.Seq, cp.Base)
	}
	for _, r := range rec.Records {
		ops, err := overlay.DecodeOps(r.Payload)
		if err != nil {
			fmt.Printf("seq %d: undecodable payload (%d bytes): %v\n", r.Seq, len(r.Payload), err)
			continue
		}
		fmt.Printf("seq %d: %d op(s) %s\n", r.Seq, len(ops), r.Payload)
	}
	fmt.Fprintf(os.Stderr, "kgwal: %s: %d batch(es) dumped\n", dir, len(rec.Records))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kgwal:", err)
	os.Exit(1)
}
