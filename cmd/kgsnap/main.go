// Command kgsnap builds, inspects and verifies binary graph snapshots (the
// internal/snapfile format): the offline encode step that turns a
// property-graph JSON dictionary into the mmap-ready file kgserve
// cold-starts from.
//
// Usage:
//
//	kgsnap -in kg.json -out kg.snap        # encode JSON → snapshot
//	kgsnap -info kg.snap                   # provenance + layout summary
//	kgsnap -verify kg.snap                 # full validation, quiet on success
//
// Encoding stamps a provenance header — tool, source path, FNV-1a source
// hash, creation time, parameters — that kgsnap -info and the kgserve
// /stats endpoint surface, so replicas can be told apart by the build they
// serve. Verification runs the complete read-side pipeline: magic, version,
// header/table/section checksums, and every structural invariant.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"repro/internal/pg"
	"repro/internal/snapfile"
)

func main() {
	in := flag.String("in", "", "property graph JSON to encode")
	out := flag.String("out", "", "snapshot file to write")
	info := flag.String("info", "", "print a snapshot file's provenance and layout as JSON")
	verify := flag.String("verify", "", "validate a snapshot file; exit 0 iff it is intact")
	flag.Parse()

	switch {
	case *info != "":
		if err := printInfo(*info); err != nil {
			fatal(err)
		}
	case *verify != "":
		snap, err := snapfile.Open(*verify)
		if err != nil {
			fatal(err)
		}
		defer snap.Close()
		fmt.Fprintf(os.Stderr, "kgsnap: %s OK (%d nodes, %d edges)\n",
			*verify, snap.Frozen.NumNodes(), snap.Frozen.NumEdges())
	case *in != "" && *out != "":
		if err := encode(*in, *out); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "kgsnap: need -in <kg.json> -out <kg.snap>, -info <kg.snap>, or -verify <kg.snap>")
		os.Exit(2)
	}
}

// encode reads a JSON dictionary, freezes it and writes the snapshot with
// a provenance header derived from the source bytes.
func encode(in, out string) error {
	src, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	g, err := pg.ReadJSON(bytes.NewReader(src))
	if err != nil {
		return err
	}
	h := fnv.New64a()
	h.Write(src) //nolint:errcheck // fnv never fails
	info := snapfile.BuildInfo{
		Tool:        "kgsnap",
		Source:      in,
		SourceHash:  fmt.Sprintf("%016x", h.Sum64()),
		CreatedUnix: time.Now().Unix(),
		Params: map[string]string{
			"nodes": fmt.Sprint(g.NumNodes()),
			"edges": fmt.Sprint(g.NumEdges()),
		},
	}
	size, err := snapfile.WriteFile(out, g.Freeze(), info)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kgsnap: %s → %s (%d bytes, %d nodes, %d edges)\n",
		in, out, size, g.NumNodes(), g.NumEdges())
	return nil
}

// printInfo opens (and thereby fully validates) a snapshot and prints its
// summary as JSON on stdout.
func printInfo(path string) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	snap, err := snapfile.Open(path)
	if err != nil {
		return err
	}
	defer snap.Close()
	summary := struct {
		Path   string             `json:"path"`
		Bytes  int64              `json:"bytes"`
		Nodes  int                `json:"nodes"`
		Edges  int                `json:"edges"`
		Mapped bool               `json:"mapped"`
		Build  snapfile.BuildInfo `json:"build"`
	}{path, st.Size(), snap.Frozen.NumNodes(), snap.Frozen.NumEdges(), snap.Mapped(), snap.Info}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(summary)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kgsnap:", err)
	os.Exit(1)
}
