// Command kgserve serves a property-graph dictionary over HTTP: MetaLog
// pattern queries, graph statistics, schema validation and hot snapshot
// reloads, all against a shared frozen snapshot (see internal/server and
// DESIGN.md §11).
//
// Usage:
//
//	kgserve -in kg.json -addr :8080
//	kgserve -snapshot kg.snap -addr :8080   # mmap cold-start (see kgsnap)
//	kgserve -in kg.json -companykg -cache 1024 -inflight 16 -debug
//
// Endpoints:
//
//	GET  /healthz   liveness, snapshot generation, graph size
//	POST /query     {"query": "<MetaLog pattern>", "limit": 0}
//	POST /explain   {"query": "<pattern>", "run": false} — the cost-based
//	                plan and estimates for the pattern under the current
//	                generation; "run": true adds the actual row count
//	GET  /stats     §2.1 topological statistics of the snapshot
//	POST /validate  {"strategy": "multi-label"} (needs -schema/-companykg)
//	GET  /schema    catalog layout (+ GSL design when configured)
//	POST /reload    {"path": "other.json"} — atomic generation swap; the
//	                path may also be a binary .snap file (sniffed by magic)
//	POST /mutate    {"ops": [...]} — apply a batched graph mutation as the
//	                next generation (live write path over an overlay)
//	POST /compact   fold the live overlay into a fresh frozen generation
//
// With -wal-dir, every applied mutation batch is logged durably before it is
// acknowledged and replayed over the base snapshot on restart (crash
// recovery; see kgwal and DESIGN.md §14). -wal-sync picks the fsync policy.
// While the log replays on startup, every endpoint — /healthz included —
// answers a typed 503 "recovering".
//
// With -debug, /debug/vars, /debug/pprof and /debug/latency are mounted.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/gsl"
	"repro/internal/server"
	"repro/internal/supermodel"
)

func main() {
	in := flag.String("in", "", "property graph JSON to serve")
	snapshotPath := flag.String("snapshot", "", "binary snapshot file to serve (see kgsnap); mmap cold-start instead of parse+freeze")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	schemaFile := flag.String("schema", "", "GSL design file enabling /validate")
	companyKG := flag.Bool("companykg", false, "use the built-in Company KG design for /validate")
	strategy := flag.String("strategy", "multi-label", "PG translation strategy for /validate")
	inflight := flag.Int("inflight", 8, "max concurrently executing compute requests (excess get 429)")
	engineWorkers := flag.Int("engine-workers", 1, "vadalog workers per admitted query")
	maxFacts := flag.Int("max-facts", 1_000_000, "per-query derived-fact valve (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request evaluation deadline (negative = none)")
	cache := flag.Int("cache", 1024, "query-result LRU entries (0 disables)")
	planner := flag.Bool("planner", true, "cost-based query planning (statistics catalog, join ordering, demand; /explain)")
	planCache := flag.Int("plan-cache", 128, "compiled-plan LRU entries (negative disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	compactEvery := flag.Duration("compact-every", 0, "fold the live write overlay into a frozen generation at this interval (0 disables)")
	compactDir := flag.String("compact-dir", "", "persist compacted generations as binary snapshots in this directory")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: log every /mutate batch before acknowledging and replay it on startup (empty disables durability)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always, interval[:duration] or off")
	debug := flag.Bool("debug", false, "mount /debug/vars, /debug/pprof and /debug/latency")
	ff := cli.RegisterFaultFlags(flag.CommandLine, true)
	flag.Parse()

	policy, done, err := ff.Apply(os.Stdout)
	if err != nil {
		fatal(err)
	}
	if done {
		return
	}
	if *in != "" && *snapshotPath != "" {
		fmt.Fprintln(os.Stderr, "kgserve: -in and -snapshot are mutually exclusive")
		os.Exit(2)
	}
	source := *in
	if *snapshotPath != "" {
		source = *snapshotPath
	}
	if source == "" {
		fmt.Fprintln(os.Stderr, "kgserve: need -in <graph.json> or -snapshot <graph.snap>")
		os.Exit(2)
	}

	var schema *supermodel.Schema
	switch {
	case *companyKG:
		schema = supermodel.CompanyKG()
	case *schemaFile != "":
		src, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		if schema, err = gsl.Parse(string(src)); err != nil {
			fatal(err)
		}
	}

	srv, err := server.New(server.Config{
		Source:        source,
		Schema:        schema,
		Strategy:      *strategy,
		MaxInflight:   *inflight,
		EngineWorkers: *engineWorkers,
		MaxFacts:      *maxFacts,
		Timeout:       *timeout,
		CacheSize:     *cache,
		PlannerOff:    !*planner,
		PlanCacheSize: *planCache,
		CompactEvery:  *compactEvery,
		CompactDir:    *compactDir,
		WALDir:        *walDir,
		WALSync:       *walSync,
		// Serve the readiness probe while the log replays: clients get a
		// typed 503 "recovering" from every endpoint until the replay lands.
		WALAsyncRecovery: *walDir != "",
		Retry:            ff.RetryPolicy(),
		OnFault:          policy,
		Debug:            *debug,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "kgserve: serving generation %d on http://%s\n", srv.Generation(), ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "kgserve: %v — draining (budget %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kgserve:", err)
	os.Exit(1)
}
