// Command kgreason materializes intensional components over a data instance
// (Algorithm 2, Section 6), reporting the load / reason / flush phase
// breakdown the paper discusses.
//
// Usage:
//
//	kgreason -in kg.json -component control,ownership -out enriched.json
//	kgreason -in kg.json -sigma my-rules.metalog
//
// Built-in components: ownership, control, family. (The close-links
// component runs over the simple shareholding projection and is exposed
// through the library and the closelinks example instead.)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/finance"
	"repro/internal/metalog"
	"repro/internal/obs"
	"repro/internal/pg"
	"repro/internal/plan"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
)

var builtins = map[string]func() string{
	"ownership": finance.OwnershipProgram,
	"control":   finance.ControlProgram,
	"family":    finance.FamilyProgram,
}

func main() {
	in := flag.String("in", "", "Company KG data instance (JSON)")
	out := flag.String("out", "", "write the enriched graph to this file (default stdout)")
	components := flag.String("component", "ownership,control", "comma-separated built-in components to run, in order")
	sigma := flag.String("sigma", "", "additional MetaLog program file to run last")
	workers := flag.Int("workers", runtime.NumCPU(), "goroutines for the reasoning fixpoint (1 = sequential)")
	explain := flag.Bool("explain", false, "print each component's cost-based plan analysis to stderr before reasoning (execution is unchanged)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound per reasoning run (0 = none)")
	traceFile := flag.String("trace", "", "write the JSON run trace (one section per component run) to this file")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	ff := cli.RegisterFaultFlags(flag.CommandLine, true)
	flag.Parse()

	onFault, done, err := ff.Apply(os.Stdout)
	if err != nil {
		fatal(err)
	}
	if done {
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "kgreason: need -in <kg.json>")
		os.Exit(2)
	}
	if *pprofAddr != "" {
		if err := obs.ServeDebug(*pprofAddr); err != nil {
			fatal(err)
		}
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	data, err := pg.ReadJSON(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	kg, err := core.NewKG(supermodel.CompanyKG())
	if err != nil {
		fatal(err)
	}
	for _, name := range strings.Split(*components, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		gen, ok := builtins[name]
		if !ok {
			fatal(fmt.Errorf("unknown component %q (have ownership, control, family)", name))
		}
		if err := kg.AddIntensional(name, gen()); err != nil {
			fatal(err)
		}
	}
	if *sigma != "" {
		src, err := os.ReadFile(*sigma)
		if err != nil {
			fatal(err)
		}
		if err := kg.AddIntensional(*sigma, string(src)); err != nil {
			fatal(err)
		}
	}

	if *explain {
		explainComponents(data, kg.IntensionalComponents(), kg.IntensionalPrograms())
	}

	opts := vadalog.Options{Workers: *workers, Timeout: *timeout, OnFault: onFault}
	var trace *obs.Trace
	if *traceFile != "" {
		trace = obs.NewTrace()
		opts.Trace = trace
	}
	src := core.PGData(data)
	if ff.Retries > 1 {
		src = core.RetryingData(src, ff.RetryPolicy())
	}
	res, err := kg.Materialize(src, 1, opts)
	if trace != nil {
		// Written before the error check so interrupted materializations
		// still leave their partial trace behind.
		if werr := writeTrace(trace, *traceFile); werr != nil {
			fmt.Fprintln(os.Stderr, "kgreason:", werr)
		}
	}
	salvaged := false
	if err != nil {
		// Under -on-fault best-effort a mid-reasoning failure still returns
		// the salvaged steps; report them and write the enriched graph, but
		// exit nonzero so scripts see the run was incomplete.
		var pe *vadalog.PartialError
		if errors.As(err, &pe) && res != nil {
			fmt.Fprintf(os.Stderr, "kgreason: %v — writing the salvaged prefix\n", err)
			salvaged = true
		} else {
			fatal(err)
		}
	}
	names := kg.IntensionalComponents()
	for i, step := range res.Steps {
		fmt.Fprintf(os.Stderr, "kgreason: %-12s load=%-12v reason=%-12v flush=%-12v derived: %d entities, %d edges, %d properties\n",
			names[i], step.LoadDuration, step.ReasonDuration, step.FlushDuration,
			len(step.Derived.NewEntities), len(step.Derived.NewEdges), step.Derived.UpdatedProps)
	}

	w := os.Stdout
	var of *os.File
	if *out != "" {
		of, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w = of
	}
	if err := data.WriteJSON(w); err != nil {
		fatal(err)
	}
	if of != nil {
		if err := of.Close(); err != nil {
			fatal(err)
		}
	}
	if salvaged {
		os.Exit(1)
	}
}

// explainComponents prints each component's cost-based plan analysis —
// per-rule join orders and cardinality estimates against the data instance's
// statistics catalog (DESIGN.md §15). Analysis only: materialization always
// executes the programs as written.
func explainComponents(data *pg.Graph, names []string, progs []*metalog.Program) {
	frozen := data.Freeze()
	cat := metalog.FromGraph(frozen)
	st := metalog.ComputePlanStats(frozen, cat)
	for i, prog := range progs {
		tr, err := metalog.Translate(prog, cat.Clone())
		if err != nil {
			fmt.Fprintf(os.Stderr, "kgreason: explain %s: %v\n", names[i], err)
			continue
		}
		_, pl, err := plan.Compile(tr.Program, st, plan.Options{Demand: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kgreason: explain %s: %v\n", names[i], err)
			continue
		}
		out, err := json.MarshalIndent(pl, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "kgreason: explain %s: %v\n", names[i], err)
			continue
		}
		fmt.Fprintf(os.Stderr, "kgreason: plan for %s:\n%s\n", names[i], out)
	}
}

func writeTrace(trace *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteJSONTimings(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kgreason:", err)
	os.Exit(1)
}
