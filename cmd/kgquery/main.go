// Command kgquery evaluates MetaLog pattern queries against a property
// graph — the UC2RPQ-style navigational querying the paper's language
// desiderata call for (Section 1).
//
// Usage:
//
//	kgquery -in kg.json '(x: Business; businessName: n) [: CONTROLS] (y: Business; businessName: m), x != y'
//	kgquery -in kg.json -limit 10 '(x: Business) ([: OWNS])+ (y: Business)'
//	kgquery -in kg.json -explain '(x: Business; businessName: "Acme") [: OWNS] (y: Business)'
//
// With -explain the cost-based plan (statistics catalog, join order, demand
// rewrites — DESIGN.md §15) is printed to stderr as JSON before the rows, and
// the query executes the planned program.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/vadalog"
)

func main() {
	in := flag.String("in", "", "property graph JSON")
	limit := flag.Int("limit", 0, "maximum rows to print (0 = all)")
	explain := flag.Bool("explain", false, "print the cost-based plan to stderr and run the planned program")
	flag.Parse()
	if *in == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "kgquery: usage: kgquery -in <graph.json> '<pattern>'")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := pg.ReadJSON(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	// Queries only read the graph: extract facts from a frozen snapshot.
	var rows []metalog.QueryRow
	if *explain {
		rows, err = explainedQuery(g.Freeze(), flag.Arg(0))
	} else {
		rows, err = metalog.Query(g.Freeze(), flag.Arg(0), vadalog.Options{})
	}
	if err != nil {
		fatal(err)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "kgquery: no matches")
		return
	}
	// Stable column order from the first row's keys union.
	colSet := map[string]bool{}
	for _, r := range rows {
		for k := range r {
			colSet[k] = true
		}
	}
	cols := make([]string, 0, len(colSet))
	for k := range colSet {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	fmt.Println(strings.Join(cols, "\t"))
	for i, r := range rows {
		if *limit > 0 && i >= *limit {
			fmt.Fprintf(os.Stderr, "kgquery: ... %d more rows\n", len(rows)-i)
			break
		}
		cells := make([]string, len(cols))
		for ci, c := range cols {
			if v, ok := r[c]; ok {
				cells[ci] = v.String()
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Fprintf(os.Stderr, "kgquery: %d rows\n", len(rows))
}

// explainedQuery plans the pattern against the graph's statistics catalog,
// prints the plan, and runs the prepared (planned) query.
func explainedQuery(frozen *pg.Frozen, pattern string) ([]metalog.QueryRow, error) {
	cat := metalog.FromGraph(frozen)
	st := metalog.ComputePlanStats(frozen, cat)
	prep, err := metalog.PrepareQuery(cat, pattern, st)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(prep.Plan(), "", "  ")
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "kgquery: plan (planned=%v, estimated rows=%.3f):\n%s\n",
		prep.Planned(), prep.EstimatedRows(), out)
	if prep.Stale() {
		// The pattern introduced layouts the graph-inferred catalog lacked;
		// evaluate written-order against a fresh extraction (the server path's
		// fallback), which materializes them as null columns.
		return metalog.QueryWithCatalogCtx(context.Background(), frozen, cat, pattern, vadalog.Options{})
	}
	db, err := metalog.ExtractFacts(frozen, cat)
	if err != nil {
		return nil, err
	}
	return prep.QueryDB(context.Background(), db, vadalog.Options{OwnInput: true})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kgquery:", err)
	os.Exit(1)
}
