// Benchmarks regenerating the paper's evaluation artifacts. Each Benchmark
// function maps to a row of the experiment index in DESIGN.md / EXPERIMENTS.md:
//
//	BenchmarkE1GraphStats          §2.1 statistics table
//	BenchmarkE6SSSTToPG            Figure 6 translation (MetaLog pipeline)
//	BenchmarkE8SSSTToRelational    Figure 8 translation (MetaLog pipeline)
//	BenchmarkE10Control*           Examples 4.1/4.2 control sweep
//	BenchmarkE11DescFrom           Example 4.3/4.4 path-pattern reasoning
//	BenchmarkE14Phases             §6 load/reason/flush breakdown
//	BenchmarkE17TraceOverhead      run-trace instrumentation cost on E11
//	BenchmarkAblation*             DESIGN.md ablations A1–A4
//
// Use cmd/kgbench for the human-readable tables.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/finance"
	"repro/internal/fingraph"
	"repro/internal/graphstats"
	"repro/internal/instance"
	"repro/internal/metalog"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
	"repro/internal/value"
)

var controlScales = []int{500, 2000, 8000}

// benchWorkerCounts returns the worker counts the parallel-evaluation
// benchmarks sweep: sequential, two workers, and all CPUs (deduplicated, so
// on a dual-core machine the sweep is just 1 and 2).
func benchWorkerCounts() []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range []int{1, 2, runtime.NumCPU()} {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkE1GraphStats computes the Section 2.1 statistics table, sweeping
// the worker count of the parallel statistics computation.
func BenchmarkE1GraphStats(b *testing.B) {
	for _, n := range controlScales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, 42))
		g := topo.Shareholding()
		for _, w := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("companies=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := graphstats.ComputeWorkers(g, w)
					if s.Nodes == 0 {
						b.Fatal("empty stats")
					}
				}
			})
		}
	}
}

// BenchmarkE6SSSTToPG runs the Figure 6 translation through the MetaLog
// mapping pipeline.
func BenchmarkE6SSSTToPG(b *testing.B) {
	schema := supermodel.CompanyKG()
	for _, strategy := range []string{"multi-label", "child-edges"} {
		b.Run(strategy, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dict := supermodel.NewDictionary()
				if err := supermodel.ToDictionary(schema, dict); err != nil {
					b.Fatal(err)
				}
				m, err := models.SelectMapping(schema.OID, 124, 125, "pg", strategy)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := models.Translate(dict, m, vadalog.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8SSSTToRelational runs the Figure 8 translation.
func BenchmarkE8SSSTToRelational(b *testing.B) {
	schema := supermodel.CompanyKG()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dict := supermodel.NewDictionary()
		if err := supermodel.ToDictionary(schema, dict); err != nil {
			b.Fatal(err)
		}
		m, err := models.SelectMapping(schema.OID, 124, 125, "relational", "")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := models.Translate(dict, m, vadalog.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10ControlMetaLog runs Example 4.1 end to end (translate, load,
// reason, flush) over the shareholding graph.
func BenchmarkE10ControlMetaLog(b *testing.B) {
	for _, n := range controlScales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, 42))
		b.Run(fmt.Sprintf("companies=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := topo.Shareholding() // fresh graph: flush mutates it
				b.StartTimer()
				prog, err := metalog.Parse(finance.ControlEntityProgram())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := metalog.Reason(prog, g, vadalog.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func controlDatabase(topo *fingraph.Topology) *vadalog.Database {
	own := finance.BuildOwnership(topo)
	db := vadalog.NewDatabase()
	for _, e := range own.Entities {
		db.MustAddFact("company", value.IntV(int64(e)))
	}
	for owner, stakes := range own.Out {
		for _, st := range stakes {
			db.MustAddFact("owns", value.IntV(int64(owner)), value.IntV(int64(st.Company)), value.FloatV(st.Pct))
		}
	}
	return db
}

// BenchmarkE10ControlVadalog runs Example 4.2 over extracted relations.
func BenchmarkE10ControlVadalog(b *testing.B) {
	for _, n := range controlScales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, 42))
		db := controlDatabase(topo)
		prog := vadalog.MustParse(finance.ControlVadalog())
		b.Run(fmt.Sprintf("companies=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vadalog.Run(prog, db, vadalog.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10ControlNative runs the native worklist baseline.
func BenchmarkE10ControlNative(b *testing.B) {
	for _, n := range controlScales {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, 42))
		own := finance.BuildOwnership(topo)
		b.Run(fmt.Sprintf("companies=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if pairs := finance.NativeControl(own, false); len(pairs) == 0 {
					b.Fatal("no control pairs")
				}
			}
		})
	}
}

// descFromSchema builds a generalization hierarchy of the given depth where
// every class has branch subclasses (branch=1 reproduces the original linear
// chain; branch>1 yields the wide trees on which the parallel fixpoint has
// enough per-round work to shard).
func descFromSchema(b *testing.B, depth, branch int) *pg.Graph {
	b.Helper()
	schema := supermodel.NewSchema("deep", 1)
	schema.MustAddNode("N0", false, supermodel.Attr("id", supermodel.String).ID())
	level := []string{"N0"}
	id := 0
	for d := 1; d <= depth; d++ {
		var next []string
		for _, parent := range level {
			children := make([]string, branch)
			for c := range children {
				id++
				children[c] = fmt.Sprintf("N%d", id)
				schema.MustAddNode(children[c], false)
			}
			schema.MustAddGeneralization("", parent, children, false, true)
			next = append(next, children...)
		}
		level = next
	}
	dict := supermodel.NewDictionary()
	if err := supermodel.ToDictionary(schema, dict); err != nil {
		b.Fatal(err)
	}
	return dict
}

// BenchmarkE11DescFrom runs the Example 4.3 path-pattern program over
// generalization hierarchies of growing size, sweeping the fixpoint worker
// count at every shape. The largest shape (a branching tree of ~5.5k
// classes) is the one whose per-round deltas are wide enough for the
// parallel engine to shard; the linear chains stay below the sharding
// threshold and measure the parallel mode's overhead instead.
func BenchmarkE11DescFrom(b *testing.B) {
	shapes := []struct {
		name          string
		depth, branch int
	}{
		{"depth=4", 4, 1},
		{"depth=16", 16, 1},
		{"depth=64", 64, 1},
		{"depth=6/branch=4", 6, 4},
	}
	prog := metalog.MustParse(`(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])+ (y: SM_Node) -> (x) [w: DESCFROM] (y).`)
	for _, sh := range shapes {
		dict := descFromSchema(b, sh.depth, sh.branch)
		for _, w := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", sh.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					work := dict.Clone()
					b.StartTimer()
					if _, err := metalog.Reason(prog, work, vadalog.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE17TraceOverhead measures the cost of run-trace instrumentation
// (per-rule counters plus per-eval timing) on the widest E11 shape, with
// and without a trace attached. The target recorded in EXPERIMENTS.md is
// under 5% overhead for the traced variant.
func BenchmarkE17TraceOverhead(b *testing.B) {
	prog := metalog.MustParse(`(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])+ (y: SM_Node) -> (x) [w: DESCFROM] (y).`)
	dict := descFromSchema(b, 6, 4)
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("traced=%v", traced), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				work := dict.Clone()
				opts := vadalog.Options{Workers: runtime.NumCPU()}
				if traced {
					opts.Trace = obs.NewTrace()
				}
				b.StartTimer()
				if _, err := metalog.Reason(prog, work, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14Phases measures the Algorithm 2 phase breakdown of Section 6
// on a pyramid-heavy instance, reporting load/reason/flush as custom
// metrics (ns per phase).
func BenchmarkE14Phases(b *testing.B) {
	sigma := metalog.MustParse(`
		(p: Person) [: HOLDS; right: "ownership", percentage: hp] (s: Share; percentage: sp)
			[: BELONGS_TO] (y: Business),
			q = hp * sp, w = sum(q)
			-> (p) [o: OWNS; percentage: w] (y).
		(x: Business) -> (x) [c: CONTROLS] (x).
		(x: Business) [: CONTROLS] (z: Business) [: OWNS; percentage: w] (y: Business),
			v = sum(w, <z>), v > 0.5
			-> (x) [c: CONTROLS] (y).
	`)
	for _, n := range []int{250, 1000} {
		cfg := fingraph.DefaultConfig(n, 42)
		cfg.PyramidFraction = 0.4
		cfg.PyramidDepth = 25
		topo := fingraph.GenerateTopology(cfg)
		b.Run(fmt.Sprintf("companies=%d", n), func(b *testing.B) {
			var load, reason, flush int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				data := topo.CompanyKG()
				d, err := instance.NewDictionary(supermodel.CompanyKG())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := instance.Materialize(d, instance.PGSource{Data: data}, sigma, 1, vadalog.Options{})
				if err != nil {
					b.Fatal(err)
				}
				load += res.LoadDuration.Nanoseconds()
				reason += res.ReasonDuration.Nanoseconds()
				flush += res.FlushDuration.Nanoseconds()
			}
			b.ReportMetric(float64(load)/float64(b.N), "load-ns/op")
			b.ReportMetric(float64(reason)/float64(b.N), "reason-ns/op")
			b.ReportMetric(float64(flush)/float64(b.N), "flush-ns/op")
		})
	}
}

// BenchmarkAblationSemiNaive compares semi-naive and naive fixpoint
// evaluation on the control program (ablation A2).
func BenchmarkAblationSemiNaive(b *testing.B) {
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(2000, 42))
	db := controlDatabase(topo)
	prog := vadalog.MustParse(finance.ControlVadalog())
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"semi-naive", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vadalog.Run(prog, db, vadalog.Options{Naive: mode.naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStrategies compares the MetaLog mapping pipeline against
// the native translation twins (ablation A3).
func BenchmarkAblationStrategies(b *testing.B) {
	schema := supermodel.CompanyKG()
	b.Run("metalog/pg-multi-label", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dict := supermodel.NewDictionary()
			if err := supermodel.ToDictionary(schema, dict); err != nil {
				b.Fatal(err)
			}
			m, _ := models.SelectMapping(schema.OID, 124, 125, "pg", "multi-label")
			if _, err := models.Translate(dict, m, vadalog.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native/pg-multi-label", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := models.NativeToPG(schema, "multi-label"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("metalog/relational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dict := supermodel.NewDictionary()
			if err := supermodel.ToDictionary(schema, dict); err != nil {
				b.Fatal(err)
			}
			m, _ := models.SelectMapping(schema.OID, 124, 125, "relational", "")
			if _, err := models.Translate(dict, m, vadalog.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native/relational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v := models.NativeToRelational(schema); len(v.Relations) == 0 {
				b.Fatal("empty translation")
			}
		}
	})
}

// BenchmarkCloseLinks sweeps the integrated-ownership close-links
// computation.
func BenchmarkCloseLinks(b *testing.B) {
	for _, n := range []int{500, 2000} {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, 42))
		own := finance.BuildOwnership(topo)
		b.Run(fmt.Sprintf("companies=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				finance.CloseLinks(own, own.Entities, 0.2, 1e-9, 100)
			}
		})
	}
}

// BenchmarkMTVCompile measures MetaLog-to-Vadalog compilation of the full
// PG mapping program (the largest program in the repository).
func BenchmarkMTVCompile(b *testing.B) {
	m := models.PGMapping(123, 124, 125, "multi-label")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := metalog.Parse(m.Eliminate)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := metalog.Translate(prog, metalog.NewCatalog()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGSLRoundTrip measures GSL parse+serialize of the Figure 4 design.
func BenchmarkGSLRoundTrip(b *testing.B) {
	kgSchema := supermodel.CompanyKG()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dict := supermodel.NewDictionary()
		if err := supermodel.ToDictionary(kgSchema, dict); err != nil {
			b.Fatal(err)
		}
		if _, err := supermodel.FromDictionary(dict, kgSchema.OID, kgSchema.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIncremental compares incremental propagation of one new
// stake against full recomputation of the control program (the maintenance
// extension of DESIGN.md; ablation A4).
func BenchmarkAblationIncremental(b *testing.B) {
	prog := vadalog.MustParse(finance.ControlVadalog())
	for _, n := range []int{2000, 8000} {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(n, 42))
		base := controlDatabase(topo)
		b.Run(fmt.Sprintf("recompute/companies=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := base.Clone()
				db.MustAddFact("owns", value.IntV(0), value.IntV(1), value.FloatV(0.6))
				if _, err := vadalog.Run(prog, db, vadalog.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("incremental/companies=%d", n), func(b *testing.B) {
			b.StopTimer()
			inc, err := vadalog.NewIncremental(prog, base.Clone(), vadalog.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for i := 0; i < b.N; i++ {
				// A fresh stake each iteration (weights vary so facts are new).
				if err := inc.Add("owns", value.IntV(0), value.IntV(1), value.FloatV(0.5+float64(i%1000)/1e7)); err != nil {
					b.Fatal(err)
				}
				if _, err := inc.Propagate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
