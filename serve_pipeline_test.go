package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fingraph"
	"repro/internal/server"
	"repro/internal/snapfile"
	"repro/internal/supermodel"
)

// TestServePipeline is the top-level serving pipeline: the Figure 4 design
// drives validation while the generated Company KG instance is served over
// a real listener — generate → load → freeze → query → validate → reload →
// query, the deployment loop of DESIGN.md §11. It complements
// TestFullLifecycle: same methodology, consumed through the HTTP surface
// instead of the library one.
func TestServePipeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "companykg.json")
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(30, 5))
	g := topo.CompanyKG()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := server.New(server.Config{
		Source:    path,
		Schema:    supermodel.CompanyKG(),
		CacheSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("serve returned %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()

	post := func(p, body string) (int, []byte) {
		resp, err := http.Post(base+p, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// The generated instance conforms to the design it was generated from —
	// the schema round trip of the methodology, checked over the network.
	code, vbody := post("/validate", `{}`)
	if code != http.StatusOK {
		t.Fatalf("validate %d: %s", code, vbody)
	}
	var v struct {
		Conforms bool `json:"conforms"`
		Count    int  `json:"count"`
	}
	if err := json.Unmarshal(vbody, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Conforms || v.Count != 0 {
		t.Fatalf("generated Company KG instance should conform: %s", vbody)
	}

	// A Figure 4 navigational query: who holds shares of which business.
	q := fmt.Sprintf(`{"query":%q}`, `(h: Person) [: HOLDS] (sh: Share; percentage: s) [: BELONGS_TO] (b: Business), s > 0.5`)
	code, q1 := post("/query", q)
	if code != http.StatusOK {
		t.Fatalf("query %d: %s", code, q1)
	}
	var qr struct {
		Total int `json:"total"`
	}
	if err := json.Unmarshal(q1, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Total == 0 {
		t.Fatal("expected majority holdings in the generated instance")
	}

	// Reload and re-query: the swap is invisible in the bytes.
	if code, rbody := post("/reload", `{}`); code != http.StatusOK {
		t.Fatalf("reload %d: %s", code, rbody)
	}
	if gen := srv.Generation(); gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	code, q2 := post("/query", q)
	if code != http.StatusOK {
		t.Fatalf("query after reload %d: %s", code, q2)
	}
	if !bytes.Equal(q1, q2) {
		t.Error("query response changed across snapshot swap of identical data")
	}
}

// TestServePipelineSnapshot is the persistence leg of the serving pipeline
// (DESIGN.md §12): generate → encode a binary snapshot (the kggen -snap /
// kgsnap path) → cold-start a server from the file (kgserve -snapshot) →
// byte-compare /query against a server that parsed the JSON, then swap the
// JSON server onto the snapshot via /reload and compare again. The replica
// started from the mmap file must be indistinguishable on the wire, down
// to the bytes, with its provenance visible in /stats.
func TestServePipelineSnapshot(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "companykg.json")
	snapPath := filepath.Join(dir, "companykg.snap")
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(30, 5))
	g := topo.CompanyKG()
	f, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	info := snapfile.BuildInfo{
		Tool:   "kggen",
		Source: "fingraph/kg",
		Params: map[string]string{"companies": "30", "seed": "5"},
	}
	if _, err := snapfile.WriteFile(snapPath, g.Freeze(), info); err != nil {
		t.Fatal(err)
	}

	// Two replicas over real listeners: one parsed the JSON, one
	// cold-started from the snapshot file.
	start := func(source string) (*server.Server, string, func()) {
		srv, err := server.New(server.Config{Source: source, CacheSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		stop := func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-done; err != http.ErrServerClosed {
				t.Errorf("serve returned %v", err)
			}
		}
		return srv, "http://" + ln.Addr().String(), stop
	}
	jsonSrv, jsonBase, stopJSON := start(jsonPath)
	defer stopJSON()
	_, snapBase, stopSnap := start(snapPath)
	defer stopSnap()

	post := func(base, p, body string) (int, []byte) {
		resp, err := http.Post(base+p, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	q := fmt.Sprintf(`{"query":%q}`, `(h: Person) [: HOLDS] (sh: Share; percentage: s) [: BELONGS_TO] (b: Business), s > 0.5`)
	code, fromJSON := post(jsonBase, "/query", q)
	if code != http.StatusOK {
		t.Fatalf("query (json replica) %d: %s", code, fromJSON)
	}
	code, fromSnap := post(snapBase, "/query", q)
	if code != http.StatusOK {
		t.Fatalf("query (snapshot replica) %d: %s", code, fromSnap)
	}
	if !bytes.Equal(fromJSON, fromSnap) {
		t.Fatal("snapshot-replica query bytes diverge from the JSON replica")
	}

	// The snapshot replica exposes its provenance.
	resp, err := http.Get(snapBase + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Build *snapfile.BuildInfo `json:"build"`
	}
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Build == nil || st.Build.Tool != "kggen" || st.Build.Params["companies"] != "30" {
		t.Fatalf("snapshot replica /stats lacks provenance: %s", stats)
	}

	// The JSON replica hot-swaps onto the snapshot file: one generation
	// forward, query bytes unchanged.
	if code, rbody := post(jsonBase, "/reload", fmt.Sprintf(`{"path":%q}`, snapPath)); code != http.StatusOK {
		t.Fatalf("reload onto snapshot %d: %s", code, rbody)
	}
	if gen := jsonSrv.Generation(); gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	code, afterSwap := post(jsonBase, "/query", q)
	if code != http.StatusOK {
		t.Fatalf("query after snapshot reload %d: %s", code, afterSwap)
	}
	if !bytes.Equal(fromJSON, afterSwap) {
		t.Fatal("query bytes changed across JSON→snapshot swap of identical data")
	}
}
