package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/finance"
	"repro/internal/fingraph"
	"repro/internal/graphstats"
	"repro/internal/gsl"
	"repro/internal/instance"
	"repro/internal/models"
	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/testutil"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// TestFullLifecycle walks the complete KGModel methodology end to end, the
// way the paper's data engineer would: design, deploy, generate, validate,
// materialize, analyze, serialize, reload, re-validate.
func TestFullLifecycle(t *testing.T) {
	// 1. Design (Figure 4) and serialize the design through GSL.
	schema := supermodel.CompanyKG()
	text := gsl.Serialize(schema)
	reparsed, err := gsl.Parse(text)
	if err != nil {
		t.Fatalf("GSL round trip: %v", err)
	}
	kg, err := core.NewKG(reparsed)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Deploy to every target family.
	ddl, err := kg.DeploySQL()
	if err != nil {
		t.Fatal(err)
	}
	constraints, err := kg.DeployPGConstraints()
	if err != nil {
		t.Fatal(err)
	}
	rdfs := kg.DeployRDFS()
	for name, artifact := range map[string]string{"ddl": ddl, "constraints": constraints, "rdfs": rdfs} {
		if len(artifact) < 200 {
			t.Errorf("%s artifact suspiciously small: %d bytes", name, len(artifact))
		}
	}

	// 3. Generate a register extract and validate it against the deployed
	// PG schema before loading.
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(150, 99))
	data := topo.CompanyKG()
	view, err := models.NativeToPG(reparsed, "multi-label")
	if err != nil {
		t.Fatal(err)
	}
	if violations := models.ValidateInstance(data, view); len(violations) != 0 {
		t.Fatalf("generated instance must conform: %v", violations[:min(3, len(violations))])
	}

	// 4. Materialize the intensional components (Algorithm 2, staged).
	for _, c := range []struct{ name, src string }{
		{"ownership", finance.OwnershipProgram()},
		{"control", finance.ControlProgram()},
		{"family", finance.FamilyProgram()},
	} {
		if err := kg.AddIntensional(c.name, c.src); err != nil {
			t.Fatal(err)
		}
	}
	res, err := kg.Materialize(core.PGData(data), 10, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entities, edges, props := res.Totals()
	if edges == 0 || props == 0 || entities == 0 {
		t.Fatalf("materialization derived too little: %d/%d/%d", entities, edges, props)
	}

	// 5. The enriched instance still conforms to the schema (intensional
	// constructs included — they are part of Figure 6).
	if violations := models.ValidateInstance(data, view); len(violations) != 0 {
		t.Errorf("enriched instance must still conform; first: %v", violations[0])
	}

	// 6. Analyze: the derived CONTROLS projection has the expected
	// reflexive + derived structure.
	controls := data.EdgesByLabel("CONTROLS")
	if len(controls) <= 150 {
		t.Errorf("CONTROLS edges = %d, want > 150 self-loops", len(controls))
	}

	// 7. Serialize the enriched KG and reload it losslessly.
	var buf bytes.Buffer
	if err := data.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := pg.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.NumNodes() != data.NumNodes() || reloaded.NumEdges() != data.NumEdges() {
		t.Fatalf("serialization lost data: %d/%d vs %d/%d",
			reloaded.NumNodes(), reloaded.NumEdges(), data.NumNodes(), data.NumEdges())
	}
	if violations := models.ValidateInstance(reloaded, view); len(violations) != 0 {
		t.Errorf("reloaded instance must conform; first: %v", violations[0])
	}

	// 8. Statistics still have the §2.1 shape on the ground shareholding
	// projection.
	stats := graphstats.Compute(topo.Shareholding())
	if stats.SCCAvgSize > 1.1 || stats.AvgClusteringCoefficient > 0.05 {
		t.Errorf("statistics shape off: %+v", stats)
	}

	// 9. N-Triples export for the triplestore family.
	nt := models.EmitNTriples(data, "urn:companykg")
	if !strings.Contains(nt, "urn:companykg/rel/CONTROLS") {
		t.Errorf("triplestore export misses derived edges")
	}
}

// TestRelationalToPGCircle: relational rows in (through the core facade),
// reasoning at super-model level, property graph out — the exported graph
// validates against the translated PG schema.
func TestRelationalToPGCircle(t *testing.T) {
	kg, err := core.NewKG(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	if err := kg.AddIntensional("control", finance.ControlProgram()); err != nil {
		t.Fatal(err)
	}
	str, flt := value.Str, value.FloatV
	tables := map[string][]instance.Row{}
	for _, code := range []string{"A", "B", "C"} {
		tables["Person"] = append(tables["Person"], instance.Row{"fiscalCode": str(code)})
		tables["LegalPerson"] = append(tables["LegalPerson"], instance.Row{
			"fiscalCode": str(code), "businessName": str("biz" + code), "legalNature": str("spa"),
		})
		tables["Business"] = append(tables["Business"], instance.Row{
			"fiscalCode": str(code), "shareholdingCapital": flt(100),
		})
	}
	tables["OWNS"] = []instance.Row{
		{"fk_owns_src_fiscalCode": str("A"), "fk_owns_dst_fiscalCode": str("B"), "percentage": flt(0.9)},
		{"fk_owns_src_fiscalCode": str("B"), "fk_owns_dst_fiscalCode": str("C"), "percentage": flt(0.8)},
	}
	res, err := kg.Materialize(core.RelationalData(tables), 1, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	out := res.Steps[0].ExportPG()
	// A controls B, B controls C, A controls C (transitively) + 3 self.
	if n := len(out.EdgesByLabel("CONTROLS")); n != 6 {
		t.Errorf("CONTROLS edges = %d, want 6", n)
	}
	view, err := models.NativeToPG(supermodel.CompanyKG(), "multi-label")
	if err != nil {
		t.Fatal(err)
	}
	if violations := models.ValidateInstance(out, view); len(violations) != 0 {
		t.Errorf("exported graph must conform; first: %v", violations[0])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestStreamIngest10MSmoke pushes the streaming data plane through a
// ~10M-edge load end to end: two-pass generation, sharded parallel ingest,
// and the FrozenFromColumns validation wall, without ever materializing the
// mutable graph. It is the in-suite scale check below the bench-load 100M
// run; -short skips it, and it skips under the race detector, whose memory
// multiplier does not fit this scale (the concurrent-ingest race coverage
// runs at small scale in internal/pg instead).
func TestStreamIngest10MSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-edge smoke leg skipped in -short mode")
	}
	if testutil.RaceEnabled {
		t.Skip("10M-edge smoke leg does not fit under the race detector")
	}
	cfg := fingraph.Config{
		Companies:              3_200_000,
		MeanShareholders:       2.0,
		MajorityFraction:       0.6,
		LocalFraction:          0.55,
		CompanyHolderFraction:  0.35,
		PreferentialAttachment: 0.6,
		CrossHoldingFraction:   0.002,
		Seed:                   20260809,
	}
	ld := pg.NewBulkLoader(8)
	stats, err := fingraph.StreamTopology(cfg, fingraph.StreamOptions{}, ld)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	frozen, err := ld.Finish()
	if err != nil {
		t.Fatalf("bulk finish: %v", err)
	}
	if stats.Edges < 9_000_000 {
		t.Fatalf("smoke leg produced only %d edges, want ~10M", stats.Edges)
	}
	if frozen.NumNodes() != stats.Persons+stats.Companies || frozen.NumEdges() != stats.Edges {
		t.Fatalf("snapshot (%d nodes, %d edges) disagrees with stream stats %+v",
			frozen.NumNodes(), frozen.NumEdges(), stats)
	}
	// Spot-check the arithmetic OID layout: person index 0 is OID 1,
	// company index 0 is OID persons+1, with their synthetic fiscal codes.
	if v, ok := frozen.NodeProp(pg.OID(1), "fiscalCode"); !ok || v.S != "PF00000000" {
		t.Fatalf("person 0 fiscalCode = %v, %v", v, ok)
	}
	if v, ok := frozen.NodeProp(pg.OID(stats.Persons+1), "fiscalCode"); !ok || v.S != "CO00000000" {
		t.Fatalf("company 0 fiscalCode = %v, %v", v, ok)
	}
	// Column-only degree check (the facade at this scale is deliberately
	// not materialized): every edge appears in exactly one out-window.
	total := 0
	for i := 0; i < frozen.NumNodes(); i++ {
		total += frozen.OutDegree(pg.OID(i + 1))
	}
	if total != stats.Edges {
		t.Fatalf("out-degrees sum to %d, want %d", total, stats.Edges)
	}
}
