// Package repro is a from-scratch Go reproduction of "Model-Independent
// Design of Knowledge Graphs — Lessons Learnt From Complex Financial Graphs"
// (EDBT 2022): the KGModel framework for designing Knowledge Graphs at
// meta-level and deploying them into arbitrary target systems.
//
// The implementation lives under internal/ as a set of small packages:
//
//   - internal/core — the KGModel facade: design, deploy, materialize
//   - internal/supermodel — meta-model, super-model, super-schemas (§3)
//   - internal/gsl — the Graph Schema Language and the Γ renderers (§3)
//   - internal/metalog — MetaLog and the MTV compiler to Vadalog (§4)
//   - internal/vadalog — a Warded Datalog± reasoning engine (§4)
//   - internal/models — target models, mappings, SSST = Algorithm 1 (§5)
//   - internal/instance — instance constructs and Algorithm 2 (§6)
//   - internal/pg — an embedded property-graph store (graph dictionaries)
//   - internal/graphstats — the §2.1 statistics
//   - internal/fingraph — the synthetic financial-graph substrate
//   - internal/finance — control, ownership, close links, groups, families
//
// The benchmarks in bench_test.go regenerate every evaluation artifact of
// the paper; see DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package repro
